"""Ablation A9: architectural sensitivity of the ucMCS tradeoff.

Paper section 4.1: "the extent to which the reductions in traffic
provided by our update-conscious MCS lock lead to performance
improvements depends on the architectural characteristics of the
multiprocessor: performance improvements are inversely proportional to
communication bandwidth and latency."

This bench sweeps the network datapath width and the memory latency and
tracks ucMCS's latency relative to standard MCS under PU: the relative
cost of the flushes must shrink as bandwidth drops / latency grows
(the stale-sharer traffic they remove gets more expensive).
"""

from repro.config import MachineConfig, Protocol
from repro.metrics import format_table
from repro.workloads import run_lock_workload

from conftest import run_once

P = 16


def _run(kind, **cfg_kw):
    cfg = MachineConfig(num_procs=P, protocol=Protocol.PU, **cfg_kw)
    return run_lock_workload(cfg, kind, total_acquires=3200)


def _sweep(scale):
    rows = []
    for fb, label in ((4, "2x bandwidth (32-bit)"),
                      (2, "paper (16-bit)"),
                      (1, "1/2 bandwidth (8-bit)")):
        mcs = _run("MCS", flit_bytes=fb)
        uc = _run("uc", flit_bytes=fb)
        rows.append([label, mcs.avg_latency, uc.avg_latency,
                     uc.avg_latency / mcs.avg_latency,
                     mcs.result.updates["total"],
                     uc.result.updates["total"]])
    for ml, label in ((20, "paper memory (20cy)"),
                      (60, "3x memory latency"),):
        mcs = _run("MCS", mem_first_word_cycles=ml)
        uc = _run("uc", mem_first_word_cycles=ml)
        rows.append([label, mcs.avg_latency, uc.avg_latency,
                     uc.avg_latency / mcs.avg_latency,
                     mcs.result.updates["total"],
                     uc.result.updates["total"]])
    return rows


def test_ablation_bandwidth_sensitivity(benchmark, scale):
    rows = run_once(benchmark, _sweep, scale)
    print()
    print(format_table(
        ["architecture", "MCS-u lat", "uc-u lat", "uc/MCS",
         "MCS updates", "uc updates"],
        rows,
        title=f"Ablation: ucMCS vs bandwidth/latency ({P} processors, "
              f"PU)"))
    # the uc/MCS latency ratio must improve monotonically as the
    # network narrows (the removed traffic gets more expensive)
    bw_ratios = [r[3] for r in rows[:3]]
    assert bw_ratios[0] > bw_ratios[1] > bw_ratios[2], bw_ratios
    # the traffic reduction itself is architecture-independent
    for r in rows:
        assert r[5] < r[4] / 5
