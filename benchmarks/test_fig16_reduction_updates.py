"""Figure 16: update traffic of the reductions at 32 processors under
PU and CU."""

from repro.experiments import fig16_reduction_updates

from conftest import run_once


def test_fig16_reduction_updates(benchmark, scale):
    bars = run_once(benchmark, fig16_reduction_updates, scale=scale)
    print()
    print(bars.render())

    # reductions show a large fraction of useful updates (section 4.3)
    for combo in ("sr-u", "pr-u"):
        b = bars.bars[combo]
        assert b["useful"] >= 0.3 * bars.total(combo), combo
    # the sequential reduction's slot updates are consumed by the
    # master every episode: its useful fraction tops the parallel one's
    sr = bars.bars["sr-u"]
    pr = bars.bars["pr-u"]
    assert (sr["useful"] / bars.total("sr-u")
            >= pr["useful"] / bars.total("pr-u"))
