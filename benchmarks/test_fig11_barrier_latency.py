"""Figure 11: average barrier-episode latency of the three barriers
under the three protocols, swept over machine sizes."""

from repro.experiments import fig11_barrier_latency

from conftest import run_once


def test_fig11_barrier_latency(benchmark, scale, bench_sizes):
    series = run_once(benchmark, fig11_barrier_latency,
                      scale=scale, sizes=bench_sizes)
    print()
    print(series.render())

    top = max(bench_sizes)
    if top >= 16:
        # dissemination under PU/CU beats WI at every size (sec 4.2)
        for P in [s for s in bench_sizes if s >= 2]:
            assert series.get("db-u", P) < series.get("db-i", P)
            assert series.get("db-c", P) < series.get("db-i", P)
        # ... and is the overall combination of choice at scale
        best_db = min(series.get("db-u", top), series.get("db-c", top))
        others = [series.get(f"{k}-{p}", top)
                  for k in ("cb", "tb") for p in ("i", "u", "c")]
        others.append(series.get("db-i", top))
        assert best_db < min(others)
        # tree barrier: update-based beats WI
        assert series.get("tb-u", top) < series.get("tb-i", top)
        # centralized barrier: WI wins only at large machine sizes
        assert series.get("cb-i", top) < series.get("cb-u", top)
        small = min(s for s in bench_sizes if s >= 2)
        assert series.get("cb-u", small) < series.get("cb-i", small)
