"""Ablation A8: release consistency vs sequential consistency.

The paper's machine uses release consistency: writes retire through the
write buffer and the processor only stalls for acknowledgements at
release points.  This ablation re-runs the lock and barrier synthetics
with every write stalling until globally performed (SC), quantifying
how much of the update protocols' performance comes from RC hiding the
write-through latency.
"""

from repro.config import MachineConfig, Protocol
from repro.metrics import format_table
from repro.workloads import run_barrier_workload, run_lock_workload

from conftest import run_once

P = 16


def _sweep(scale):
    rows = []
    for proto in (Protocol.WI, Protocol.PU):
        for sc in (False, True):
            cfg = MachineConfig(num_procs=P, protocol=proto,
                                sequential_consistency=sc)
            lock = run_lock_workload(
                cfg, "MCS", total_acquires=scale.lock_total_acquires)
            bar = run_barrier_workload(
                cfg, "db", episodes=scale.barrier_episodes)
            rows.append([
                f"{proto.value}/{'SC' if sc else 'RC'}",
                lock.avg_latency,
                bar.avg_latency,
            ])
    return rows


def test_ablation_consistency_model(benchmark, scale):
    rows = run_once(benchmark, _sweep, scale)
    print()
    print(format_table(
        ["model", "MCS lock latency", "dissem. barrier latency"],
        rows,
        title=f"Ablation: release vs sequential consistency "
              f"({P} processors)"))
    table = {r[0]: r for r in rows}
    # RC must not be slower than SC anywhere, and the write-through PU
    # protocol must benefit visibly (its writes have the longest
    # global-perform latency to hide)
    for proto in ("wi", "pu"):
        assert table[f"{proto}/RC"][1] <= table[f"{proto}/SC"][1] * 1.01
        assert table[f"{proto}/RC"][2] <= table[f"{proto}/SC"][2] * 1.01
    pu_barrier_gain = table["pu/SC"][2] / table["pu/RC"][2]
    assert pu_barrier_gain > 1.05
