"""Ablations A1/A2: the paper's reduced-contention lock variants.

A1 -- pseudo-random bounded delay after each release;
A2 -- work outside the critical section equal to P x the work inside
(+-10%).  Section 4.1 reports both are qualitatively identical to the
tight loop; these benches regenerate the comparison.
"""

from repro.config import ALL_PROTOCOLS, MachineConfig, Protocol
from repro.metrics import Series
from repro.workloads import run_lock_workload

from conftest import run_once

P = 16


def _sweep(scale, delay_mode):
    series = Series(
        title=f"Ablation: lock latency, delay_mode={delay_mode} ({P}p)",
        xlabel="procs", ylabel="avg acquire-release latency (cycles)")
    for kind in ("tk", "MCS", "uc"):
        for proto in ALL_PROTOCOLS:
            cfg = MachineConfig(num_procs=P, protocol=proto)
            res = run_lock_workload(
                cfg, kind, total_acquires=scale.lock_total_acquires,
                delay_mode=delay_mode)
            series.add(f"{kind}-{proto.short}", P, res.avg_latency)
    return series


def test_ablation_lock_random_delay(benchmark, scale):
    series = run_once(benchmark, _sweep, scale, "random")
    print()
    print(series.render())
    # qualitative ranking survives reduced contention (section 4.1)
    assert series.get("tk-u", P) < series.get("tk-i", P)
    assert series.get("MCS-c", P) < series.get("tk-i", P)


def test_ablation_lock_proportional_work(benchmark, scale):
    series = run_once(benchmark, _sweep, scale, "proportional")
    print()
    print(series.render())
    assert series.get("tk-u", P) < series.get("tk-i", P)
