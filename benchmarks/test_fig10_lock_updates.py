"""Figure 10: update traffic of the spin locks at 32 processors under
PU and CU, classified as useful / false / proliferation / replacement /
termination / drop."""

from repro.experiments import fig10_lock_updates

from conftest import run_once


def test_fig10_lock_updates(benchmark, scale):
    bars = run_once(benchmark, fig10_lock_updates, scale=scale)
    print()
    print(bars.render())

    # the uc modification cuts the MCS lock's update traffic (sec 4.1)
    assert bars.total("uc-u") < bars.total("MCS-u")
    # MCS under PU: majority of updates are useless
    mcs_u = bars.bars["MCS-u"]
    useless = bars.total("MCS-u") - mcs_u["useful"]
    assert useless > mcs_u["useful"]
    # CU keeps (drops) the stale-sharer traffic well below PU's
    assert bars.total("MCS-c") <= bars.total("MCS-u")
