"""Ablation A4: the competitive-update threshold.

The paper fixes the CU counter threshold at 4 updates.  This bench
sweeps it for the two constructs most sensitive to it -- the MCS lock
(stale queue-node sharers should be dropped quickly) and the
centralized barrier (the spinning sense flag must NOT be dropped) --
quantifying the design point.
"""

from repro.config import MachineConfig, Protocol
from repro.metrics import format_table
from repro.workloads import run_barrier_workload, run_lock_workload

from conftest import run_once

P = 16
THRESHOLDS = (1, 2, 4, 8, 16)


def _sweep(scale):
    rows = []
    for thr in THRESHOLDS:
        cfg = MachineConfig(num_procs=P, protocol=Protocol.CU,
                            update_threshold=thr)
        lock = run_lock_workload(
            cfg, "MCS", total_acquires=scale.lock_total_acquires)
        bar = run_barrier_workload(
            cfg, "cb", episodes=scale.barrier_episodes)
        rows.append([
            thr,
            lock.avg_latency,
            lock.result.updates["total"],
            lock.result.misses["drop"],
            bar.avg_latency,
            bar.result.updates["total"],
        ])
    return rows


def test_ablation_cu_threshold(benchmark, scale):
    rows = run_once(benchmark, _sweep, scale)
    print()
    print(format_table(
        ["threshold", "MCS lat", "MCS updates", "MCS drop-misses",
         "cb lat", "cb updates"],
        rows,
        title=f"Ablation: CU threshold sweep ({P} processors)"))
    by_thr = {r[0]: r for r in rows}
    # a larger threshold admits more update traffic before dropping
    assert by_thr[16][2] >= by_thr[1][2]
    # a tiny threshold drops aggressively: most drop misses
    assert by_thr[1][3] >= by_thr[16][3]
