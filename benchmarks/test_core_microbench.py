"""Core hot-path microbenchmarks: events/sec, with a regression floor.

Three kernels cover the layers the hot-path work targets:

* **churn** -- a bare :class:`~repro.engine.Simulator` running
  self-rescheduling callback chains: the event core alone, no machine.
* **lock** -- the MCS lock synthetic program per protocol: the
  spin/park/wake path, write buffer, fabric and directory together.
* **barrier** -- the dissemination barrier per protocol: fan-out heavy
  traffic through the fabric accumulators.

Each kernel reports **events per second of wall clock** (simulator
events processed / elapsed), the package's headline throughput number.
Results are written to the JSON file named by ``REPRO_BENCH_CORE_JSON``
(the CI artifact next to ``BENCH_figures*.json``).

Every rate is also checked against ``benchmarks/baselines/
core_floor.json``.  The floors are deliberately conservative (a few
times below the development-machine rates) so slow CI runners pass;
the test fails when a rate drops below ``0.7 * floor`` -- a >30%
regression against a bound that is already generous.  If you make the
core *faster*, ratchet the floors up with the measured rates printed
in the bench JSON.

These tests live under ``benchmarks/`` and are NOT part of the tier-1
suite (``testpaths = tests``); CI runs them in the ``perf-smoke`` job:

    PYTHONPATH=src REPRO_BENCH_CORE_JSON=BENCH_core.json \
        python -m pytest benchmarks/test_core_microbench.py -q
"""

import json
import os
import time

import pytest

from repro.config import MachineConfig, Protocol
from repro.engine import Simulator
from repro.workloads import run_barrier_workload, run_lock_workload

FLOOR_FILE = os.path.join(os.path.dirname(__file__), "baselines",
                          "core_floor.json")
#: fail when a measured rate is more than 30% below its floor
REGRESSION_TOLERANCE = 0.7

_RESULTS = {}


def _floors():
    with open(FLOOR_FILE, encoding="utf-8") as fh:
        return json.load(fh)["events_per_sec_floor"]


def _record(name: str, events: int, elapsed: float) -> float:
    rate = events / elapsed
    _RESULTS[name] = {"events": events, "elapsed_s": round(elapsed, 4),
                      "events_per_sec": round(rate)}
    floors = _floors()
    assert name in floors, f"no floor for {name}; add it to {FLOOR_FILE}"
    floor = floors[name]
    assert rate >= floor * REGRESSION_TOLERANCE, (
        f"{name}: {rate:,.0f} events/sec is >30% below the checked-in "
        f"floor of {floor:,} (tolerance {REGRESSION_TOLERANCE})")
    return rate


def teardown_module(module) -> None:
    out = os.environ.get("REPRO_BENCH_CORE_JSON")
    if out and _RESULTS:
        with open(out, "w", encoding="utf-8") as fh:
            json.dump({"benchmarks": _RESULTS}, fh, indent=2,
                      sort_keys=True)


# ----------------------------------------------------------------------
# kernels
# ----------------------------------------------------------------------

def test_scheduler_churn():
    """Pure event-core throughput: no machine, just schedule/dispatch."""
    sim = Simulator()
    remaining = 200_000
    chains = 32

    def tick():
        nonlocal remaining
        remaining -= 1
        if remaining > 0:
            sim.schedule(1 + (remaining & 7), tick)

    for i in range(chains):
        sim.schedule(i & 3, tick)
    t0 = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - t0
    _record("churn", sim.events_processed, elapsed)


@pytest.mark.parametrize("proto", [Protocol.WI, Protocol.PU, Protocol.CU])
def test_lock_contention_kernel(proto):
    cfg = MachineConfig(num_procs=8, protocol=proto)
    t0 = time.perf_counter()
    res = run_lock_workload(cfg, "MCS", total_acquires=800)
    elapsed = time.perf_counter() - t0
    _record(f"lock-{proto.value}", res.result.events, elapsed)


@pytest.mark.parametrize("proto", [Protocol.WI, Protocol.PU, Protocol.CU])
def test_barrier_kernel(proto):
    cfg = MachineConfig(num_procs=8, protocol=proto)
    t0 = time.perf_counter()
    res = run_barrier_workload(cfg, "db", episodes=40)
    elapsed = time.perf_counter() - t0
    _record(f"barrier-{proto.value}", res.result.events, elapsed)


# ----------------------------------------------------------------------
# allocation regression
# ----------------------------------------------------------------------

@pytest.mark.parametrize("proto", [Protocol.WI, Protocol.PU, Protocol.CU])
def test_steady_state_allocations(proto):
    """The hot path is allocation-free in steady state.

    After a warm-up run (caches filled, message pool populated,
    directory entries built), net tracemalloc growth across the rest of
    an MCS lock kernel must stay under a per-event byte budget from
    ``core_floor.json``.  Without the message pool and bucket queue the
    same kernel allocates ~27 bytes per event; with them it is < 1.
    The budget (8 B/event) leaves headroom for counters and classifier
    tables that legitimately grow with new blocks.
    """
    import tracemalloc

    from repro.isa.ops import Compute
    from repro.runtime import Machine
    from repro.sync.locks import make_lock

    with open(FLOOR_FILE, encoding="utf-8") as fh:
        budget = json.load(fh)["steady_state_alloc_bytes_per_event"]

    cfg = MachineConfig(num_procs=4, protocol=proto)
    machine = Machine(cfg)
    lock = make_lock("MCS", machine, home=0)

    def program(node):
        for _ in range(80):
            token = yield from lock.acquire(node)
            yield Compute(10)
            yield from lock.release(node, token)

    machine.spawn_all(program)
    machine.prepare()
    machine.sim.run(until=3000)          # warm-up: fills pool + caches
    e0 = machine.sim.events_processed
    tracemalloc.start()
    try:
        machine.sim.run()
    finally:
        net_growth, _peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
    events = machine.sim.events_processed - e0
    assert events > 5000, "kernel too small to measure steady state"
    per_event = net_growth / events
    _RESULTS[f"alloc-{proto.value}"] = {
        "events": events, "net_growth_bytes": net_growth,
        "bytes_per_event": round(per_event, 3)}
    assert per_event <= budget, (
        f"steady-state allocations regressed: {per_event:.2f} B/event "
        f"net growth exceeds the {budget} B/event budget "
        f"(pool or calendar queue no longer recycling?)")
    machine.finish()
