"""Figure 13: update traffic of the barriers at 32 processors under PU
and CU."""

from repro.experiments import fig13_barrier_updates

from conftest import run_once


def test_fig13_barrier_updates(benchmark, scale):
    bars = run_once(benchmark, fig13_barrier_updates, scale=scale)
    print()
    print(bars.render())

    # the central barrier's traffic is substantial and mostly useless
    # (counter churn, section 4.2)
    cb_u = bars.bars["cb-u"]
    assert (bars.total("cb-u") - cb_u["useful"]) > cb_u["useful"]
    # dissemination: essentially no useless updates
    db_u = bars.bars["db-u"]
    assert db_u["useful"] >= 0.9 * bars.total("db-u")
    # CU bounds the central barrier's useless traffic via drops
    assert bars.total("cb-c") < bars.total("cb-u")
