"""Figure 15: miss traffic of the reductions at 32 processors."""

from repro.experiments import fig15_reduction_misses

from conftest import run_once


def test_fig15_reduction_misses(benchmark, scale):
    bars = run_once(benchmark, fig15_reduction_misses, scale=scale)
    print()
    print(bars.render())

    # the WI critical paths are miss-bound; update protocols nearly
    # miss-free (section 4.3)
    assert bars.total("sr-u") < bars.total("sr-i") / 4
    assert bars.total("pr-u") < bars.total("pr-i") / 4
    # sequential under WI touches max AND every local_max slot
    assert bars.total("sr-i") > bars.total("pr-i") / 2