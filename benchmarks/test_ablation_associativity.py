"""Ablation A11: cache associativity.

The paper's machine has direct-mapped caches; conflict evictions are
what let the update-conscious MCS flushes hurt and what make block
placement matter.  This bench sweeps LRU associativity on an
eviction-heavy workload (small caches, many blocks) to quantify how
much of the eviction-miss traffic is conflict-induced.
"""

from repro.config import MachineConfig, Protocol
from repro.isa.ops import Compute, Fence, Read, Write
from repro.metrics import format_table
from repro.runtime import Machine

from conftest import run_once

P = 8
BLOCKS_PER_NODE = 10
CACHE_BYTES = 4 * 64          # 4 lines: capacity 4 blocks


def _run(assoc, rounds):
    cfg = MachineConfig(num_procs=P, protocol=Protocol.WI,
                        cache_size_bytes=CACHE_BYTES,
                        cache_associativity=assoc)
    m = Machine(cfg, max_events=50_000_000)
    # every allocation for home n lands on the same direct-mapped index
    # (block = round*P + n, and P is a multiple of the 4-line cache's
    # set count), so a node's two hot words ping-pong under
    # direct mapping but coexist in any associative geometry
    hot = [[m.memmap.alloc_word(n, f"hot{n}.{k}") for k in range(2)]
           for n in range(P)]

    def prog(node):
        a, b = hot[node]
        for r in range(rounds):
            for _ in range(BLOCKS_PER_NODE):
                yield Read(a)
                yield Read(b)
            yield Write(a, r)
            yield Compute(9)
        yield Fence()

    m.spawn_all(prog)
    r = m.run()
    return [r.total_cycles, r.misses["eviction"], r.misses["total"]]


def _sweep(scale):
    rounds = max(6, scale.barrier_episodes // 8)
    rows = []
    for assoc in (1, 2, 4):
        label = {1: "direct-mapped (paper)", 2: "2-way LRU",
                 4: "fully assoc. (4-way)"}[assoc]
        rows.append([label] + _run(assoc, rounds))
    return rows


def test_ablation_cache_associativity(benchmark, scale):
    rows = run_once(benchmark, _sweep, scale)
    print()
    print(format_table(
        ["cache", "cycles", "eviction misses", "total misses"],
        rows,
        title=f"Ablation: cache associativity ({P} processors, "
              f"{CACHE_BYTES // 64}-line caches, WI)"))
    # higher associativity keeps the hot blocks resident
    evictions = [r[2] for r in rows]
    assert evictions[0] > evictions[1] >= evictions[2]
    cycles = [r[1] for r in rows]
    assert cycles[0] > cycles[2]
