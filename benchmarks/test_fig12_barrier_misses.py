"""Figure 12: miss traffic of the barriers at 32 processors."""

from repro.experiments import fig12_barrier_misses

from conftest import run_once


def test_fig12_barrier_misses(benchmark, scale):
    bars = run_once(benchmark, fig12_barrier_misses, scale=scale)
    print()
    print(bars.render())

    # update protocols' barrier misses are negligible next to WI's
    for kind in ("cb", "db", "tb"):
        assert bars.total(f"{kind}-u") < bars.total(f"{kind}-i") / 2
    # WI dissemination misses are flag reloads: true sharing dominates
    db_i = bars.bars["db-i"]
    assert db_i["true"] >= db_i["cold"]
