"""Figure 8: average acquire-release latency of the three spin locks
under the three protocols, swept over machine sizes."""

from repro.experiments import fig8_lock_latency

from conftest import run_once


def test_fig8_lock_latency(benchmark, scale, bench_sizes):
    series = run_once(benchmark, fig8_lock_latency,
                      scale=scale, sizes=bench_sizes)
    print()
    print(series.render())

    # headline shapes (paper section 4.1) at the largest size measured
    top = max(bench_sizes)
    if top >= 16:
        assert series.get("tk-u", top) < series.get("tk-i", top)
        assert series.get("tk-c", top) < series.get("tk-i", top)
        assert series.get("MCS-c", top) < series.get("MCS-i", top)
        assert series.get("MCS-i", top) < series.get("tk-i", top)
