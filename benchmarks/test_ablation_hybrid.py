"""Ablation A7: per-block protocol selection (the HYBRID machine).

The paper's conclusion -- "for multiprocessors that can support more
than one coherence protocol both the protocol and implementation should
be taken into account" -- quantified: a workload mixing a streaming
producer-consumer phase (WI's strength: whole-block transfers) with a
contended ticket lock (the update protocols' strength) runs under each
fixed protocol and under a per-construct assignment.
"""

from repro.config import MachineConfig, Protocol
from repro.isa.ops import Compute, Fence, Read, Write
from repro.metrics import format_table
from repro.runtime import Machine
from repro.sync import IdealBarrier, TicketLock

from conftest import run_once

P = 16
WORDS = 16


def _run(protocol, episodes):
    m = Machine(MachineConfig(num_procs=P, protocol=protocol),
                max_events=50_000_000)
    stream = [m.memmap.alloc_words(i, WORDS, f"out{i}") for i in range(P)]
    if protocol is Protocol.HYBRID:
        with m.memmap.use_protocol(Protocol.CU):
            lock = TicketLock(m)
    else:
        lock = TicketLock(m)
    bar = IdealBarrier(m)

    def prog(node):
        left = (node - 1) % P
        for ep in range(episodes):
            for i, addr in enumerate(stream[node]):
                yield Write(addr, ep * 100 + i)
            yield Fence()
            yield from bar.wait(node)
            for addr in stream[left]:
                yield Read(addr)
            tok = yield from lock.acquire(node)
            yield Compute(25)
            yield from lock.release(node, tok)
            yield from bar.wait(node)

    m.spawn_all(prog)
    r = m.run()
    return [r.total_cycles / episodes, r.misses["total"],
            r.updates["total"], r.network.bytes // episodes]


def _sweep(scale):
    episodes = max(4, scale.barrier_episodes // 4)
    rows = []
    for proto, label in ((Protocol.WI, "fixed WI"),
                         (Protocol.PU, "fixed PU"),
                         (Protocol.CU, "fixed CU"),
                         (Protocol.HYBRID,
                          "hybrid (stream=WI, lock=CU)")):
        rows.append([label] + _run(proto, episodes))
    return rows


def test_ablation_hybrid_protocol_selection(benchmark, scale):
    rows = run_once(benchmark, _sweep, scale)
    print()
    print(format_table(
        ["assignment", "cycles/episode", "misses", "updates",
         "bytes/episode"],
        rows,
        title=f"Ablation: per-block protocol selection ({P} processors)"))
    cycles = {r[0]: r[1] for r in rows}
    hybrid = cycles["hybrid (stream=WI, lock=CU)"]
    assert hybrid <= min(cycles[k] for k in cycles
                         if k.startswith("fixed")) * 1.02
