"""Figure 9: miss traffic of the spin locks at 32 processors,
classified as cold / true / false / eviction / drop + exclusive
requests."""

from repro.experiments import fig9_lock_misses

from conftest import run_once


def test_fig9_lock_misses(benchmark, scale):
    bars = run_once(benchmark, fig9_lock_misses, scale=scale)
    print()
    print(bars.render())

    # WI lock misses dwarf the update protocols' (section 4.1)
    assert bars.total("tk-i") > 10 * bars.total("tk-u")
    assert bars.total("MCS-i") > bars.total("MCS-u")
    # the uc flushes inflate misses relative to standard MCS under PU
    assert bars.total("uc-u") > bars.total("MCS-u")
    # ticket WI misses are true sharing (counter reloads)
    tk_i = bars.bars["tk-i"]
    assert tk_i["true"] > tk_i["cold"]
