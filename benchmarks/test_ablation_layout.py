"""Ablation A6: data-layout sensitivity.

Three layout decisions the paper's placement discipline ("shared data
are mapped to the processors that use them most frequently") makes, and
what careless alternatives cost:

* ticket lock: both counters in one block (the MCS-paper record) vs
  padded into separate blocks;
* central barrier: count and sense colocated vs separate blocks;
* sequential reduction: ``local_max`` slots padded at their writers vs
  a contiguous interleaved array (cross-slot false sharing).
"""

from repro.config import MachineConfig, Protocol
from repro.metrics import format_table
from repro.workloads import (
    run_barrier_workload, run_lock_workload, run_reduction_workload,
)

from conftest import run_once

P = 16


def _sweep(scale):
    rows = []
    for proto in (Protocol.WI, Protocol.PU):
        lock_co = run_lock_workload(
            MachineConfig(num_procs=P, protocol=proto), "tk",
            total_acquires=scale.lock_total_acquires, colocate=True)
        lock_pad = run_lock_workload(
            MachineConfig(num_procs=P, protocol=proto), "tk",
            total_acquires=scale.lock_total_acquires, colocate=False)
        rows.append([f"ticket {proto.short}: colocated",
                     lock_co.avg_latency,
                     lock_co.result.misses["total"],
                     lock_co.result.updates["total"]])
        rows.append([f"ticket {proto.short}: padded",
                     lock_pad.avg_latency,
                     lock_pad.result.misses["total"],
                     lock_pad.result.updates["total"]])

        bar_sep = run_barrier_workload(
            MachineConfig(num_procs=P, protocol=proto), "cb",
            episodes=scale.barrier_episodes, colocate=False)
        bar_co = run_barrier_workload(
            MachineConfig(num_procs=P, protocol=proto), "cb",
            episodes=scale.barrier_episodes, colocate=True)
        rows.append([f"central {proto.short}: separate",
                     bar_sep.avg_latency,
                     bar_sep.result.misses["total"],
                     bar_sep.result.updates["total"]])
        rows.append([f"central {proto.short}: colocated",
                     bar_co.avg_latency,
                     bar_co.result.misses["total"],
                     bar_co.result.updates["total"]])

        red_pad = run_reduction_workload(
            MachineConfig(num_procs=P, protocol=proto), "sr",
            iterations=scale.reduction_iters, padded=True)
        red_seq = run_reduction_workload(
            MachineConfig(num_procs=P, protocol=proto), "sr",
            iterations=scale.reduction_iters, padded=False)
        rows.append([f"seq-red {proto.short}: padded",
                     red_pad.avg_latency,
                     red_pad.result.misses["total"],
                     red_pad.result.updates["total"]])
        rows.append([f"seq-red {proto.short}: contiguous",
                     red_seq.avg_latency,
                     red_seq.result.misses["total"],
                     red_seq.result.updates["total"]])
    return rows


def test_ablation_layout(benchmark, scale):
    rows = run_once(benchmark, _sweep, scale)
    print()
    print(format_table(
        ["layout", "latency", "misses", "updates"], rows,
        title=f"Ablation: data-layout sensitivity ({P} processors)"))
    table = {r[0]: r for r in rows}
    # colocating the barrier's count+sense puts every arrival's counter
    # update into the spinners' block: a large slowdown under PU (all
    # that traffic lands on cached copies) and a visible one under WI
    assert (table["central u: colocated"][1]
            > table["central u: separate"][1])
    assert (table["central u: colocated"][3]
            > table["central u: separate"][3])
    # contiguous local_max slots inflict cross-slot sharing on the
    # sequential reduction under PU
    assert (table["seq-red u: contiguous"][1]
            > table["seq-red u: padded"][1])
