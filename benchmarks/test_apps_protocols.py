"""Application kernels under each protocol (beyond the paper's
synthetics): Jacobi stencil, parallel histogram, self-scheduling work
queue.  Complements figures 8-16 with whole-program behaviour."""

from repro.config import ALL_PROTOCOLS, MachineConfig, Protocol
from repro.apps import run_histogram, run_jacobi, run_workqueue
from repro.metrics import format_table

from conftest import run_once

P = 16


def _sweep(scale):
    iters = max(6, scale.barrier_episodes // 10)
    items = max(16, scale.reduction_iters // 4)
    rows = []
    for proto in ALL_PROTOCOLS:
        cfg = MachineConfig(num_procs=P, protocol=proto)
        jac = run_jacobi(cfg, iters=iters, cells_per_proc=8)
        hist = run_histogram(
            MachineConfig(num_procs=P, protocol=proto),
            items_per_proc=items, num_bins=4)
        wq = run_workqueue(
            MachineConfig(num_procs=P, protocol=proto),
            total_items=items * 2, lock_kind="MCS")
        rows.append([
            proto.value,
            jac.cycles_per_iter,
            jac.result.misses["total"],
            hist.result.total_cycles,
            wq.cycles_per_item,
            f"{wq.balance:.2f}",
        ])
    return rows


def test_apps_under_each_protocol(benchmark, scale):
    rows = run_once(benchmark, _sweep, scale)
    print()
    print(format_table(
        ["protocol", "jacobi cyc/iter", "jacobi misses",
         "histogram cycles", "queue cyc/item", "queue balance"],
        rows, title=f"Application kernels ({P} processors)"))
    by_proto = {r[0]: r for r in rows}
    # nearest-neighbour stencil: update protocols refresh halos in
    # place, WI re-fetches them every iteration
    assert by_proto["pu"][1] < by_proto["wi"][1]
    assert by_proto["pu"][2] < by_proto["wi"][2]
    # the atomic-heavy histogram favours memory-side atomics
    assert by_proto["pu"][3] < by_proto["wi"][3]
