"""Ablation A3: load-imbalanced reductions (paper section 4.3).

With pseudo-random local work before each reduction, lock contention
drops; the paper reports parallel reductions then become more efficient
than sequential ones, while parallel+PU/CU still beats parallel+WI.
"""

from repro.config import ALL_PROTOCOLS, MachineConfig, Protocol
from repro.metrics import Series
from repro.workloads import run_reduction_workload

from conftest import run_once

P = 32


def _sweep(scale):
    series = Series(
        title=f"Ablation: imbalanced reductions ({P}p)",
        xlabel="procs", ylabel="avg reduction latency (cycles)")
    for kind in ("sr", "pr"):
        for proto in ALL_PROTOCOLS:
            cfg = MachineConfig(num_procs=P, protocol=proto)
            res = run_reduction_workload(
                cfg, kind, iterations=scale.reduction_iters,
                imbalance=True)
            series.add(f"{kind}-{proto.short}", P, res.avg_latency)
    return series


def test_ablation_reduction_imbalance(benchmark, scale):
    series = run_once(benchmark, _sweep, scale)
    print()
    print(series.render())
    # parallel reductions with PU/CU beat parallel with WI (sec 4.3)
    assert series.get("pr-u", P) < series.get("pr-i", P)
    assert series.get("pr-c", P) < series.get("pr-i", P)
