"""Figure 14: average latency of one whole reduction operation
(sequential vs parallel) under the three protocols, swept over machine
sizes.  Synchronization uses the zero-traffic ideal primitives so only
reduction traffic is measured (paper section 4.3)."""

from repro.experiments import fig14_reduction_latency

from conftest import run_once


def test_fig14_reduction_latency(benchmark, scale, bench_sizes):
    series = run_once(benchmark, fig14_reduction_latency,
                      scale=scale, sizes=bench_sizes)
    print()
    print(series.render())

    top = max(bench_sizes)
    if top >= 16:
        # under WI, parallel beats sequential
        assert series.get("pr-i", top) < series.get("sr-i", top)
        # under update-based protocols, sequential is the right choice
        assert series.get("sr-u", top) < series.get("pr-u", top)
        # update-based sequential beats WI parallel outright
        assert series.get("sr-u", top) < series.get("pr-i", top)
