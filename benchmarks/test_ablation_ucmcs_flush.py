"""Ablation A5: which update-conscious MCS flush matters?

The paper's modification flushes both the predecessor's queue node
(after linking behind it) and the successor's (after handing over the
lock).  This bench isolates each flush's contribution to the update
reduction / miss increase tradeoff, plus the retain-private
optimization's role.
"""

from repro.config import MachineConfig, Protocol
from repro.metrics import format_table
from repro.sync.locks import MCSLock
from repro.workloads.locks import DEFAULT_JITTER_CYCLES
from repro.isa.ops import Compute
from repro.runtime import Machine

from conftest import run_once

import random

P = 16
HOLD = 50


def _selective_mcs(machine, flush_pred: bool, flush_succ: bool):
    lock = MCSLock(machine)
    lock.flush_pred = flush_pred
    lock.flush_succ = flush_succ
    return lock


def _run(lock_factory, total):
    cfg = MachineConfig(num_procs=P, protocol=Protocol.PU)
    m = Machine(cfg, max_events=20_000_000)
    lock = lock_factory(m)
    iters = max(1, total // P)

    def prog(node):
        rng = random.Random(0xF1A5 + node)
        for _ in range(iters):
            tok = yield from lock.acquire(node)
            yield Compute(HOLD)
            yield from lock.release(node, tok)
            yield Compute(rng.randint(0, DEFAULT_JITTER_CYCLES))

    m.spawn_all(prog)
    r = m.run()
    lat = r.total_cycles / (iters * P) - HOLD
    return [lat, r.misses["total"], r.updates["total"]]


def _sweep(scale):
    total = scale.lock_total_acquires
    rows = []
    for label, fp, fs in (("none (standard MCS)", False, False),
                          ("flush pred only", True, False),
                          ("flush succ only", False, True),
                          ("both (paper's ucMCS)", True, True)):
        rows.append([label] + _run(
            lambda m, fp=fp, fs=fs: _selective_mcs(m, fp, fs), total))
    return rows


def test_ablation_ucmcs_flush(benchmark, scale):
    rows = run_once(benchmark, _sweep, scale)
    print()
    print(format_table(
        ["flush policy", "latency", "misses", "updates"], rows,
        title=f"Ablation: update-conscious MCS flush policy "
              f"({P} processors, PU)"))
    table = {r[0]: r for r in rows}
    # each flush removes a source of stale sharing; both together
    # minimize update traffic
    assert (table["both (paper's ucMCS)"][3]
            <= table["none (standard MCS)"][3])
    # ... while costing extra (re-fetch) misses
    assert (table["both (paper's ucMCS)"][2]
            >= table["none (standard MCS)"][2])
