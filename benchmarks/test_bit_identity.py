"""Bit-identity guard for perf work on the simulation core.

Performance PRs must not change simulation *results*: this test runs
one mid-size figure point (the figure-8 MCS/CU point at 8 processors,
10% scale) and compares the **full** serialized
:class:`~repro.runtime.RunResult` -- every miss/update class, the whole
traffic matrix, per-type message and byte counts, contention cycles,
per-processor completion times -- against a checked-in golden file,
field by field.

If an optimization changes any number here it is not an optimization,
it is a semantic change: either revert it, or (for a deliberate model
fix) regenerate the golden file and explain every changed field in the
PR.  Regenerate with:

    PYTHONPATH=src python - <<'EOF'
    import json
    from repro.campaign import RunSpec, canonical_json
    from repro.campaign.runner import execute_spec
    from repro.campaign.result import run_result_to_jsonable
    from benchmarks.test_bit_identity import make_spec   # or inline it
    rec = execute_spec(make_spec())
    json.dump(json.loads(canonical_json(
        run_result_to_jsonable(rec.sim))),
        open("benchmarks/baselines/bitcheck_runresult.json", "w"),
        indent=1, sort_keys=True)
    EOF

The simulation is deterministic (seeded RNGs, seq-ordered event queue,
no hash-order dependence), so this holds across machines and Python
versions.  Not part of tier-1 (``testpaths = tests``); CI runs it in
the ``perf-smoke`` job.
"""

import json
import os

from repro.campaign import RunSpec
from repro.campaign.result import run_result_to_jsonable
from repro.campaign.runner import execute_spec
from repro.config import MachineConfig, Protocol

GOLDEN = os.path.join(os.path.dirname(__file__), "baselines",
                      "bitcheck_runresult.json")


def make_spec() -> RunSpec:
    return RunSpec.make(
        "lock", MachineConfig(num_procs=8, protocol=Protocol.CU),
        code_version_salt="bitcheck",
        kind="MCS", total_acquires=3200)


def test_mid_size_figure_point_is_bit_identical():
    rec = execute_spec(make_spec())
    assert rec.ok, rec.error
    got = json.loads(json.dumps(run_result_to_jsonable(rec.sim)))
    with open(GOLDEN, encoding="utf-8") as fh:
        want = json.load(fh)
    # compare field-by-field first for a readable diff on failure
    assert set(got) == set(want)
    for field in sorted(want):
        assert got[field] == want[field], f"RunResult[{field!r}] diverged"
    assert got == want
