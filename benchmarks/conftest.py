"""Benchmark configuration.

Each benchmark regenerates one of the paper's figures at a reduced
scale (set REPRO_BENCH_SCALE=1.0 for the paper's full iteration counts)
and prints the resulting table, so ``pytest benchmarks/
--benchmark-only`` reproduces the evaluation section end to end.

The figure benchmarks run through the campaign layer: ``run_once``
hands every figure entry point a shared
:class:`~repro.campaign.CampaignRunner`, so ``REPRO_BENCH_JOBS=4``
fans each figure's simulations out over 4 worker processes (tables are
bit-identical to serial) and ``REPRO_BENCH_CACHE=dir`` reuses results
across benchmark invocations through the content-addressed cache.
"""

import inspect
import os

import pytest

from repro.campaign import CampaignRunner, ResultCache
from repro.config import ExperimentScale

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.02"))
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
CACHE_DIR = os.environ.get("REPRO_BENCH_CACHE", "")

_RUNNER = None


def campaign_runner() -> CampaignRunner:
    """The process-wide runner shared by every figure benchmark."""
    global _RUNNER
    if _RUNNER is None:
        cache = ResultCache(CACHE_DIR) if CACHE_DIR else None
        _RUNNER = CampaignRunner(jobs=JOBS, cache=cache)
    return _RUNNER


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    return ExperimentScale.scaled(SCALE)


@pytest.fixture(scope="session")
def bench_sizes():
    """Machine sizes for the latency sweeps."""
    sizes = os.environ.get("REPRO_BENCH_SIZES", "1,2,4,8,16,32")
    return tuple(int(s) for s in sizes.split(","))


def run_once(benchmark, fn, *args, **kw):
    """Run ``fn`` exactly once under the benchmark timer.

    Campaign-aware callables (those taking a ``runner`` keyword, i.e.
    the figure entry points) get the shared runner injected so the
    whole benchmark suite honours REPRO_BENCH_JOBS / REPRO_BENCH_CACHE.
    """
    if "runner" not in kw:
        try:
            params = inspect.signature(fn).parameters
        except (TypeError, ValueError):
            params = {}
        if "runner" in params:
            kw["runner"] = campaign_runner()
    return benchmark.pedantic(fn, args=args, kwargs=kw,
                              rounds=1, iterations=1)
