"""Benchmark configuration.

Each benchmark regenerates one of the paper's figures at a reduced
scale (set REPRO_BENCH_SCALE=1.0 for the paper's full iteration counts)
and prints the resulting table, so ``pytest benchmarks/
--benchmark-only`` reproduces the evaluation section end to end.
"""

import os

import pytest

from repro.config import ExperimentScale

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.02"))


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    return ExperimentScale.scaled(SCALE)


@pytest.fixture(scope="session")
def bench_sizes():
    """Machine sizes for the latency sweeps."""
    sizes = os.environ.get("REPRO_BENCH_SIZES", "1,2,4,8,16,32")
    return tuple(int(s) for s in sizes.split(","))


def run_once(benchmark, fn, *args, **kw):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kw,
                              rounds=1, iterations=1)
