"""Property: a deadlocked run attributes the blocked thread(s).

When the event queue drains with unfinished threads, the
:class:`~repro.engine.DeadlockError` must carry a structured
``stuck`` list naming each blocked node and the repr of the operation
it was blocked on -- whatever subset of threads we wedge, under any
protocol."""

from hypothesis import given, settings, strategies as st

from repro.config import MachineConfig, Protocol
from repro.engine import DeadlockError, StuckThread
from repro.isa.ops import Compute, Read, SpinUntil, Write
from repro.runtime import Machine

import pytest

PROTOCOLS = [Protocol.WI, Protocol.PU, Protocol.CU]

cases = st.tuples(
    st.integers(min_value=2, max_value=6),            # machine size
    st.sets(st.integers(min_value=0, max_value=5),
            min_size=1),                              # wedged nodes
    st.sampled_from(PROTOCOLS),
)


@settings(max_examples=25, deadline=None)
@given(cases)
def test_deadlock_attributes_stuck_threads(case):
    nprocs, wedged, protocol = case
    wedged = {n for n in wedged if n < nprocs}
    if not wedged:
        wedged = {0}
    cfg = MachineConfig(num_procs=nprocs, protocol=protocol)
    machine = Machine(cfg)
    never = machine.memmap.alloc_word(0, "never")     # nobody stores 1

    def spinner(node):
        yield Compute(node + 1)
        yield SpinUntil(never, lambda v: v == 1)

    def worker(node):
        scratch = machine.memmap.alloc_word(node, f"scratch{node}")
        yield Write(scratch, node)
        yield Read(scratch)

    for n in range(nprocs):
        machine.spawn(n, spinner(n) if n in wedged else worker(n))

    with pytest.raises(DeadlockError) as exc_info:
        machine.run()

    stuck = exc_info.value.stuck
    assert isinstance(stuck, list)
    assert all(isinstance(s, StuckThread) for s in stuck)
    # exactly the wedged nodes, each blocked on its spin
    assert sorted(s.node for s in stuck) == sorted(wedged)
    for s in stuck:
        assert "SpinUntil" in s.op
        # the node and op also appear in the rendered message
        assert str(s) in str(exc_info.value)
