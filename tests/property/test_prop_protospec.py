"""Property tests for the protospec JSON serialization: any structurally
well-formed spec must survive ``to_json``/``from_json`` (and the string
``dumps``/``loads``) without losing or inventing a single field."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.network.messages import MsgType
from repro.protospec import (
    ACTION_VOCABULARY, Impossible, ProtocolSpec, SideSpec,
    TransitionRow,
)
from repro.protospec.model import LOCAL_EVENTS

_STATES = ("I", "S", "M", "V", "R", "BUSY_R", "SM_W", "*")
_EVENTS = tuple(MsgType.__members__) + tuple(LOCAL_EVENTS)
_ACTIONS = (tuple(ACTION_VOCABULARY)
            + tuple(f"send:{m}" for m in ("INV", "READ_REPLY", "UPDATE"))
            + ("cache:=MODIFIED", "dir:=SHARED"))

_text = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
    min_size=1, max_size=30)

rows = st.builds(
    TransitionRow,
    state=st.sampled_from(_STATES),
    event=st.sampled_from(_EVENTS),
    actions=st.lists(st.sampled_from(_ACTIONS), max_size=4)
            .map(tuple),
    next_state=st.none() | st.sampled_from(_STATES[:-1]),
    guard=st.none() | _text,
    retry=st.booleans(),
    fairness=st.none() | _text,
    note=st.none() | _text)

impossibles = st.builds(
    Impossible,
    state=st.sampled_from(_STATES[:-1]),
    event=st.sampled_from(_EVENTS),
    reason=_text)


def _sides(name):
    return st.builds(
        SideSpec,
        name=st.just(name),
        initial=st.sampled_from(_STATES[:-1]),
        states=st.just(_STATES[:-1]),
        stable=st.just(_STATES[:3]),
        events=st.just(_EVENTS[:6]),
        rows=st.lists(rows, max_size=8).map(tuple),
        impossible=st.lists(impossibles, max_size=4).map(tuple))


specs = st.builds(
    ProtocolSpec,
    protocol=st.sampled_from(("wi", "pu", "cu", "hybrid", "toy")),
    description=_text,
    cache=_sides("cache"),
    home=_sides("home"),
    unused_messages=st.lists(
        st.tuples(st.sampled_from(tuple(MsgType.__members__)), _text),
        max_size=4).map(tuple))


class TestProtospecRoundTrip:
    @settings(deadline=None, max_examples=200)
    @given(rows)
    def test_row_round_trip(self, row):
        assert TransitionRow.from_json(row.to_json()) == row

    @settings(deadline=None, max_examples=200)
    @given(impossibles)
    def test_impossible_round_trip(self, imp):
        assert Impossible.from_json(imp.to_json()) == imp

    @settings(deadline=None, max_examples=100)
    @given(specs)
    def test_spec_round_trip(self, spec):
        assert ProtocolSpec.from_json(spec.to_json()) == spec
        assert ProtocolSpec.loads(spec.dumps()) == spec

    @settings(deadline=None, max_examples=100)
    @given(specs)
    def test_dumps_is_deterministic(self, spec):
        assert spec.dumps() == ProtocolSpec.loads(spec.dumps()).dumps()
