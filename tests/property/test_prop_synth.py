"""Property tests for the transient-state synthesizer.

The author of a stable-state spec lists transactions, local rules,
reactions, serves, forwards and home rules in whatever order reads
best; nothing about that order is semantic.  So for every shuffled
presentation of the MESI stable spec the synthesizer must emit the
same transition *relation*, and the result must pass every existing
staticcheck pass: structural validation, the analyzer (completeness,
contradiction, reachability, progress, vocabulary, routing), and the
compiled-dispatch round trip against the MESI controller."""

from __future__ import annotations

import dataclasses

from hypothesis import given, settings, strategies as st

from repro.config import Protocol
from repro.protocols import _CTRL_CLASSES
from repro.protospec import mesi_stable, synthesize
from repro.staticcheck import analyze_spec, check_dispatch_tables

_STABLE = mesi_stable()
_BASELINE = synthesize(_STABLE)
# impossible-entry *reasons* are generated prose that enumerates the
# author's transients in authoring order, so compare pairs, not text
_BASE_ROWS = {
    side.name: (set(side.rows),
                {(i.state, i.event) for i in side.impossible})
    for side in _BASELINE.sides
}


def _shuffled_stable(draw):
    cache = _STABLE.cache
    home = _STABLE.home
    cache = dataclasses.replace(
        cache,
        local_rules=tuple(draw(st.permutations(cache.local_rules))),
        transactions=tuple(draw(st.permutations(cache.transactions))),
        reactions=tuple(draw(st.permutations(cache.reactions))),
    )
    home = dataclasses.replace(
        home,
        serves=tuple(draw(st.permutations(home.serves))),
        forwards=tuple(draw(st.permutations(home.forwards))),
        rules=tuple(draw(st.permutations(home.rules))),
    )
    return dataclasses.replace(_STABLE, cache=cache, home=home)


shuffled = st.composite(_shuffled_stable)()


class TestSynthesisIsOrderIndependent:

    @settings(deadline=None, max_examples=30)
    @given(shuffled)
    def test_same_transition_relation(self, stable):
        spec = synthesize(stable)
        spec.validate()
        for side in spec.sides:
            rows, impossible = _BASE_ROWS[side.name]
            assert set(side.rows) == rows
            assert {(i.state, i.event)
                    for i in side.impossible} == impossible
            assert set(side.states) == set(
                getattr(_BASELINE, side.name).states)

    @settings(deadline=None, max_examples=15)
    @given(shuffled)
    def test_synthesized_spec_passes_the_analyzer(self, stable):
        assert analyze_spec(synthesize(stable)) == []

    @settings(deadline=None, max_examples=10)
    @given(shuffled)
    def test_synthesized_spec_matches_compiled_dispatch(self, stable):
        spec = synthesize(stable)
        cls = _CTRL_CLASSES[Protocol.MESI]
        assert check_dispatch_tables(spec, cls, Protocol.MESI) == []
