"""Adversarial-timing property tests.

Network jitter stretches each remote message's propagation by a
seed-deterministic pseudo-random amount (per-destination FIFO is
preserved -- it is a NIC property).  Protocol correctness and the
synchronization algorithms must hold for *every* seed; hypothesis
drives the seed and the workload shape.
"""

from hypothesis import given, settings, strategies as st

from repro.config import MachineConfig, Protocol
from repro.isa.ops import Compute, Fence, FetchAdd, Read, Write
from repro.runtime import Machine
from repro.sync import make_barrier, make_lock

PROTOCOLS = [Protocol.WI, Protocol.PU, Protocol.CU]


def jittered(protocol, nprocs, seed, jitter=40, **kw):
    return Machine(
        MachineConfig(num_procs=nprocs, protocol=protocol,
                      network_jitter_cycles=jitter,
                      network_jitter_seed=seed, **kw),
        max_events=5_000_000)


class TestAdversarialTiming:
    @settings(deadline=None, max_examples=20)
    @given(st.sampled_from(PROTOCOLS), st.integers(0, 10_000),
           st.sampled_from(["tk", "MCS", "uc", "tas"]))
    def test_locks_exclusive_under_any_timing(self, protocol, seed,
                                              kind):
        m = jittered(protocol, 4, seed)
        lock = make_lock(kind, m)
        state = {"in": 0, "peak": 0, "count": 0}

        def prog(node):
            for _ in range(3):
                tok = yield from lock.acquire(node)
                state["in"] += 1
                state["peak"] = max(state["peak"], state["in"])
                yield Compute(9)
                state["in"] -= 1
                state["count"] += 1
                yield from lock.release(node, tok)

        m.spawn_all(lambda n: prog(n))
        m.run()
        assert state["peak"] == 1
        assert state["count"] == 12

    @settings(deadline=None, max_examples=20)
    @given(st.sampled_from(PROTOCOLS), st.integers(0, 10_000),
           st.sampled_from(["cb", "db", "tb"]))
    def test_barriers_correct_under_any_timing(self, protocol, seed,
                                               kind):
        P = 5
        m = jittered(protocol, P, seed)
        bar = make_barrier(kind, m)
        phase = [0] * P
        bad = []

        def prog(node):
            for ep in range(4):
                phase[node] = ep
                yield Compute((node * 31 + ep * 7) % 50)
                yield from bar.wait(node)
                if min(phase) < ep:
                    bad.append((node, ep))

        m.spawn_all(lambda n: prog(n))
        m.run()
        assert not bad

    @settings(deadline=None, max_examples=20)
    @given(st.sampled_from(PROTOCOLS), st.integers(0, 10_000))
    def test_message_passing_ordered_under_any_timing(self, protocol,
                                                      seed):
        """The MP litmus pattern survives adversarial timing: a fenced
        data+flag publication is never observed out of order."""
        m = jittered(protocol, 3, seed)
        data = m.memmap.alloc_word(1, "data")
        flag = m.memmap.alloc_word(2, "flag")
        observed = []

        def writer(node):
            yield Write(data, 77)
            yield Fence()
            yield Write(flag, 1)
            yield Fence()

        def reader(node):
            from repro.isa.ops import SpinUntil
            yield SpinUntil(flag, lambda v: v == 1)
            v = yield Read(data)
            observed.append(v)

        m.spawn(0, writer(0))
        m.spawn(1, reader(1))
        m.spawn(2, reader(2))
        m.run()
        assert observed == [77, 77]

    @settings(deadline=None, max_examples=15)
    @given(st.sampled_from(PROTOCOLS), st.integers(0, 10_000),
           st.integers(2, 5))
    def test_atomics_linearize_under_any_timing(self, protocol, seed,
                                                nprocs):
        m = jittered(protocol, nprocs, seed)
        counter = m.memmap.alloc_word(0, "c")
        olds = []

        def prog(node):
            for _ in range(4):
                old = yield FetchAdd(counter, 1)
                olds.append(old)
                yield Compute(node * 5 + 1)

        m.spawn_all(lambda n: prog(n))
        m.run()
        m.check_coherence_invariants()
        assert sorted(olds) == list(range(4 * nprocs))

    @settings(deadline=None, max_examples=10)
    @given(st.integers(0, 10_000))
    def test_jitter_zero_equals_baseline(self, seed):
        """jitter=0 must be bit-identical to the un-jittered fabric,
        whatever the seed."""
        def run(jitter_cycles, seed):
            m = Machine(MachineConfig(
                num_procs=3, protocol=Protocol.PU,
                network_jitter_cycles=jitter_cycles,
                network_jitter_seed=seed), max_events=1_000_000)
            a = m.memmap.alloc_word(0)

            def prog(node):
                for i in range(5):
                    yield Write(a, node * 10 + i)
                    yield Read(a)
                yield Fence()

            m.spawn_all(lambda n: prog(n))
            return m.run()

        base = run(0, 0)
        same = run(0, seed)
        assert base.total_cycles == same.total_cycles
        assert base.misses == same.misses
