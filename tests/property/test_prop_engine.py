"""Property-based tests for the simulation kernel and network."""

from hypothesis import given, settings, strategies as st

from repro.config import MachineConfig
from repro.engine import Simulator
from repro.network import Message, MsgType, Network
from repro.network.topology import MeshTopology


class TestSimulatorProperties:
    @given(st.lists(st.integers(min_value=0, max_value=1000),
                    min_size=1, max_size=200))
    def test_events_fire_in_nondecreasing_time_order(self, delays):
        sim = Simulator()
        fired = []
        for d in delays:
            sim.schedule(d, lambda d=d: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)
        assert sim.now == max(delays)

    @given(st.lists(st.integers(min_value=0, max_value=100),
                    min_size=1, max_size=100),
           st.integers(min_value=0, max_value=120))
    def test_run_until_is_prefix_of_full_run(self, delays, horizon):
        def trace(until):
            sim = Simulator()
            log = []
            for i, d in enumerate(delays):
                sim.schedule(d, log.append, i)
            sim.run(until=until)
            sim.run()
            return log

        full = trace(None)
        split = trace(horizon)
        assert split == full

    @given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 50)),
                    min_size=1, max_size=50))
    def test_nested_schedules_preserve_order(self, pairs):
        sim = Simulator()
        log = []

        def outer(i, inner_delay):
            sim.schedule(inner_delay, log.append, i)

        for i, (d, inner) in enumerate(pairs):
            sim.schedule(d, outer, i, inner)
        sim.run()
        assert len(log) == len(pairs)


class TestTopologyProperties:
    @given(st.integers(min_value=1, max_value=64))
    def test_hops_metric_axioms(self, n):
        topo = MeshTopology(n)
        for a in range(0, n, max(1, n // 5)):
            for b in range(0, n, max(1, n // 5)):
                h = topo.hops(a, b)
                assert h >= 0
                assert (h == 0) == (a == b)
                assert h == topo.hops(b, a)
                assert h <= topo.diameter

    @given(st.integers(min_value=2, max_value=64),
           st.data())
    def test_route_is_shortest_path(self, n, data):
        topo = MeshTopology(n)
        a = data.draw(st.integers(0, n - 1))
        b = data.draw(st.integers(0, n - 1))
        route = topo.route(a, b)
        assert len(route) == topo.hops(a, b) + 1
        assert len(set(route)) == len(route)  # no loops


class TestNetworkProperties:
    @settings(deadline=None, max_examples=30)
    @given(st.lists(st.tuples(st.integers(0, 7), st.integers(0, 7),
                              st.sampled_from([MsgType.READ_REQ,
                                               MsgType.READ_REPLY,
                                               MsgType.UPD_PROP])),
                    min_size=1, max_size=60))
    def test_per_destination_fifo_for_remote_messages(self, sends):
        sim = Simulator()
        cfg = MachineConfig(num_procs=8)
        net = Network(sim, cfg)
        deliveries = {n: [] for n in range(8)}
        for n in range(8):
            net.register(n, lambda m, n=n: deliveries[n].append(m.mid))
        remote_order = {n: [] for n in range(8)}
        for src, dst, mtype in sends:
            msg = Message(mtype, src, dst, 0)
            if src != dst:
                remote_order[dst].append(msg.mid)
            net.send(msg)
        sim.run()
        for n in range(8):
            got_remote = [mid for mid in deliveries[n]
                          if mid in set(remote_order[n])]
            assert got_remote == remote_order[n]

    @settings(deadline=None, max_examples=30)
    @given(st.lists(st.tuples(st.integers(0, 7), st.integers(0, 7)),
                    min_size=1, max_size=60))
    def test_all_messages_delivered_exactly_once(self, pairs):
        sim = Simulator()
        cfg = MachineConfig(num_procs=8)
        net = Network(sim, cfg)
        seen = []
        for n in range(8):
            net.register(n, lambda m: seen.append(m.mid))
        sent = []
        for src, dst in pairs:
            msg = Message(MsgType.READ_REQ, src, dst, 0)
            sent.append(msg.mid)
            net.send(msg)
        sim.run()
        assert sorted(seen) == sorted(sent)
        assert net.stats.messages == len(pairs)

    @settings(deadline=None, max_examples=30)
    @given(st.lists(st.tuples(st.integers(0, 7), st.integers(0, 7)),
                    min_size=1, max_size=40))
    def test_delivery_never_before_contention_free_latency(self, pairs):
        sim = Simulator()
        cfg = MachineConfig(num_procs=8)
        net = Network(sim, cfg)
        arrivals = {}
        for n in range(8):
            net.register(n, lambda m: arrivals.setdefault(m.mid, sim.now))
        floor = {}
        for src, dst in pairs:
            msg = Message(MsgType.READ_REQ, src, dst, 0)
            floor[msg.mid] = net.latency(src, dst, cfg.ctrl_msg_bytes)
            net.send(msg)
        sim.run()
        for mid, t in arrivals.items():
            assert t >= floor[mid]
