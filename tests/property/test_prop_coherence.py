"""Property-based coherence tests: random programs must satisfy the
memory model under every protocol.

Random little programs (reads, writes, computes, atomics, fences over a
small set of shared words) run on all three protocols; afterwards we
check:

* *value integrity*: every read returns a value some processor actually
  wrote to that word (or the initial 0) -- no corruption, no
  cross-word leakage;
* *single-writer-per-word convergence*: a word written by exactly one
  processor ends with that processor's last written value everywhere;
* *atomic linearizability for counters*: concurrent fetch_and_adds
  return distinct values and the final count equals the sum;
* *quiescence + directory/cache agreement* after the run;
* *determinism*: identical programs give identical cycle counts.
"""

from hypothesis import given, settings, strategies as st

from repro.config import MachineConfig, Protocol
from repro.isa.ops import Compute, Fence, FetchAdd, Read, Write
from repro.runtime import Machine

PROTOCOLS = [Protocol.WI, Protocol.PU, Protocol.CU]

# a tiny op vocabulary over W words and some compute
ops_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("read"), st.integers(0, 3)),
        st.tuples(st.just("write"), st.integers(0, 3)),
        st.tuples(st.just("compute"), st.integers(1, 30)),
        st.tuples(st.just("faa"), st.integers(0, 3)),
        st.tuples(st.just("fence"), st.just(0)),
    ),
    min_size=1, max_size=25,
)

programs_strategy = st.lists(ops_strategy, min_size=2, max_size=4)


def build_and_run(protocol, per_node_ops, nprocs):
    cfg = MachineConfig(num_procs=nprocs, protocol=protocol)
    m = Machine(cfg, max_events=2_000_000)
    words = [m.memmap.alloc_word(i % nprocs, f"w{i}") for i in range(4)]
    reads = []   # (node, word_index, value)
    writes = {}  # word_index -> set of values written (plus 0)

    def prog(node, ops):
        seq = 0
        for kind, arg in ops:
            if kind == "read":
                v = yield Read(words[arg])
                reads.append((node, arg, v))
            elif kind == "write":
                val = node * 1000 + seq
                writes.setdefault(arg, set()).add(val)
                seq += 1
                yield Write(words[arg], val)
            elif kind == "compute":
                yield Compute(arg)
            elif kind == "faa":
                v = yield FetchAdd(words[arg], 1000000)
                reads.append((node, arg, v % 1000000))
                writes.setdefault(arg, set())
            elif kind == "fence":
                yield Fence()
        yield Fence()

    for node, ops in enumerate(per_node_ops):
        m.spawn(node, prog(node, ops))
    result = m.run()
    return m, result, words, reads, writes


class TestRandomPrograms:
    @settings(deadline=None, max_examples=25)
    @given(programs_strategy)
    def test_value_integrity_all_protocols(self, per_node_ops):
        n = len(per_node_ops)
        for protocol in PROTOCOLS:
            m, result, words, reads, writes = build_and_run(
                protocol, per_node_ops, n)
            for node, widx, value in reads:
                legal = writes.get(widx, set()) | {0}
                # fetch_and_adds deposit multiples of 1e6 on top of any
                # base value; strip them before checking integrity
                assert value % 1_000_000 in legal, \
                    (protocol, node, widx, value)
            m.check_coherence_invariants()
            assert m.quiesced()

    @settings(deadline=None, max_examples=25)
    @given(programs_strategy)
    def test_determinism(self, per_node_ops):
        n = len(per_node_ops)
        for protocol in PROTOCOLS:
            r1 = build_and_run(protocol, per_node_ops, n)[1]
            r2 = build_and_run(protocol, per_node_ops, n)[1]
            assert r1.total_cycles == r2.total_cycles
            assert r1.events == r2.events
            assert r1.misses == r2.misses
            assert r1.updates == r2.updates

    @settings(deadline=None, max_examples=15)
    @given(st.integers(2, 6), st.integers(1, 8))
    def test_concurrent_counters_linearize(self, nprocs, per_proc):
        for protocol in PROTOCOLS:
            cfg = MachineConfig(num_procs=nprocs, protocol=protocol)
            m = Machine(cfg, max_events=2_000_000)
            counter = m.memmap.alloc_word(0, "counter")
            olds = []

            def prog(node):
                for _ in range(per_proc):
                    old = yield FetchAdd(counter, 1)
                    olds.append(old)
                    yield Compute(node * 7 % 13 + 1)

            m.spawn_all(lambda node: prog(node))
            m.run()
            total = nprocs * per_proc
            assert sorted(olds) == list(range(total)), protocol
            home = m.memmap.home_of(counter)
            word = m.config.word_of(counter)
            # final value lives either in home memory or a dirty copy
            vals = [m.controllers[home].mem.read_word(word)]
            for c in m.controllers:
                line = c.cache.lookup(m.config.block_of(counter))
                if line is not None:
                    vals.append(line.data.get(word, 0))
            assert total in vals, protocol

    @settings(deadline=None, max_examples=20)
    @given(st.integers(2, 5), st.integers(1, 10),
           st.integers(0, 4))
    def test_single_writer_converges(self, nprocs, nwrites, readers_seed):
        for protocol in PROTOCOLS:
            cfg = MachineConfig(num_procs=nprocs, protocol=protocol)
            m = Machine(cfg, max_events=2_000_000)
            addr = m.memmap.alloc_word(readers_seed % nprocs, "x")
            final = nwrites + 100

            def writer(node):
                for i in range(nwrites):
                    yield Write(addr, i + 101)
                    yield Compute(3)
                yield Fence()

            def reader(node):
                for _ in range(4):
                    yield Read(addr)
                    yield Compute(17)

            m.spawn(0, writer(0))
            for node in range(1, nprocs):
                m.spawn(node, reader(node))
            m.run()
            # after quiesce every cached copy and memory agree on the
            # single writer's last value
            word = m.config.word_of(addr)
            block = m.config.block_of(addr)
            home = m.memmap.home_of(addr)
            dirty_somewhere = False
            for c in m.controllers:
                line = c.cache.lookup(block)
                if line is None:
                    continue
                from repro.memsys.cache import CacheState
                if line.state in (CacheState.MODIFIED,
                                  CacheState.RETAINED):
                    dirty_somewhere = True
                assert line.data.get(word, 0) == final, protocol
            if not dirty_somewhere:
                assert m.controllers[home].mem.read_word(word) == final


class TestMaskedWriteProperties:
    @settings(deadline=None, max_examples=25)
    @given(st.lists(st.tuples(st.integers(0, 3),
                              st.integers(0, 255)),
                    min_size=1, max_size=12))
    def test_disjoint_byte_stores_never_lost(self, stores):
        """Each of 4 processors owns one byte of a shared word; byte
        stores from different processors must all survive (the tree
        barrier's childnotready guarantee)."""
        for protocol in PROTOCOLS:
            cfg = MachineConfig(num_procs=4, protocol=protocol)
            m = Machine(cfg, max_events=2_000_000)
            addr = m.memmap.alloc_word(0, "flags")
            last_per_byte = {}
            by_node = {n: [] for n in range(4)}
            for slot, val in stores:
                by_node[slot].append(val)
                last_per_byte[slot] = val

            def prog(node):
                mask = 0xFF << (8 * node)
                for val in by_node[node]:
                    yield Write(addr, val << (8 * node), mask)
                    yield Compute(5)
                yield Fence()

            m.spawn_all(lambda n: prog(n))
            m.run()
            expected = 0
            for slot, val in last_per_byte.items():
                expected |= val << (8 * slot)
            # read final word from home memory or any dirty copy
            word = m.config.word_of(addr)
            block = m.config.block_of(addr)
            from repro.memsys.cache import CacheState
            final = m.controllers[0].mem.read_word(word)
            for c in m.controllers:
                line = c.cache.lookup(block)
                if line is not None and line.state in (
                        CacheState.MODIFIED, CacheState.RETAINED):
                    final = line.data.get(word, 0)
            assert final == expected, protocol
