"""Property: interleaved snapshot/restore never changes outputs.

For any litmus program, protocol and set of snapshot times, running
with snapshot / run-ahead / restore cycles sprinkled through the
simulation must produce a RunResult bit-identical to an undisturbed
run of the same program -- the figure pipeline sits directly on these
RunResults, so this is exactly the "snapshots cannot perturb figure
points" guarantee the model checker's DFS relies on.
"""

from hypothesis import given, settings, strategies as st

from repro.campaign.result import run_result_to_jsonable
from repro.config import Protocol
from repro.modelcheck import get_program
from repro.runtime import Machine

PROGRAMS = ["sb", "mp", "lock", "barrier", "evict", "subword"]
PROTOCOLS = [Protocol.WI, Protocol.PU, Protocol.CU, Protocol.HYBRID]


def _run_plain(litmus, config) -> dict:
    machine = Machine(config)
    litmus.build(machine)
    return run_result_to_jsonable(machine.run())


@settings(deadline=None, max_examples=30)
@given(st.sampled_from(PROGRAMS), st.sampled_from(PROTOCOLS),
       st.lists(st.integers(1, 150), min_size=1, max_size=4),
       st.integers(1, 25))
def test_interleaved_snapshot_restore_is_invisible(
        name, protocol, cuts, ahead):
    litmus = get_program(name)
    config = litmus.config(protocol)
    ref = _run_plain(litmus, config)

    machine = Machine(config)
    litmus.build(machine)
    machine.record_histories()
    machine.prepare()
    for cut in sorted(set(cuts)):
        machine.sim.run(until=cut)
        snap = machine.snapshot()
        # perturb: run ahead past the snapshot, then rewind
        machine.sim.run(until=cut + ahead)
        machine.restore(snap)
    machine.sim.run()
    assert run_result_to_jsonable(machine.finish()) == ref
