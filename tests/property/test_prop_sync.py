"""Property-based tests for synchronization algorithms and the
classifiers' accounting invariants."""

from hypothesis import given, settings, strategies as st

from repro.config import MachineConfig, Protocol
from repro.isa.ops import Compute, Read, Write
from repro.runtime import Machine
from repro.sync import make_barrier, make_lock

PROTOCOLS = [Protocol.WI, Protocol.PU, Protocol.CU]


class TestLockProperties:
    @settings(deadline=None, max_examples=12)
    @given(st.sampled_from(["tk", "MCS", "uc"]),
           st.sampled_from(PROTOCOLS),
           st.integers(2, 6),
           st.lists(st.integers(0, 120), min_size=2, max_size=6))
    def test_mutual_exclusion_arbitrary_arrival_patterns(
            self, kind, protocol, nprocs, delays):
        cfg = MachineConfig(num_procs=nprocs, protocol=protocol)
        m = Machine(cfg, max_events=3_000_000)
        lock = make_lock(kind, m)
        state = {"in": 0, "peak": 0, "count": 0}

        def prog(node, delay):
            yield Compute(delay + 1)
            for i in range(3):
                tok = yield from lock.acquire(node)
                state["in"] += 1
                state["peak"] = max(state["peak"], state["in"])
                yield Compute((node * 13 + i * 7) % 40 + 1)
                state["in"] -= 1
                state["count"] += 1
                yield from lock.release(node, tok)

        for node in range(nprocs):
            m.spawn(node, prog(node, delays[node % len(delays)]))
        m.run()
        assert state["peak"] == 1
        assert state["count"] == 3 * nprocs

    @settings(deadline=None, max_examples=10)
    @given(st.sampled_from(PROTOCOLS), st.integers(2, 6))
    def test_lock_protected_increments_never_lost(self, protocol, nprocs):
        cfg = MachineConfig(num_procs=nprocs, protocol=protocol)
        m = Machine(cfg, max_events=3_000_000)
        lock = make_lock("MCS", m)
        shared = m.memmap.alloc_word(0)
        finals = []

        def prog(node):
            for _ in range(4):
                tok = yield from lock.acquire(node)
                v = yield Read(shared)
                yield Write(shared, v + 1)
                finals.append(v + 1)
                yield from lock.release(node, tok)

        m.spawn_all(lambda n: prog(n))
        m.run()
        assert max(finals) == 4 * nprocs


class TestBarrierProperties:
    @settings(deadline=None, max_examples=12)
    @given(st.sampled_from(["cb", "db", "tb"]),
           st.sampled_from(PROTOCOLS),
           st.integers(2, 9),
           st.integers(1, 5),
           st.lists(st.integers(0, 300), min_size=2, max_size=9))
    def test_barrier_separates_episodes(self, kind, protocol, nprocs,
                                        episodes, delays):
        cfg = MachineConfig(num_procs=nprocs, protocol=protocol)
        m = Machine(cfg, max_events=3_000_000)
        bar = make_barrier(kind, m)
        phase = [0] * nprocs
        violations = []

        def prog(node):
            for ep in range(episodes):
                phase[node] = ep
                yield Compute(delays[(node + ep) % len(delays)] + 1)
                yield from bar.wait(node)
                if min(phase) < ep:
                    violations.append((node, ep))

        m.spawn_all(lambda n: prog(n))
        m.run()
        assert not violations


class TestClassifierConservation:
    @settings(deadline=None, max_examples=15)
    @given(st.sampled_from(PROTOCOLS),
           st.lists(st.tuples(st.integers(0, 2), st.integers(0, 3),
                              st.booleans()),
                    min_size=1, max_size=30))
    def test_totals_are_consistent(self, protocol, accesses):
        """Category counts sum to totals; every network update message
        eventually lands in exactly one category."""
        cfg = MachineConfig(num_procs=3, protocol=protocol)
        m = Machine(cfg, max_events=2_000_000)
        words = [m.memmap.alloc_word(i % 3) for i in range(4)]
        per_node = {0: [], 1: [], 2: []}
        for node, widx, is_write in accesses:
            per_node[node].append((widx, is_write))

        def prog(node):
            for widx, is_write in per_node[node]:
                if is_write:
                    yield Write(words[widx], node)
                else:
                    yield Read(words[widx])
                yield Compute(3)
            from repro.isa.ops import Fence
            yield Fence()

        m.spawn_all(lambda n: prog(n))
        r = m.run()
        misses = r.misses
        assert misses["total"] == sum(
            misses[k] for k in
            ("cold", "true", "false", "eviction", "drop"))
        updates = r.updates
        assert updates["total"] == sum(
            updates[k] for k in
            ("useful", "false", "proliferation", "replacement",
             "termination", "drop"))
        if protocol is Protocol.WI:
            assert updates["total"] == 0
        else:
            # every UPD_PROP message was classified (stale deliveries
            # count as proliferation)
            from repro.network.messages import MsgType
            sent = m.net.stats.by_type.get(MsgType.UPD_PROP, 0)
            assert updates["total"] == sent

    @settings(deadline=None, max_examples=15)
    @given(st.lists(st.tuples(st.integers(0, 2), st.integers(0, 3),
                              st.booleans()),
                    min_size=1, max_size=30))
    def test_wi_and_pu_reads_see_identical_final_values(self, accesses):
        """Functional equivalence: the same single-threaded program
        yields the same read values under every protocol."""
        outs = []
        for protocol in PROTOCOLS:
            cfg = MachineConfig(num_procs=1, protocol=protocol)
            m = Machine(cfg, max_events=1_000_000)
            words = [m.memmap.alloc_word(0) for _ in range(4)]
            got = []

            def prog():
                for i, (node, widx, is_write) in enumerate(accesses):
                    if is_write:
                        yield Write(words[widx], i)
                    else:
                        v = yield Read(words[widx])
                        got.append(v)

            m.spawn(0, prog())
            m.run()
            outs.append(got)
        assert outs[0] == outs[1] == outs[2]
