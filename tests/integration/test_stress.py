"""Stress tests: tiny caches force evictions/writebacks to race with
every protocol transaction; heavy fan-in hammers single homes.

These runs exist to exercise the rare paths (FWD_NACK retries, recalls
of evicted blocks, stale-update deliveries, retain-cancel) under load,
with functional results checked."""

import pytest

from repro.config import MachineConfig, Protocol
from repro.isa.ops import Compute, Fence, FetchAdd, Read, Write
from repro.network.messages import MsgType
from repro.runtime import Machine

from tests.conftest import ALL_PROTOCOLS, make_machine


class TestTinyCacheStress:
    """4-line caches: every few accesses evict something."""

    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS,
                             ids=lambda p: p.value)
    def test_value_integrity_under_constant_eviction(self, protocol):
        P = 4
        m = make_machine(P, protocol, cache_size_bytes=4 * 64,
                         max_events=10_000_000)
        # 12 words spread over 12 blocks: 3x the cache capacity
        words = [m.memmap.alloc_word(i % P, f"w{i}") for i in range(12)]
        sums = []

        def prog(node):
            acc = 0
            for rounds in range(6):
                for i, addr in enumerate(words):
                    if (i + node) % 3 == 0:
                        yield Write(addr, node * 100 + i)
                    else:
                        v = yield Read(addr)
                        acc += v
                yield Compute(7)
            yield Fence()
            sums.append(acc)

        m.spawn_all(lambda n: prog(n))
        result = m.run()
        m.check_coherence_invariants()
        # evictions definitely happened
        assert result.misses["eviction"] > 0

    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS,
                             ids=lambda p: p.value)
    def test_single_writer_survives_eviction_churn(self, protocol):
        m = make_machine(2, protocol, cache_size_bytes=2 * 64,
                         max_events=10_000_000)
        target = m.memmap.alloc_word(1, "target")
        churn = [m.memmap.alloc_word(0, f"c{i}") for i in range(6)]

        def writer(node):
            for i in range(20):
                yield Write(target, i + 1)
                # churn through conflicting blocks to evict target
                for addr in churn:
                    yield Read(addr)
            yield Fence()

        def reader(node):
            last = 0
            for _ in range(30):
                v = yield Read(target)
                assert v >= last, "reader saw time run backwards"
                last = v
                yield Compute(13)

        m.spawn(0, writer(0))
        m.spawn(1, reader(1))
        m.run()
        m.check_coherence_invariants()

    def test_retained_block_evicted_then_recalled(self):
        """PU: retain a block, evict it (writeback), then a remote read
        races the writeback (FWD_NACK path)."""
        m = make_machine(2, Protocol.PU, cache_size_bytes=2 * 64,
                         max_events=10_000_000)
        target = m.memmap.alloc_word(0, "t")
        # same cache line as target (2-line cache: +2 blocks * P)
        conflict = target + 2 * 64 * 2
        flag = m.memmap.alloc_word(1, "flag")

        def owner(node):
            yield Write(target, 1)
            yield Fence()
            yield Write(target, 42)      # retained now
            yield Fence()
            yield Write(flag, 1)
            yield Fence()
            yield Read(conflict)         # evicts the retained block
            yield Compute(5)

        def reader(node):
            from repro.isa.ops import SpinUntil
            yield SpinUntil(flag, lambda v: v == 1)
            v = yield Read(target)       # may race the writeback
            assert v == 42

        m.spawn(0, owner(0))
        m.spawn(1, reader(1))
        m.run()
        m.check_coherence_invariants()


class TestFanInStress:
    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS,
                             ids=lambda p: p.value)
    def test_all_nodes_hammer_one_word(self, protocol):
        P = 16
        m = make_machine(P, protocol, max_events=20_000_000)
        hot = m.memmap.alloc_word(0, "hot")

        def prog(node):
            for _ in range(10):
                yield FetchAdd(hot, 1)
                yield Read(hot)
                yield Write(hot, node)
                yield Compute(3)
            yield Fence()

        m.spawn_all(lambda n: prog(n))
        result = m.run()
        m.check_coherence_invariants()
        assert m.quiesced()

    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS,
                             ids=lambda p: p.value)
    def test_write_buffer_saturation(self, protocol):
        """Back-to-back writes to distinct blocks fill the 4-entry WB;
        the processor must stall and drain correctly."""
        m = make_machine(4, protocol, max_events=10_000_000)
        words = [m.memmap.alloc_word(i % 4, f"b{i}") for i in range(10)]

        def prog(node):
            for r in range(5):
                for addr in words:
                    yield Write(addr, node * 1000 + r)
            yield Fence()
            # everything retired: the buffer is empty
            assert m.controllers[node].wb.empty

        m.spawn_all(lambda n: prog(n))
        m.run()
        m.check_coherence_invariants()

    def test_stale_update_deliveries_are_acked(self):
        """CU at threshold 1: every second update finds the block gone;
        the writer must still collect all its acks (no fence hangs)."""
        m = make_machine(4, Protocol.CU, update_threshold=1,
                         max_events=10_000_000)
        shared = m.memmap.alloc_word(0, "s")

        def reader(node):
            for _ in range(10):
                yield Read(shared)
                yield Compute(40)

        def writer(node):
            for i in range(25):
                yield Write(shared, i)
                yield Compute(11)
            yield Fence()

        m.spawn(0, reader(0))
        m.spawn(1, writer(1))
        m.spawn(2, reader(2))
        m.spawn(3, writer(3))
        m.run()
        m.check_coherence_invariants()
        assert all(c.outstanding_acks == 0 for c in m.controllers)
