"""Golden counterexample replay.

``tests/data/modelcheck/`` holds a counterexample JSON produced by the
mutant sweep (``wi-skip-invalidation`` on ``mp`` under WI) together
with the exact transition trace its replay printed when it was
committed.  The replay path is the model checker's external contract:
a saved schedule must keep reproducing the same violation through the
same transitions, whatever happens to the explorer internals (the
snapshot-branching DFS rewrite included).  Any diff here means saved
counterexamples in the wild just went stale.
"""

import io
import json
from pathlib import Path

from repro.modelcheck import replay_file

DATA = Path(__file__).resolve().parents[1] / "data" / "modelcheck"
SCHEDULE = DATA / "mutant-wi-skip-invalidation.json"
GOLDEN_TRACE = DATA / "mutant-wi-skip-invalidation.trace.txt"


def test_counterexample_replay_matches_golden_trace():
    out = io.StringIO()
    rc = replay_file(str(SCHEDULE), out=out)
    assert rc == 0, "replay no longer reproduces the recorded violation"
    assert out.getvalue() == GOLDEN_TRACE.read_text()


def test_counterexample_metadata_still_loads():
    data = json.loads(SCHEDULE.read_text())
    assert data["program"] == "mp"
    assert data["protocol"] == "wi"
    assert data["mutation"] == "wi-skip-invalidation"
    assert data["violation"]["kind"] == "invariant:stale-copy"
