"""HYBRID must agree with the single-protocol machines.

Every model-checking litmus program runs to completion (stock
deterministic simulator) under WI, PU, CU and HYBRID; afterwards the
directory/cache agreement invariants must hold and the final value of
every shared allocation must be identical across all four protocols --
per-block protocol selection may change timing, never results.
"""

from __future__ import annotations

import pytest

from repro.config import Protocol
from repro.modelcheck import PROGRAMS, final_value, get_program
from repro.runtime import Machine

PROTOCOLS = (Protocol.WI, Protocol.PU, Protocol.CU, Protocol.HYBRID)


def _final_values(name: str, protocol: Protocol) -> dict:
    litmus = get_program(name)
    machine = Machine(litmus.config(protocol))
    litmus.build(machine)
    machine.run()
    machine.check_coherence_invariants()
    return {al.label: final_value(machine, al.addr)
            for al in machine.memmap.allocations if al.label}


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_final_memory_identical_across_protocols(name):
    per_proto = {p: _final_values(name, p) for p in PROTOCOLS}
    reference = per_proto[Protocol.WI]
    assert reference, f"{name}: no labelled allocations"
    for proto, values in per_proto.items():
        assert values == reference, (
            f"{name}: {proto.value} final memory {values} differs from "
            f"wi {reference}")


def test_known_final_values():
    assert _final_values("sb", Protocol.HYBRID) == {"x": 1, "y": 1}
    mp = _final_values("mp", Protocol.HYBRID)
    assert mp["data"] == 42 and mp["flag"] == 1
    lock = _final_values("lock", Protocol.HYBRID)
    assert lock["count"] == 2 and lock["lock"] == 0
    assert _final_values("subword", Protocol.HYBRID)["w"] == 0x2222
