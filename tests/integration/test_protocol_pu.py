"""Scenario tests for the pure-update protocol."""

import pytest

from repro.config import Protocol
from repro.isa.ops import (
    Compute, Fence, FetchAdd, Flush, Read, SpinUntil, Write,
)
from repro.memsys.cache import CacheState
from repro.memsys.directory import DirState
from repro.network.messages import MsgType

from tests.conftest import make_machine, run_programs


def pu_machine(n=4, **kw):
    return make_machine(n, Protocol.PU, **kw)


def idle():
    if False:
        yield


class TestWriteThrough:
    def test_write_reaches_home_memory(self):
        m = pu_machine(retain_private=False)
        addr = m.memmap.alloc_word(1)

        def writer(node):
            yield Write(addr, 55)
            yield Fence()

        run_programs(m, writer(0))
        word = m.config.word_of(addr)
        assert m.controllers[1].mem.read_word(word) == 55

    def test_sharer_cache_updated_in_place(self):
        m = pu_machine()
        addr = m.memmap.alloc_word(2, init=1)

        def reader(node):
            v = yield Read(addr)      # becomes a sharer
            assert v == 1
            v = yield SpinUntil(addr, lambda v: v == 2)
            assert v == 2
            # the block never left the cache: updated in place
            assert m.controllers[0].cache.contains(
                m.config.block_of(addr))

        def writer(node):
            yield Compute(300)
            yield Write(addr, 2)
            yield Fence()

        run_programs(m, reader(0), writer(1))
        assert m.update_classifier.useful_updates() >= 1

    def test_no_invalidations_ever(self):
        m = pu_machine()
        addr = m.memmap.alloc_word(0, init=0)

        def reader(node):
            yield Read(addr)
            yield SpinUntil(addr, lambda v: v == 3)

        def writer(node):
            yield Compute(100)
            for i in range(1, 4):
                yield Write(addr, i)
            yield Fence()

        run_programs(m, reader(0), writer(1))
        assert MsgType.INV not in m.net.stats.by_type
        assert m.miss_classifier.as_dict()["true"] == 0

    def test_write_allocate_fetches_block(self):
        m = pu_machine()
        addr = m.memmap.alloc_word(1, init=7)

        def writer(node):
            yield Write(addr, 9)     # miss -> allocate -> write through
            yield Fence()

        run_programs(m, writer(0))
        block = m.config.block_of(addr)
        line = m.controllers[0].cache.lookup(block)
        assert line is not None
        assert line.data[m.config.word_of(addr)] == 9
        # the write miss was classified
        assert m.miss_classifier.as_dict()["cold"] >= 1

    def test_own_copy_visible_immediately_via_wb_forwarding(self):
        m = pu_machine()
        addr = m.memmap.alloc_word(3)

        def writer(node):
            yield Write(addr, 4)
            v = yield Read(addr)      # forwarded from WB or own cache
            assert v == 4

        run_programs(m, writer(0))

    def test_write_ordering_across_different_homes(self):
        """Program-order writes to blocks homed at different nodes must
        become globally visible in order (MCS lock correctness)."""
        m = pu_machine()
        a = m.memmap.alloc_word(1)   # homed at 1
        b = m.memmap.alloc_word(2)   # homed at 2

        def writer(node):
            yield Write(a, 1)
            yield Write(b, 1)
            yield Fence()

        def checker(node):
            yield SpinUntil(b, lambda v: v == 1)
            v = yield Read(a)
            assert v == 1   # a's write was performed before b's

        run_programs(m, writer(0), checker(3))


class TestRetainPrivate:
    def test_private_block_gets_retained(self):
        m = pu_machine()
        addr = m.memmap.alloc_word(1)

        def writer(node):
            yield Write(addr, 1)     # allocate + write through
            yield Fence()
            yield Write(addr, 2)     # sole cacher -> retain granted
            yield Fence()
            yield Write(addr, 3)     # now local
            yield Fence()

        run_programs(m, writer(0))
        block = m.config.block_of(addr)
        line = m.controllers[0].cache.lookup(block)
        assert line.state is CacheState.RETAINED
        ent = m.controllers[1].directory.entry(block)
        assert ent.state is DirState.DIRTY and ent.owner == 0

    def test_retained_writes_generate_no_traffic(self):
        m = pu_machine()
        addr = m.memmap.alloc_word(1)
        counts = {}

        def writer(node):
            yield Write(addr, 1)
            yield Fence()
            yield Write(addr, 2)
            yield Fence()
            counts["before"] = m.net.stats.messages
            for i in range(10):
                yield Write(addr, i)
            yield Fence()
            counts["after"] = m.net.stats.messages

        run_programs(m, writer(0))
        assert counts["after"] == counts["before"]

    def test_remote_read_recalls_retained_block(self):
        m = pu_machine()
        addr = m.memmap.alloc_word(1)
        flag = m.memmap.alloc_word(3)

        def writer(node):
            yield Write(addr, 1)
            yield Fence()
            yield Write(addr, 42)    # retained by now
            yield Fence()
            yield Write(flag, 1)
            yield Fence()

        def reader(node):
            yield SpinUntil(flag, lambda v: v == 1)
            v = yield Read(addr)
            assert v == 42           # recalled dirty data

        # programs land on nodes 0 and 1 (positional)
        run_programs(m, writer(0), reader(1))
        block = m.config.block_of(addr)
        # writer demoted back to VALID, both are sharers now
        assert m.controllers[0].cache.lookup(block).state is \
            CacheState.VALID
        ent = m.controllers[1].directory.entry(block)
        assert ent.state is DirState.SHARED
        assert ent.sharers == {0, 1}
        assert MsgType.RECALL in m.net.stats.by_type

    def test_retain_disabled_by_config(self):
        m = pu_machine(retain_private=False)
        addr = m.memmap.alloc_word(1)

        def writer(node):
            for i in range(5):
                yield Write(addr, i)
            yield Fence()

        run_programs(m, writer(0))
        block = m.config.block_of(addr)
        assert m.controllers[0].cache.lookup(block).state is \
            CacheState.VALID


class TestAtomicsAtMemory:
    def test_fetch_add_computed_at_home(self):
        m = pu_machine()
        addr = m.memmap.alloc_word(1)
        results = []

        def adder(node):
            old = yield FetchAdd(addr, 1)
            results.append(old)

        run_programs(m, *(adder(i) for i in range(4)))
        assert sorted(results) == [0, 1, 2, 3]
        assert m.controllers[1].mem.read_word(m.config.word_of(addr)) == 4

    def test_atomic_does_not_allocate(self):
        m = pu_machine()
        addr = m.memmap.alloc_word(1)

        def adder(node):
            yield FetchAdd(addr, 1)

        run_programs(m, adder(0))
        assert not m.controllers[0].cache.contains(
            m.config.block_of(addr))

    def test_atomic_updates_sharers(self):
        m = pu_machine()
        addr = m.memmap.alloc_word(1, init=0)

        def reader(node):
            yield Read(addr)                      # become a sharer
            v = yield SpinUntil(addr, lambda v: v == 5)
            assert v == 5

        def adder(node):
            yield Compute(200)
            yield FetchAdd(addr, 5)

        run_programs(m, reader(0), adder(2))

    def test_atomic_recalls_retained_block(self):
        m = pu_machine()
        addr = m.memmap.alloc_word(1)

        def owner(node):
            yield Write(addr, 10)
            yield Fence()
            yield Write(addr, 20)      # retained
            yield Fence()
            yield Compute(50)
            old = yield FetchAdd(addr, 1)   # must see 20, not stale 10
            assert old == 20

        run_programs(m, owner(0))


class TestFlushAndDrop:
    def test_flush_notifies_home(self):
        m = pu_machine()
        addr = m.memmap.alloc_word(1, init=3)

        def prog(node):
            yield Read(addr)
            yield Flush(addr)
            yield Compute(100)

        run_programs(m, prog(0))
        block = m.config.block_of(addr)
        ent = m.controllers[1].directory.entry(block)
        assert 0 not in ent.sharers

    def test_flushed_node_stops_receiving_updates(self):
        m = pu_machine()
        addr = m.memmap.alloc_word(1, init=0)
        flag = m.memmap.alloc_word(3)

        def flusher(node):
            yield Read(addr)
            yield Flush(addr)
            yield Write(flag, 1)
            yield Fence()

        def writer(node):
            yield Read(addr)                     # stay a sharer
            yield SpinUntil(flag, lambda v: v == 1)
            yield Compute(100)
            before = m.update_classifier.stale_deliveries
            yield Write(addr, 9)
            yield Fence()
            # no stale delivery: the home knows node 0 is gone
            assert m.update_classifier.stale_deliveries == before

        run_programs(m, flusher(0), writer(2))

    def test_flush_of_retained_block_writes_back(self):
        m = pu_machine()
        addr = m.memmap.alloc_word(1)

        def prog(node):
            yield Write(addr, 1)
            yield Fence()
            yield Write(addr, 77)     # retained
            yield Fence()
            yield Flush(addr)
            yield Compute(200)
            v = yield Read(addr)
            assert v == 77            # survived via writeback

        run_programs(m, prog(0))


class TestCompetitiveUpdate:
    def cu_machine(self, n=4, **kw):
        return make_machine(n, Protocol.CU, **kw)

    def test_block_dropped_after_threshold_updates(self):
        m = self.cu_machine()
        addr = m.memmap.alloc_word(1, init=0)
        flag = m.memmap.alloc_word(3)

        def reader(node):
            yield Read(addr)          # cache the block
            yield SpinUntil(flag, lambda v: v == 1)

        def writer(node):
            yield Compute(100)
            # unreferenced updates: threshold (4) drops the block at 0
            for i in range(1, 7):
                yield Write(addr, i)
                yield Compute(100)
            yield Fence()
            yield Write(flag, 1)
            yield Fence()

        run_programs(m, reader(0), writer(2))
        assert not m.controllers[0].cache.contains(
            m.config.block_of(addr))
        assert m.update_classifier.counts[
            __import__("repro.classify", fromlist=["UpdateClass"])
            .UpdateClass.DROP] == 1

    def test_references_reset_counter(self):
        m = self.cu_machine()
        addr = m.memmap.alloc_word(1, init=0)

        def spinner(node):
            # spins: every update is referenced -> counter resets
            v = yield SpinUntil(addr, lambda v: v == 20)
            assert v == 20
            assert m.controllers[0].cache.contains(
                m.config.block_of(addr))

        def writer(node):
            yield Compute(100)
            for i in range(1, 21):
                yield Write(addr, i)
                yield Compute(60)
            yield Fence()

        run_programs(m, spinner(0), writer(2))

    def test_dropped_block_remiss_is_drop_miss(self):
        m = self.cu_machine()
        addr = m.memmap.alloc_word(1, init=0)
        flag = m.memmap.alloc_word(3)

        def reader(node):
            yield Read(addr)
            yield SpinUntil(flag, lambda v: v == 1)
            v = yield Read(addr)      # drop miss
            assert v == 6

        def writer(node):
            yield Compute(100)
            for i in range(1, 7):
                yield Write(addr, i)
                yield Compute(100)
            yield Fence()
            yield Write(flag, 1)
            yield Fence()

        run_programs(m, reader(0), writer(2))
        assert m.miss_classifier.as_dict()["drop"] == 1

    def test_custom_threshold(self):
        m = self.cu_machine(update_threshold=2)
        addr = m.memmap.alloc_word(1, init=0)

        def reader(node):
            yield Read(addr)
            yield Compute(2000)

        def writer(node):
            yield Compute(100)
            yield Write(addr, 1)
            yield Compute(100)
            yield Write(addr, 2)     # second unreferenced update: drop
            yield Fence()

        run_programs(m, reader(0), writer(2))
        assert not m.controllers[0].cache.contains(
            m.config.block_of(addr))
