"""Integration tests for the per-block protocol-selection (HYBRID)
machine."""

import pytest

from repro.config import MachineConfig, Protocol
from repro.isa.ops import Compute, Fence, FetchAdd, Read, SpinUntil, Write
from repro.memsys.cache import CacheState
from repro.runtime import Machine
from repro.sync import (
    CentralBarrier, DisseminationBarrier, MCSLock, TicketLock,
)

from tests.conftest import make_machine, run_programs


def hybrid_machine(n=4, **kw):
    return make_machine(n, Protocol.HYBRID, **kw)


class TestPolicyTagging:
    def test_use_protocol_tags_blocks(self):
        m = hybrid_machine()
        with m.memmap.use_protocol(Protocol.CU):
            a = m.memmap.alloc_word(0)
        b = m.memmap.alloc_word(0)
        assert m.memmap.protocol_of_block(m.config.block_of(a)) \
            is Protocol.CU
        assert m.memmap.protocol_of_block(m.config.block_of(b)) \
            is Protocol.WI  # hybrid_default

    def test_nested_tags(self):
        m = hybrid_machine()
        with m.memmap.use_protocol(Protocol.PU):
            a = m.memmap.alloc_word(0)
            with m.memmap.use_protocol(Protocol.CU):
                b = m.memmap.alloc_word(0)
            c = m.memmap.alloc_word(0)
        cfg = m.config
        assert m.memmap.protocol_of_block(cfg.block_of(a)) is Protocol.PU
        assert m.memmap.protocol_of_block(cfg.block_of(b)) is Protocol.CU
        assert m.memmap.protocol_of_block(cfg.block_of(c)) is Protocol.PU

    def test_cannot_tag_with_hybrid(self):
        m = hybrid_machine()
        with pytest.raises(ValueError):
            with m.memmap.use_protocol(Protocol.HYBRID):
                pass

    def test_hybrid_default_configurable(self):
        m = make_machine(2, Protocol.HYBRID, hybrid_default=Protocol.PU)
        a = m.memmap.alloc_word(0)
        assert m.memmap.protocol_of_block(m.config.block_of(a)) \
            is Protocol.PU

    def test_region_blocks_tagged(self):
        m = hybrid_machine()
        with m.memmap.use_protocol(Protocol.PU):
            base = m.memmap.alloc_region(4 * 64)
        for i in range(4):
            blk = m.config.block_of(base + i * 64)
            assert m.memmap.protocol_of_block(blk) is Protocol.PU


class TestMixedBehaviour:
    def test_wi_block_invalidates_pu_block_updates(self):
        m = hybrid_machine()
        wi_addr = m.memmap.alloc_word(0)           # default WI
        with m.memmap.use_protocol(Protocol.PU):
            pu_addr = m.memmap.alloc_word(0)
        flag = m.memmap.alloc_word(3)

        def reader(node):
            yield Read(wi_addr)
            yield Read(pu_addr)
            yield SpinUntil(flag, lambda v: v == 1)
            # WI block was invalidated by the writer
            assert not m.controllers[0].cache.contains(
                m.config.block_of(wi_addr))
            # PU block stayed cached and was updated in place
            line = m.controllers[0].cache.lookup(
                m.config.block_of(pu_addr))
            assert line is not None
            assert line.data.get(m.config.word_of(pu_addr)) == 7

        def writer(node):
            yield Compute(300)
            yield Write(wi_addr, 5)
            yield Write(pu_addr, 7)
            yield Fence()
            yield Write(flag, 1)
            yield Fence()

        run_programs(m, reader(0), writer(1))
        assert m.update_classifier.total_updates >= 1   # pu traffic
        assert m.miss_classifier.as_dict()["true"] >= 0

    def test_cu_block_drops_pu_block_does_not(self):
        m = hybrid_machine()
        with m.memmap.use_protocol(Protocol.CU):
            cu_addr = m.memmap.alloc_word(0)
        with m.memmap.use_protocol(Protocol.PU):
            pu_addr = m.memmap.alloc_word(0)

        def reader(node):
            yield Read(cu_addr)
            yield Read(pu_addr)
            yield Compute(4000)

        def writer(node):
            yield Compute(200)
            for i in range(6):   # 6 unreferenced updates to each
                yield Write(cu_addr, i)
                yield Write(pu_addr, i)
                yield Compute(120)
            yield Fence()

        run_programs(m, reader(0), writer(1))
        assert not m.controllers[0].cache.contains(
            m.config.block_of(cu_addr))          # dropped at threshold
        assert m.controllers[0].cache.contains(
            m.config.block_of(pu_addr))          # kept updating

    def test_atomics_follow_block_protocol(self):
        m = hybrid_machine()
        wi_counter = m.memmap.alloc_word(1)
        with m.memmap.use_protocol(Protocol.PU):
            pu_counter = m.memmap.alloc_word(1)

        def prog(node):
            for _ in range(3):
                yield FetchAdd(wi_counter, 1)
                yield FetchAdd(pu_counter, 1)

        m.spawn_all(lambda n: prog(n))
        m.run()
        cfg = m.config
        # WI atomic computed in the cache controller: someone owns it M
        dirty = [c for c in m.controllers
                 if (ln := c.cache.lookup(cfg.block_of(wi_counter)))
                 is not None and ln.state is CacheState.MODIFIED]
        assert len(dirty) == 1
        # PU atomic computed at the memory: value lives at the home
        assert m.controllers[1].mem.read_word(
            cfg.word_of(pu_counter)) == 12
        total = dirty[0].cache.read_word(cfg.block_of(wi_counter),
                                         cfg.word_of(wi_counter))
        assert total == 12

    def test_mixed_sync_constructs_correct(self):
        P = 8
        m = hybrid_machine(P)
        with m.memmap.use_protocol(Protocol.CU):
            lock = MCSLock(m)
        with m.memmap.use_protocol(Protocol.PU):
            bar = DisseminationBarrier(m)
        shared = m.memmap.alloc_word(0)          # WI
        state = {"in": 0, "peak": 0}
        phase = [0] * P
        bad = []

        def prog(node):
            for ep in range(4):
                tok = yield from lock.acquire(node)
                state["in"] += 1
                state["peak"] = max(state["peak"], state["in"])
                v = yield Read(shared)
                yield Write(shared, v + 1)
                state["in"] -= 1
                yield from lock.release(node, tok)
                phase[node] = ep
                yield from bar.wait(node)
                if min(phase) < ep:
                    bad.append(node)

        m.spawn_all(lambda n: prog(n))
        m.run()
        m.check_coherence_invariants()
        assert state["peak"] == 1
        assert not bad

    def test_determinism(self):
        def once():
            m = hybrid_machine()
            with m.memmap.use_protocol(Protocol.PU):
                a = m.memmap.alloc_word(0)
            b = m.memmap.alloc_word(1)

            def prog(node):
                for i in range(6):
                    yield Write(a, node * 10 + i)
                    yield Write(b, node * 10 + i)
                    yield Compute(node + 1)
                yield Fence()

            m.spawn_all(lambda n: prog(n))
            return m.run()

        r1, r2 = once(), once()
        assert r1.total_cycles == r2.total_cycles
        assert r1.misses == r2.misses


class TestHybridAdvantage:
    def test_protocol_conscious_beats_fixed_choice(self):
        """The paper's conclusion, quantified: a workload mixing a
        streaming producer-consumer phase (block transfers -- WI's
        strength) with a contended ticket lock (update protocols'
        strength).  No fixed protocol wins both; the per-block
        assignment does."""
        from repro.sync import IdealBarrier

        P = 8
        EPISODES = 12
        WORDS = 16

        def build(protocol):
            m = make_machine(P, protocol, max_events=20_000_000)
            if protocol is Protocol.HYBRID:
                # stream buffers under WI (whole-block consumption),
                # lock data under CU (contended counter)
                stream = [m.memmap.alloc_words(i, WORDS, f"out{i}")
                          for i in range(P)]
                with m.memmap.use_protocol(Protocol.CU):
                    lock = TicketLock(m)
            else:
                stream = [m.memmap.alloc_words(i, WORDS, f"out{i}")
                          for i in range(P)]
                lock = TicketLock(m)
            bar = IdealBarrier(m)

            def prog(node):
                left = (node - 1) % P
                for ep in range(EPISODES):
                    # produce a block of output
                    for i, addr in enumerate(stream[node]):
                        yield Write(addr, ep * 100 + i)
                    yield Fence()
                    yield from bar.wait(node)
                    # consume the neighbour's block
                    total = 0
                    for addr in stream[left]:
                        total += (yield Read(addr))
                    # contended critical section
                    tok = yield from lock.acquire(node)
                    yield Compute(25)
                    yield from lock.release(node, tok)
                    yield from bar.wait(node)

            m.spawn_all(lambda n: prog(n))
            return m.run().total_cycles

        fixed = {p: build(p) for p in
                 (Protocol.WI, Protocol.PU, Protocol.CU)}
        hybrid = build(Protocol.HYBRID)
        # the protocol-conscious assignment must beat (or tie within
        # 2%) every fixed choice
        assert hybrid <= min(fixed.values()) * 1.02, (hybrid, fixed)
