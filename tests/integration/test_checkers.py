"""Integration tests for the checker subsystem: the check suite runs
clean under every protocol, and injected bugs are caught.

The headline regression injects the classic broken ticket-lock release
-- handing the lock over *without* a fence, so critical-section stores
can still be buffered when the next holder enters -- and asserts that
BOTH dynamic checkers catch it: the race detector (unordered
conflicting accesses to the counter) and the sanitizer (release store
issued with writes still buffered)."""

from __future__ import annotations

import pytest

from repro.checkers import CheckerError
from repro.config import MachineConfig, Protocol
from repro.experiments.check import (
    checked_config, final_value, run_barrier_phases, run_handshake,
    run_lock_counter, run_mp, run_workqueue_checked,
)
from repro.isa.ops import Compute, Fence, Read, Write
from repro.runtime import Machine
from repro.sync.locks import TicketLock

PROCS = 4


class BrokenTicketLock(TicketLock):
    """Ticket lock whose release skips the fence (injected bug)."""

    def release(self, node, token=None):
        now = yield Read(self.now_serving)
        yield Write(self.now_serving, now + 1)


def _counter_machine(lock_cls, strict: bool) -> Machine:
    cfg = MachineConfig(num_procs=PROCS, protocol=Protocol.WI,
                        enable_sanitizer=True,
                        enable_race_detector=True,
                        checkers_strict=strict)
    machine = Machine(cfg)
    lock = lock_cls(machine)
    counter = machine.memmap.alloc_word(0, "counter")

    def program(node):
        for _ in range(4):
            token = yield from lock.acquire(node)
            value = yield Read(counter)
            yield Compute(5)
            yield Write(counter, value + 1)
            yield from lock.release(node, token)
        yield Fence()

    machine.spawn_all(program)
    return machine


# ----------------------------------------------------------------------
# the suite runs clean, strict, under every protocol
# ----------------------------------------------------------------------

def test_mp_clean(protocol):
    run_mp(checked_config(protocol, PROCS))


def test_handshake_clean(protocol):
    run_handshake(checked_config(protocol, PROCS))


@pytest.mark.parametrize("kind", ["tas", "tk", "MCS", "uc"])
def test_lock_counter_clean(protocol, kind):
    run_lock_counter(checked_config(protocol, PROCS), kind)


@pytest.mark.parametrize("kind", ["cb", "db", "tb"])
def test_barrier_phases_clean(protocol, kind):
    run_barrier_phases(checked_config(protocol, PROCS), kind)


def test_workqueue_clean(protocol):
    run_workqueue_checked(checked_config(protocol, PROCS))


# ----------------------------------------------------------------------
# injected bug: broken ticket release caught by BOTH dynamic checkers
# ----------------------------------------------------------------------

def test_broken_ticket_release_caught_by_both_checkers():
    machine = _counter_machine(BrokenTicketLock, strict=False)
    machine.run()
    report = machine.checker_report
    assert report.by_checker("race"), \
        "race detector missed the unfenced handoff"
    assert report.by_rule("release-store"), \
        "sanitizer missed the buffered-writes release"


def test_broken_ticket_release_fails_strict_run():
    machine = _counter_machine(BrokenTicketLock, strict=True)
    with pytest.raises(CheckerError) as exc_info:
        machine.run()
    assert exc_info.value.report.violations
    # CheckerError is an AssertionError, so plain asserting harnesses
    # see it too
    assert isinstance(exc_info.value, AssertionError)


def test_correct_ticket_lock_is_clean_strict():
    machine = _counter_machine(TicketLock, strict=True)
    machine.run()
    assert machine.checker_report.clean
    assert final_value(machine, machine.memmap.allocations[-1].addr) \
        == PROCS * 4


# ----------------------------------------------------------------------
# injected bug: a fence that retires before its acks are in
# ----------------------------------------------------------------------

def test_premature_fence_caught_by_sanitizer():
    cfg = MachineConfig(num_procs=2, protocol=Protocol.WI,
                        enable_sanitizer=True, checkers_strict=False)
    machine = Machine(cfg)
    mm = machine.memmap
    words = [mm.alloc_word(1, f"w{i}") for i in range(3)]
    # sabotage node 0's fence condition: it now claims completion even
    # with buffered or in-flight writes
    machine.controllers[0]._fence_ok = lambda: True

    def writer(node):
        for i, addr in enumerate(words):
            yield Write(addr, i + 1)
        yield Fence()

    def reader(node):
        yield Compute(200)
        for addr in words:
            yield Read(addr)

    machine.spawn(0, writer(0))
    machine.spawn(1, reader(1))
    machine.run()
    assert machine.checker_report.by_rule("fence-incomplete")


# ----------------------------------------------------------------------
# the check CLI
# ----------------------------------------------------------------------

def test_check_cli_exits_zero():
    from repro.experiments.check import main
    assert main(["--procs", "2", "--quiet"]) == 0


def test_check_cli_lint_only():
    from repro.experiments.check import main
    assert main(["--lint-only", "--quiet"]) == 0


def test_experiments_cli_dispatches_check():
    from repro.experiments.cli import main
    assert main(["check", "--lint-only", "--quiet"]) == 0


def test_figures_accept_sanitize_flag():
    from repro.campaign import execute_spec
    from repro.experiments.figures import figure_points
    from repro.config import ExperimentScale
    points = figure_points("fig9", scale=ExperimentScale.quick(), P=2,
                           sanitize=True)
    assert all(pt.spec.config.enable_sanitizer
               and pt.spec.config.enable_race_detector
               for pt in points)
    record = execute_spec(points[0].spec)
    assert record.ok and record.sim.total_cycles > 0
