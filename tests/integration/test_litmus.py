"""Memory-model litmus tests.

Classic multiprocessor litmus patterns executed on every protocol,
checking both what release consistency *guarantees* (fenced patterns
are ordered) and what it deliberately *relaxes* (the write buffer can
reorder a write past a subsequent read).
"""

import pytest

from repro.config import MachineConfig, Protocol
from repro.isa.ops import Compute, Fence, Read, SpinUntil, Write
from repro.runtime import Machine

from tests.conftest import make_machine


class TestMessagePassing:
    """MP: w(data); w(flag) || r(flag); r(data)."""

    def test_fenced_mp_never_reorders(self, protocol):
        for stagger in (0, 35, 90, 240):
            m = make_machine(2, protocol)
            data = m.memmap.alloc_word(0, "data")
            flag = m.memmap.alloc_word(1, "flag")
            got = []

            def writer():
                yield Compute(stagger + 1)
                yield Write(data, 1)
                yield Fence()
                yield Write(flag, 1)
                yield Fence()

            def reader():
                yield SpinUntil(flag, lambda v: v == 1)
                got.append((yield Read(data)))

            m.spawn(0, writer())
            m.spawn(1, reader())
            m.run()
            assert got == [1], f"MP violated at stagger {stagger}"

    def test_unfenced_mp_still_ordered_by_write_buffer(self, protocol):
        """Our write buffer retires in program order with one
        transaction in flight, so even without the fence the data write
        performs before the flag write (a stronger-than-RC property the
        MCS lock relies on; documented in docs/memory-model.md)."""
        m = make_machine(2, protocol)
        data = m.memmap.alloc_word(0, "data")
        flag = m.memmap.alloc_word(1, "flag")
        got = []

        def writer():
            yield Write(data, 1)
            yield Write(flag, 1)     # no fence
            yield Fence()

        def reader():
            yield SpinUntil(flag, lambda v: v == 1)
            got.append((yield Read(data)))

        m.spawn(0, writer())
        m.spawn(1, reader())
        m.run()
        assert got == [1]


class TestStoreBuffering:
    """SB: w(x); r(y) || w(y); r(x).  Under RC both reads may see 0
    (each read bypasses the other's buffered write); with write-stall
    (SC mode) at least one processor must see the other's write."""

    def _run(self, protocol, sc):
        m = make_machine(2, protocol, sequential_consistency=sc)
        x = m.memmap.alloc_word(0, "x")
        y = m.memmap.alloc_word(1, "y")
        got = {}

        def p0():
            yield Write(x, 1)
            got["r_y"] = yield Read(y)
            yield Fence()

        def p1():
            yield Write(y, 1)
            got["r_x"] = yield Read(x)
            yield Fence()

        m.spawn(0, p0())
        m.spawn(1, p1())
        m.run()
        return got

    def test_rc_outcome_is_legal(self, protocol):
        got = self._run(protocol, sc=False)
        # any outcome is legal under RC, including both-zero
        assert got["r_x"] in (0, 1) and got["r_y"] in (0, 1)

    def test_rc_relaxation_observable_under_update_protocols(self):
        """Under PU/CU the write-through is slower than the read path,
        so the both-zero outcome (forbidden under SC) actually occurs."""
        for protocol in (Protocol.PU, Protocol.CU):
            got = self._run(protocol, sc=False)
            assert got == {"r_y": 0, "r_x": 0}, protocol

    def test_sc_forbids_both_zero(self, protocol):
        got = self._run(protocol, sc=True)
        assert got["r_x"] == 1 or got["r_y"] == 1


class TestCoherenceOrder:
    """Per-location coherence: all processors agree on the order of
    writes to one word (no value can reappear after being overwritten
    from a single reader's point of view when writes are serialized)."""

    def test_single_location_monotone(self, protocol):
        m = make_machine(3, protocol)
        x = m.memmap.alloc_word(0, "x")
        seen = {1: [], 2: []}

        def writer():
            for i in range(1, 9):
                yield Write(x, i)
                yield Fence()        # serialize the writes
                yield Compute(40)

        def reader(me):
            for _ in range(12):
                seen[me].append((yield Read(x)))
                yield Compute(17)

        m.spawn(0, writer())
        m.spawn(1, reader(1))
        m.spawn(2, reader(2))
        m.run()
        for me in (1, 2):
            vals = seen[me]
            assert vals == sorted(vals), (protocol, me, vals)

    def test_read_own_write_immediately(self, protocol):
        m = make_machine(1, protocol)
        x = m.memmap.alloc_word(0, "x")

        def prog():
            for i in range(6):
                yield Write(x, i)
                v = yield Read(x)
                assert v == i        # write-buffer forwarding

        m.spawn(0, prog())
        m.run()


class TestIRIW:
    """Independent reads of independent writes: with fenced writers and
    spin-synchronized readers, both readers must agree once both flags
    are up."""

    def test_fenced_iriw(self, protocol):
        m = make_machine(4, protocol)
        x = m.memmap.alloc_word(0, "x")
        y = m.memmap.alloc_word(1, "y")
        got = {}

        def writer(addr):
            def prog():
                yield Write(addr, 1)
                yield Fence()
            return prog()

        def reader(me, first, second):
            def prog():
                yield SpinUntil(first, lambda v: v == 1)
                yield SpinUntil(second, lambda v: v == 1)
                a = yield Read(first)
                b = yield Read(second)
                got[me] = (a, b)
            return prog()

        m.spawn(0, writer(x))
        m.spawn(1, writer(y))
        m.spawn(2, reader(2, x, y))
        m.spawn(3, reader(3, y, x))
        m.run()
        assert got[2] == (1, 1)
        assert got[3] == (1, 1)
