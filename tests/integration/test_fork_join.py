"""Integration tests for fork/join and the PU fork-flush optimization."""

import pytest

from repro.config import MachineConfig, Protocol
from repro.isa.ops import Compute, Fence, Fork, Join, Read, Write
from repro.runtime import Machine

from tests.conftest import make_machine


class TestForkJoin:
    def test_fork_runs_child_and_join_waits(self, protocol):
        m = make_machine(2, protocol)
        log = []

        def child():
            yield Compute(100)
            log.append(("child", m.sim.now))

        def parent():
            handle = yield Fork(1, child())
            log.append(("forked", m.sim.now))
            yield Join(handle)
            log.append(("joined", m.sim.now))

        m.spawn(0, parent())
        m.run()
        events = dict(log)
        assert set(events) == {"child", "forked", "joined"}
        assert events["joined"] >= events["child"]

    def test_child_sees_parents_prefork_writes(self, protocol):
        m = make_machine(2, protocol)
        data = m.memmap.alloc_word(0, "data")

        def child():
            v = yield Read(data)
            assert v == 99

        def parent():
            yield Write(data, 99)
            yield Fence()
            handle = yield Fork(1, child())
            yield Join(handle)

        m.spawn(0, parent())
        m.run()

    def test_parent_result_visible_after_join(self, protocol):
        m = make_machine(2, protocol)
        out = m.memmap.alloc_word(1, "out")

        def child():
            yield Write(out, 7)
            yield Fence()

        def parent():
            handle = yield Fork(1, child())
            yield Join(handle)
            v = yield Read(out)
            assert v == 7

        m.spawn(0, parent())
        m.run()

    def test_fork_tree(self, protocol):
        """Recursive fork: node 0 forks 1; both fork grandchildren."""
        m = make_machine(4, protocol)
        ran = []

        def leaf(me):
            yield Compute(10)
            ran.append(me)

        def mid(me, kid):
            h = yield Fork(kid, leaf(kid))
            yield Compute(5)
            ran.append(me)
            yield Join(h)

        def root():
            h1 = yield Fork(1, mid(1, 3))
            h2 = yield Fork(2, leaf(2))
            ran.append(0)
            yield Join(h1)
            yield Join(h2)

        m.spawn(0, root())
        m.run()
        assert sorted(ran) == [0, 1, 2, 3]

    def test_fork_onto_busy_node_rejected(self, protocol):
        m = make_machine(2, protocol)

        def child():
            yield Compute(10)

        def parent():
            yield Fork(0, child())   # own node is busy (us!)

        m.spawn(0, parent())
        with pytest.raises(ValueError):
            m.run()

    def test_node_reusable_after_thread_finishes(self, protocol):
        m = make_machine(2, protocol)
        runs = []

        def child(tag):
            yield Compute(10)
            runs.append(tag)

        def parent():
            h = yield Fork(1, child("first"))
            yield Join(h)
            h = yield Fork(1, child("second"))
            yield Join(h)

        m.spawn(0, parent())
        m.run()
        assert runs == ["first", "second"]


class TestForkFlushOptimization:
    def _run(self, protocol, fork_flush):
        m = make_machine(2, protocol, fork_flush=fork_flush)
        scratch = [m.memmap.alloc_word(0, f"s{i}") for i in range(6)]

        def child():
            # the child rewrites the parent's pre-fork data; with the
            # parent still a sharer, every write updates it uselessly
            for _ in range(4):
                for i, addr in enumerate(scratch):
                    yield Write(addr, i + 100)
                yield Compute(50)
            yield Fence()

        def parent():
            # pre-fork private work the child never needs
            for i, addr in enumerate(scratch):
                yield Write(addr, i)
            yield Fence()
            handle = yield Fork(1, child())
            yield Compute(3000)        # unrelated post-fork work
            yield Join(handle)

        m.spawn(0, parent())
        result = m.run()
        return result

    def test_flush_removes_useless_updates_under_pu(self):
        with_flush = self._run(Protocol.PU, fork_flush=True)
        without = self._run(Protocol.PU, fork_flush=False)
        # paper: the flush "eliminates useless updates of data written
        # by the parent but not subsequently needed by the child"
        assert with_flush.updates["total"] < without.updates["total"]
        useless_with = (with_flush.updates["total"]
                        - with_flush.updates["useful"])
        useless_without = (without.updates["total"]
                           - without.updates["useful"])
        assert useless_with < useless_without

    def test_flush_is_noop_under_wi(self):
        with_flush = self._run(Protocol.WI, fork_flush=True)
        without = self._run(Protocol.WI, fork_flush=False)
        assert with_flush.updates["total"] == 0
        assert without.updates["total"] == 0
