"""Scenario tests for the write-invalidate protocol."""

import pytest

from repro.config import MachineConfig, Protocol
from repro.isa.ops import (
    CompareSwap, Compute, Fence, FetchAdd, FetchStore, Flush, Read,
    SpinUntil, Write,
)
from repro.memsys.cache import CacheState
from repro.memsys.directory import DirState
from repro.runtime import Machine

from tests.conftest import make_machine, run_programs


def wi_machine(n=4, **kw):
    return make_machine(n, Protocol.WI, **kw)


def idle():
    """An empty thread."""
    if False:
        yield


class TestReadsAndSharing:
    def test_read_miss_fills_shared(self):
        m = wi_machine()
        addr = m.memmap.alloc_word(1, init=5)

        def reader(node):
            v = yield Read(addr)
            assert v == 5

        run_programs(m, reader(0))
        block = m.config.block_of(addr)
        line = m.controllers[0].cache.lookup(block)
        assert line.state is CacheState.SHARED
        ent = m.controllers[1].directory.entry(block)
        assert ent.state is DirState.SHARED
        assert 0 in ent.sharers

    def test_multiple_readers_all_cached(self):
        m = wi_machine()
        addr = m.memmap.alloc_word(0, init=9)

        def reader(node):
            v = yield Read(addr)
            assert v == 9

        run_programs(m, *(reader(i) for i in range(4)))
        block = m.config.block_of(addr)
        for ctrl in m.controllers:
            assert ctrl.cache.contains(block)
        assert m.controllers[0].directory.entry(block).sharers == \
            {0, 1, 2, 3}

    def test_read_hit_is_one_cycle(self):
        m = wi_machine()
        addr = m.memmap.alloc_word(0)

        times = []

        def reader(node):
            yield Read(addr)          # miss
            t0 = m.sim.now
            yield Read(addr)          # hit
            times.append(m.sim.now - t0)

        run_programs(m, reader(0))
        assert times == [1]

    def test_second_reader_of_dirty_block_gets_forwarded_data(self):
        m = wi_machine()
        addr = m.memmap.alloc_word(2)
        flag = m.memmap.alloc_word(3)

        def writer(node):
            yield Write(addr, 77)
            yield Fence()
            yield Write(flag, 1)
            yield Fence()

        def reader(node):
            yield SpinUntil(flag, lambda v: v == 1)
            v = yield Read(addr)
            assert v == 77

        run_programs(m, writer(0), reader(1))
        block = m.config.block_of(addr)
        # the owner was demoted to SHARED by the forwarded read
        assert m.controllers[0].cache.lookup(block).state is \
            CacheState.SHARED
        ent = m.controllers[2].directory.entry(block)
        assert ent.state is DirState.SHARED
        assert ent.sharers == {0, 1}


class TestWritesAndInvalidation:
    def test_write_miss_fills_modified(self):
        m = wi_machine()
        addr = m.memmap.alloc_word(1)

        def writer(node):
            yield Write(addr, 3)
            yield Fence()

        run_programs(m, writer(0))
        block = m.config.block_of(addr)
        line = m.controllers[0].cache.lookup(block)
        assert line.state is CacheState.MODIFIED
        assert line.data[m.config.word_of(addr)] == 3
        ent = m.controllers[1].directory.entry(block)
        assert ent.state is DirState.DIRTY and ent.owner == 0

    def test_write_to_shared_upgrades_and_invalidates(self):
        m = wi_machine()
        addr = m.memmap.alloc_word(0, init=1)
        sync = m.memmap.alloc_word(3)

        def reader(node):
            v = yield Read(addr)
            assert v == 1
            yield FetchAdd(sync, 1)
            yield SpinUntil(sync, lambda v: v >= 3)

        def writer(node):
            v = yield Read(addr)       # join sharers
            yield FetchAdd(sync, 1)
            yield SpinUntil(sync, lambda v: v == 2)
            yield Write(addr, 2)       # upgrade
            yield Fence()
            yield FetchAdd(sync, 1)

        run_programs(m, reader(0), writer(1))
        block = m.config.block_of(addr)
        assert not m.controllers[0].cache.contains(block)
        assert m.controllers[1].cache.lookup(block).state is \
            CacheState.MODIFIED
        assert m.miss_classifier.exclusive_requests >= 1

    def test_local_writes_to_modified_generate_no_traffic(self):
        m = wi_machine()
        addr = m.memmap.alloc_word(1)

        def writer(node):
            yield Write(addr, 1)
            yield Fence()
            before = m.net.stats.messages
            for i in range(10):
                yield Write(addr, i)
            yield Fence()
            assert m.net.stats.messages == before

        run_programs(m, writer(0))

    def test_ownership_transfer_between_writers(self):
        m = wi_machine()
        addr = m.memmap.alloc_word(2)
        turn = m.memmap.alloc_word(3)

        def first(node):
            yield Write(addr, 10)
            yield Fence()
            yield Write(turn, 1)
            yield Fence()

        def second(node):
            yield SpinUntil(turn, lambda v: v == 1)
            v = yield Read(addr)
            assert v == 10
            yield Write(addr, 20)
            yield Fence()

        run_programs(m, first(0), second(1))
        block = m.config.block_of(addr)
        ent = m.controllers[2].directory.entry(block)
        assert ent.state is DirState.DIRTY and ent.owner == 1
        assert not m.controllers[0].cache.contains(block)


class TestAtomics:
    def test_fetch_add_serializes(self):
        m = wi_machine()
        addr = m.memmap.alloc_word(0)

        results = []

        def adder(node):
            old = yield FetchAdd(addr, 1)
            results.append(old)

        run_programs(m, *(adder(i) for i in range(4)))
        assert sorted(results) == [0, 1, 2, 3]

    def test_fetch_store_swaps(self):
        m = wi_machine()
        addr = m.memmap.alloc_word(0, init=111)

        def swapper(node):
            old = yield FetchStore(addr, 222)
            assert old == 111
            old2 = yield FetchStore(addr, 333)
            assert old2 == 222

        run_programs(m, swapper(0))

    def test_cas_only_one_winner(self):
        m = wi_machine()
        addr = m.memmap.alloc_word(0)
        wins = []

        def caser(node):
            ok = yield CompareSwap(addr, 0, node + 1)
            if ok:
                wins.append(node)

        run_programs(m, *(caser(i) for i in range(4)))
        assert len(wins) == 1

    def test_atomic_on_modified_block_is_local(self):
        m = wi_machine()
        addr = m.memmap.alloc_word(1)

        def prog(node):
            yield Write(addr, 5)
            yield Fence()
            before = m.net.stats.messages
            old = yield FetchAdd(addr, 1)
            assert old == 5
            assert m.net.stats.messages == before

        run_programs(m, prog(0))

    def test_atomic_forces_write_buffer_drain(self):
        m = wi_machine()
        a = m.memmap.alloc_word(1)
        b = m.memmap.alloc_word(2)

        def prog(node):
            yield Write(a, 1)
            old = yield FetchAdd(b, 1)   # must drain the write first
            assert m.controllers[0].wb.empty or \
                m.controllers[0].wb.head().word != m.config.word_of(a)

        run_programs(m, prog(0))


class TestEvictionsAndWritebacks:
    def test_conflict_eviction_writes_back_dirty(self):
        cfg_lines = 4
        m = make_machine(2, Protocol.WI,
                         cache_size_bytes=4 * 64)  # 4 lines
        # two blocks mapping to the same line, homed at node 1
        a = m.memmap.alloc_block(1)
        b = a + 4 * 64 * m.config.num_procs * \
            (m.config.num_cache_lines // m.config.num_procs)
        # construct a conflicting address the robust way: same index
        b = a + m.config.num_cache_lines * m.config.block_size_bytes \
            * m.config.num_procs

        def prog(node):
            yield Write(a, 123)
            yield Fence()
            yield Read(b)          # evicts a's block (same line)
            v = yield Read(a)      # reload: must still be 123
            assert v == 123

        run_programs(m, prog(0), idle())
        # can't be a deadlock; value survived the writeback round trip

    def test_eviction_classified(self):
        m = make_machine(2, Protocol.WI, cache_size_bytes=4 * 64)
        a = m.memmap.alloc_block(1)
        b = a + m.config.num_cache_lines * m.config.block_size_bytes \
            * m.config.num_procs

        def prog(node):
            yield Read(a)
            yield Read(b)
            yield Read(a)

        run_programs(m, prog(0), idle())
        assert m.miss_classifier.as_dict()["eviction"] >= 1


class TestFlush:
    def test_flush_drops_block_and_next_read_misses(self):
        m = wi_machine()
        addr = m.memmap.alloc_word(1, init=4)

        def prog(node):
            yield Read(addr)
            yield Flush(addr)
            assert not m.controllers[0].cache.contains(
                m.config.block_of(addr))
            v = yield Read(addr)
            assert v == 4

        run_programs(m, prog(0))

    def test_flush_of_dirty_block_writes_back(self):
        m = wi_machine()
        addr = m.memmap.alloc_word(1)

        def prog(node):
            yield Write(addr, 31)
            yield Fence()
            yield Flush(addr)
            yield Compute(200)
            v = yield Read(addr)
            assert v == 31

        run_programs(m, prog(0))

    def test_flush_with_pending_buffered_write(self):
        """The ucMCS pattern: write then immediately flush the block."""
        m = wi_machine()
        addr = m.memmap.alloc_word(1)

        def prog(node):
            yield Write(addr, 9)
            yield Flush(addr)       # must drain the write first
            v = yield Read(addr)
            assert v == 9

        run_programs(m, prog(0))


class TestSpin:
    def test_spin_sees_remote_write(self):
        m = wi_machine()
        addr = m.memmap.alloc_word(2)

        def writer(node):
            yield Compute(500)
            yield Write(addr, 1)
            yield Fence()

        def spinner(node):
            v = yield SpinUntil(addr, lambda v: v == 1)
            assert v == 1

        run_programs(m, writer(0), spinner(1))

    def test_spin_generates_no_traffic_while_idle(self):
        m = wi_machine()
        addr = m.memmap.alloc_word(2)

        msgs = {}

        def writer(node):
            yield Read(addr)  # warm nothing in particular
            yield Compute(2000)
            msgs["before_write"] = m.net.stats.messages
            yield Write(addr, 1)
            yield Fence()

        def spinner(node):
            yield SpinUntil(addr, lambda v: v == 1)

        run_programs(m, writer(0), spinner(1))
        # while the writer computed for 2000 cycles the spinner sat on
        # its cached copy: the only traffic in that window is the
        # writer's own transactions
        assert msgs["before_write"] <= 10
