"""Cross-validation: the static spec-graph explorer and the dynamic
modelcheck DFS must agree on all four seeded protocol mutations.

The dynamic checker runs the mutation's witness litmus program on the
real simulator; the graph explorer sees only the mutated tables.  Both
must flag every mutation, and the explorer must localize it to the
violation kind the mutation was seeded to produce, with a spec-level
counterexample path.  The PU/CU product graphs take a minute or two
each to exhaust, hence the ``slow`` marks."""

from __future__ import annotations

import pytest

from repro.modelcheck import explore, get_mutation, get_program
from repro.protospec import get_spec
from repro.staticcheck import (
    SPEC_MUTATIONS, apply_spec_mutation, check_spec_graph,
)

_SLOW = {"pu-upd-prop-overwrite", "cu-counter-stuck"}

CASES = [
    pytest.param(name, marks=pytest.mark.slow) if name in _SLOW
    else pytest.param(name)
    for name in sorted(SPEC_MUTATIONS)
]


def test_spec_and_runtime_mutation_registries_mirror_each_other():
    """Every seeded runtime mutation has a table-level twin targeting
    the same protocol, so the two checkers examine the same bug."""
    for name, spec_mut in SPEC_MUTATIONS.items():
        runtime_mut = get_mutation(name)
        assert runtime_mut.protocol.value == spec_mut.protocol


@pytest.mark.parametrize("name", CASES)
def test_both_checkers_flag_the_mutation(name):
    spec_mut = SPEC_MUTATIONS[name]
    runtime_mut = get_mutation(name)

    # dynamic: the witness litmus program trips a violation
    res = explore(get_program(runtime_mut.program),
                  protocol=runtime_mut.protocol, mutation=name)
    assert res.violation is not None, (
        f"{name} survived {res.schedules} dynamic schedules")

    # static: the product graph flags the mutated tables, no simulator
    mutated = apply_spec_mutation(get_spec(spec_mut.protocol), name)
    findings, graph = check_spec_graph(spec_mut.protocol, mutated)
    errors = [f for f in findings if f.severity == "error"]
    assert errors, f"{name} escaped the spec-graph explorer"
    kinds = {f.ident.split("/")[1][len("graph-"):] for f in errors}
    assert kinds & set(spec_mut.expect), (
        f"{name}: got kinds {kinds}, expected one of "
        f"{set(spec_mut.expect)}")
    assert graph["counterexamples"], (
        f"{name}: no spec-level counterexample path emitted")
