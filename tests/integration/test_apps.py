"""Integration tests for the application kernels (self-checking)."""

import pytest

from repro.config import MachineConfig, Protocol
from repro.apps import run_histogram, run_jacobi, run_workqueue
from repro.apps.stencil import _oracle, SCALE
from repro.apps.workqueue import item_cost


def cfg(P, protocol, **kw):
    return MachineConfig(num_procs=P, protocol=protocol, **kw)


class TestJacobi:
    def test_oracle_is_a_fixed_boundary_sweep(self):
        grid = [0, 3 * SCALE, 0, 0]
        out = _oracle(grid, 1)
        assert out[0] == 0 and out[-1] == 0
        assert out[1] == SCALE

    @pytest.mark.parametrize("P", [2, 4, 8])
    def test_jacobi_matches_oracle(self, protocol, P):
        res = run_jacobi(cfg(P, protocol), iters=6, cells_per_proc=6)
        assert res.verified
        assert res.result.total_cycles > 0

    def test_jacobi_all_barrier_kinds(self, protocol):
        for kind in ("cb", "db", "tb"):
            res = run_jacobi(cfg(4, protocol), iters=4,
                             cells_per_proc=4, barrier_kind=kind)
            assert res.verified

    def test_update_protocols_reduce_jacobi_misses(self):
        wi = run_jacobi(cfg(8, Protocol.WI), iters=8)
        pu = run_jacobi(cfg(8, Protocol.PU), iters=8)
        # halo reads under PU hit refreshed copies after warm-up
        assert pu.result.misses["total"] < wi.result.misses["total"]

    def test_jacobi_on_hybrid_machine(self):
        res = run_jacobi(cfg(4, Protocol.HYBRID), iters=4)
        assert res.verified


class TestHistogram:
    @pytest.mark.parametrize("P", [2, 4, 8])
    def test_counts_exact(self, protocol, P):
        res = run_histogram(cfg(P, protocol), items_per_proc=24)
        assert sum(res.counts) == P * 24

    def test_single_bin_maximal_contention(self, protocol):
        res = run_histogram(cfg(4, protocol), items_per_proc=16,
                            num_bins=1)
        assert res.counts == [64]

    def test_more_bins_less_contention(self, protocol):
        hot = run_histogram(cfg(8, protocol), items_per_proc=24,
                            num_bins=1)
        cool = run_histogram(cfg(8, protocol), items_per_proc=24,
                             num_bins=16)
        assert cool.result.total_cycles < hot.result.total_cycles


class TestWorkQueue:
    def test_item_costs_deterministic_and_uneven(self):
        costs = [item_cost(i) for i in range(50)]
        assert costs == [item_cost(i) for i in range(50)]
        assert len(set(costs)) > 10

    @pytest.mark.parametrize("P", [2, 4, 8])
    def test_every_item_exactly_once(self, protocol, P):
        res = run_workqueue(cfg(P, protocol), total_items=40)
        assert sum(res.per_node) == 40

    @pytest.mark.parametrize("lock_kind", ["tk", "MCS", "uc", None])
    def test_all_dispatch_mechanisms(self, protocol, lock_kind):
        res = run_workqueue(cfg(4, protocol), total_items=24,
                            lock_kind=lock_kind)
        assert sum(res.per_node) == 24

    def test_dynamic_scheduling_balances_uneven_work(self, protocol):
        res = run_workqueue(cfg(4, protocol), total_items=64)
        # every processor got a meaningful share
        assert min(res.per_node) >= 4
        assert res.balance < 2.0

    def test_lock_free_dispatch_cheaper_under_update(self):
        locked = run_workqueue(cfg(8, Protocol.PU), total_items=48,
                               lock_kind="MCS")
        lockfree = run_workqueue(cfg(8, Protocol.PU), total_items=48,
                                 lock_kind=None)
        # one memory-side fetch_and_add beats a full lock round trip
        assert (lockfree.result.total_cycles
                < locked.result.total_cycles)


class TestSpMV:
    def test_norms_match_oracle(self, protocol):
        from repro.apps import run_spmv
        res = run_spmv(cfg(4, protocol), iters=3)
        assert len(res.norms) == 3

    @pytest.mark.parametrize("P", [2, 8])
    def test_scales_and_verifies(self, protocol, P):
        from repro.apps import run_spmv
        res = run_spmv(cfg(P, protocol), iters=2, rows_per_proc=4)
        assert res.cycles_per_iter > 0

    def test_irregular_reads_share_widely(self):
        from repro.apps import run_spmv
        from repro.config import Protocol as Pr
        res = run_spmv(cfg(8, Pr.WI), iters=3)
        # the shared vector's blocks are read by many nodes: true
        # sharing misses dominate after the cold start
        m = res.result.misses
        assert m["true"] > 0
