"""Integration tests for the Machine runtime."""

import pytest

from repro.config import MachineConfig, Protocol
from repro.engine import DeadlockError, Tracer
from repro.isa.ops import Compute, Fence, Read, SpinUntil, Write, CallHook
from repro.runtime import Machine

from tests.conftest import make_machine, run_programs


class TestSpawning:
    def test_spawn_rejects_bad_node(self, protocol):
        m = make_machine(2, protocol)
        with pytest.raises(ValueError):
            m.spawn(2, (x for x in ()))

    def test_spawn_rejects_duplicate_node(self, protocol):
        m = make_machine(2, protocol)
        m.spawn(0, (yield_ for yield_ in ()))
        with pytest.raises(ValueError):
            m.spawn(0, (yield_ for yield_ in ()))

    def test_run_without_threads_raises(self, protocol):
        m = make_machine(2, protocol)
        with pytest.raises(RuntimeError):
            m.run()

    def test_machine_single_use(self, protocol):
        m = make_machine(1, protocol)

        def prog():
            yield Compute(1)

        m.spawn(0, prog())
        m.run()
        with pytest.raises(RuntimeError):
            m.run()

    def test_spawn_all(self, protocol):
        m = make_machine(3, protocol)
        seen = []

        def factory(node):
            def prog():
                seen.append(node)
                yield Compute(1)
            return prog()

        m.spawn_all(factory)
        m.run()
        assert sorted(seen) == [0, 1, 2]


class TestDeadlockDetection:
    def test_spin_on_never_written_word_deadlocks(self, protocol):
        m = make_machine(2, protocol)
        addr = m.memmap.alloc_word(0)

        def spinner():
            yield SpinUntil(addr, lambda v: v == 1)

        def other():
            yield Compute(5)

        m.spawn(0, spinner())
        m.spawn(1, other())
        with pytest.raises(DeadlockError):
            m.run()

    def test_hook_never_resumed_deadlocks(self, protocol):
        m = make_machine(1, protocol)

        def prog():
            yield CallHook(lambda proc, resume: None)

        m.spawn(0, prog())
        with pytest.raises(DeadlockError):
            m.run()


class TestResults:
    def test_initial_values_installed(self, protocol):
        m = make_machine(4, protocol)
        addr = m.memmap.alloc_word(2, init=77)

        def prog():
            v = yield Read(addr)
            assert v == 77

        m.spawn(0, prog())
        m.run()

    def test_run_result_fields(self, protocol):
        m = make_machine(2, protocol)
        addr = m.memmap.alloc_word(1)

        def prog(node):
            yield Write(addr, node)
            yield Fence()
            yield Read(addr)

        r = run_programs(m, prog(0), prog(1))
        assert r.total_cycles > 0
        assert r.events > 0
        assert len(r.proc_done_times) == 2
        assert all(t <= r.total_cycles for t in r.proc_done_times)
        assert r.misses["total"] >= 1
        assert r.shared_refs >= 4

    def test_program_exception_propagates(self, protocol):
        m = make_machine(1, protocol)

        def prog():
            yield Compute(1)
            raise ValueError("program bug")

        m.spawn(0, prog())
        with pytest.raises(ValueError, match="program bug"):
            m.run()

    def test_determinism_same_seeded_run(self, protocol):
        def once():
            m = make_machine(4, protocol)
            addr = m.memmap.alloc_word(0)

            def prog(node):
                for i in range(10):
                    yield Write(addr, node * 100 + i)
                    yield Compute(node * 3 + 1)
                yield Fence()

            m.spawn_all(lambda n: prog(n))
            return m.run()

        a, b = once(), once()
        assert a.total_cycles == b.total_cycles
        assert a.events == b.events
        assert a.misses == b.misses
        assert a.updates == b.updates

    def test_quiesced_after_run(self, protocol):
        m = make_machine(3, protocol)
        addr = m.memmap.alloc_word(0)

        def prog(node):
            yield Write(addr, node)
            yield Fence()

        m.spawn_all(lambda n: prog(n))
        m.run()
        assert m.quiesced()
        m.check_coherence_invariants()

    def test_tracer_collects_messages(self, protocol):
        cfg = MachineConfig(num_procs=2, protocol=protocol)
        m = Machine(cfg, tracer=Tracer(), max_events=100_000)
        addr = m.memmap.alloc_word(1)

        def prog():
            yield Read(addr)

        m.spawn(0, prog())
        m.run()
        events = m.tracer.counts()
        assert events.get("msg:read_req", 0) == 1
        assert events.get("msg:read_reply", 0) == 1
