"""Integration tests for the exhaustive model checker: clean
exploration, seeded-mutation detection, and counterexample replay."""

from __future__ import annotations

import json

import pytest

from repro.config import Protocol
from repro.modelcheck import (
    MUTATIONS, counterexample_dict, explore, get_mutation, get_program,
    load_schedule, replay, save_counterexample,
)


def test_sb_wi_explores_exhaustively_and_cleanly():
    res = explore(get_program("sb"), protocol=Protocol.WI)
    assert res.clean, res.violation
    assert res.complete
    assert res.states > 0
    assert res.choice_points > 1          # real branching happened
    assert res.unhashed == 0              # every state fingerprinted
    assert res.dedup_hits > 0             # pruning actually engaged


def test_dedup_does_not_change_the_verdict():
    pruned = explore(get_program("evict"), protocol=Protocol.WI)
    full = explore(get_program("evict"), protocol=Protocol.WI,
                   dedup=False)
    assert pruned.clean and full.clean
    assert pruned.complete and full.complete
    assert full.schedules >= pruned.schedules


@pytest.mark.parametrize("name", ["wi-drop-inv-ack",
                                  "cu-counter-stuck"])
def test_seeded_mutation_is_detected(name):
    mut = get_mutation(name)
    res = explore(get_program(mut.program), protocol=mut.protocol,
                  mutation=name)
    assert res.violation is not None, (
        f"{name} survived {res.schedules} schedules undetected")
    assert res.choices is not None


def test_counterexample_round_trips_through_replay(tmp_path):
    mut = MUTATIONS["wi-skip-invalidation"]
    res = explore(get_program(mut.program), protocol=mut.protocol,
                  mutation=mut.name)
    assert res.violation is not None
    path = tmp_path / "ce.json"
    save_counterexample(str(path), res)
    data = load_schedule(str(path))
    assert data["violation"]["kind"] == res.violation.kind
    assert replay(data, quiet=True) == 0


def test_replay_dict_matches_schema():
    mut = MUTATIONS["pu-upd-prop-overwrite"]
    res = explore(get_program(mut.program), protocol=mut.protocol,
                  mutation=mut.name)
    assert res.violation is not None
    data = counterexample_dict(res)
    json.dumps(data)                      # must be JSON-serializable
    assert data["program"] == mut.program
    assert data["mutation"] == mut.name
    assert isinstance(data["choices"], list)


def test_unmutated_mp_round_trip_is_clean():
    res = explore(get_program("mp"), protocol=Protocol.PU)
    assert res.clean and res.complete
