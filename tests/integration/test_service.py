"""Integration tests for the simulation-serving gateway.

Covers the acceptance criteria of the service subsystem: served
results bit-identical to direct campaign runs, single-flight dedupe
under 16 concurrent clients, queue overflow -> 429 + Retry-After,
request deadlines -> 504 with the simulation surviving, and graceful
SIGTERM drain of a real server process.
"""

import asyncio
import json
import os
import signal
import socket
import subprocess
import sys
import time

import pytest

from repro.campaign import CampaignRunner, ResultCache, RunRecord, RunSpec
from repro.config import ExperimentScale, MachineConfig, Protocol
from repro.experiments.figures import figure_points
from repro.service import Gateway, ServiceConfig, SimScheduler
from repro.service.loadgen import HttpClient

SCALE = 0.002       # tiny but nonzero simulations (~10ms each)


def tiny_spec(total_acquires: int = 8) -> RunSpec:
    cfg = MachineConfig(num_procs=2, protocol=Protocol.PU)
    return RunSpec.make("lock", cfg, kind="tk",
                        total_acquires=total_acquires)


def run_body(spec: RunSpec) -> bytes:
    return json.dumps(spec.to_jsonable()).encode()


def serve(test_coro, config=None, scheduler=None, timeout=120):
    """Boot a gateway on a free port, run ``test_coro(gw, client)``."""
    async def go():
        cfg = config or ServiceConfig(port=0, jobs=2, quiet=True,
                                      cache_dir=None)
        gw = Gateway(cfg, scheduler=scheduler)
        await gw.start()
        client = HttpClient("127.0.0.1", gw.port)
        try:
            await asyncio.wait_for(test_coro(gw, client), timeout)
        finally:
            await client.close()
            await asyncio.wait_for(gw.stop(), 30)
    asyncio.run(go())


class TestGoldenBitIdentity:
    def test_run_record_identical_to_campaign(self, tmp_path):
        """The acceptance criterion: a record served over HTTP equals
        the record a direct CampaignRunner produces for the same spec
        (RunRecord equality covers metrics and the full simulation
        result; elapsed_s/cached are excluded by design)."""
        spec = tiny_spec()
        direct = CampaignRunner(jobs=1).run([spec]).records[0]

        async def check(gw, client):
            status, _, body = await client.request(
                "POST", "/v1/run", run_body(spec))
            assert status == 200
            doc = json.loads(body)
            assert doc["key"] == spec.key
            served = RunRecord.from_jsonable(doc["record"])
            assert served == direct
            assert served.sim == direct.sim

        serve(check, config=ServiceConfig(
            port=0, jobs=2, quiet=True,
            cache_dir=str(tmp_path / "cache")))

    def test_sweep_metrics_identical_to_campaign(self, tmp_path):
        points = figure_points("fig9",
                               scale=ExperimentScale.scaled(SCALE), P=2)
        direct = CampaignRunner(jobs=1).run([pt.spec for pt in points])
        by_key = {rec.key: rec for rec in direct.records}

        async def check(gw, client):
            status, _, body = await client.request(
                "POST", "/v1/sweep",
                json.dumps({"figure": "fig9", "scale": SCALE,
                            "procs": 2}).encode())
            assert status == 200
            events = [json.loads(line) for line in body.splitlines()]
            specs = [e for e in events if e["event"] == "spec"]
            assert len(specs) == len(points)
            for event in specs:
                assert event["ok"]
                assert event["metrics"] == \
                    dict(by_key[event["key"]].metrics)
            assert events[-1]["event"] == "done"
            assert events[-1]["ok"]

        serve(check, config=ServiceConfig(
            port=0, jobs=2, quiet=True,
            cache_dir=str(tmp_path / "cache")))


class TestConcurrentClients:
    def test_16_clients_single_flight(self, tmp_path):
        """16 overlapping sweeps of the same figure: every client gets
        all 9 specs, but each unique spec simulates exactly once."""
        body = json.dumps({"figure": "fig9", "scale": SCALE,
                           "procs": 2}).encode()

        async def check(gw, client):
            async def one_client():
                c = HttpClient("127.0.0.1", gw.port)
                try:
                    status, _, resp = await c.request(
                        "POST", "/v1/sweep", body)
                    events = [json.loads(l) for l in resp.splitlines()]
                    return status, events
                finally:
                    await c.close()

            results = await asyncio.gather(
                *(one_client() for _ in range(16)))
            for status, events in results:
                assert status == 200
                done = events[-1]
                assert done["event"] == "done" and done["ok"]
                assert done["executed"] + done["cached"] == 9
            executed = gw.registry.get("repro_specs_total").value(
                status="executed")
            assert executed == 9
            dedup = gw.registry.get(
                "repro_singleflight_dedup_total").value()
            assert dedup > 0

        serve(check, config=ServiceConfig(
            port=0, jobs=2, quiet=True,
            cache_dir=str(tmp_path / "cache")))


class BlockingScheduler(SimScheduler):
    """Holds every simulation until released (no process pool)."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.release = asyncio.Event()

    async def _execute(self, spec):
        await self.release.wait()
        return RunRecord(key=spec.key, workload=spec.workload,
                         ok=True, metrics={"x": 1.0})


class TestBackpressure:
    def test_queue_overflow_is_429_with_retry_after(self, tmp_path):
        async def check(gw, client):
            first = asyncio.create_task(client.request(
                "POST", "/v1/run", run_body(tiny_spec(8))))
            await asyncio.sleep(0.05)       # let it occupy the queue
            c2 = HttpClient("127.0.0.1", gw.port)
            try:
                status, headers, body = await c2.request(
                    "POST", "/v1/run", run_body(tiny_spec(16)))
                assert status == 429
                assert int(headers["retry-after"]) >= 1
                assert "queue full" in json.loads(body)["error"]
            finally:
                await c2.close()
            gw.scheduler.release.set()
            status, _, _ = await first
            assert status == 200

        serve(check, config=ServiceConfig(port=0, jobs=1, max_queue=1,
                                          quiet=True, cache_dir=None),
              scheduler=BlockingScheduler(
                  jobs=1, max_queue=1,
                  cache=ResultCache(tmp_path / "cache")))

    def test_deadline_504_and_late_result_poll(self, tmp_path):
        spec = tiny_spec()

        async def check(gw, client):
            body = json.dumps(dict(json.loads(run_body(spec)),
                                   deadline_s=0.05)).encode()
            status, _, resp = await client.request(
                "POST", "/v1/run", body)
            assert status == 504
            # the simulation is still in flight: 202 + Retry-After
            status, headers, _ = await client.request(
                "GET", f"/v1/result/{spec.key}")
            assert status == 202
            assert headers["retry-after"] == "1"
            gw.scheduler.release.set()
            for _ in range(100):
                status, _, resp = await client.request(
                    "GET", f"/v1/result/{spec.key}")
                if status == 200:
                    break
                await asyncio.sleep(0.02)
            assert status == 200
            assert json.loads(resp)["record"]["ok"]

        serve(check, config=ServiceConfig(port=0, jobs=1, quiet=True,
                                          cache_dir=None),
              scheduler=BlockingScheduler(
                  jobs=1, cache=ResultCache(tmp_path / "cache")))

    def test_draining_guard_rejects_new_work(self):
        async def check(gw, client):
            gw._draining = True     # white-box: flag only, server open
            status, headers, _ = await client.request(
                "POST", "/v1/run", run_body(tiny_spec()))
            assert status == 503
            assert "retry-after" in headers
            status, _, body = await client.request("GET", "/healthz")
            assert status == 503
            assert json.loads(body)["status"] == "draining"
            gw._draining = False

        serve(check, scheduler=BlockingScheduler(jobs=1))


class TestValidationOverHttp:
    def test_error_statuses(self):
        async def check(gw, client):
            cases = [
                ("POST", "/v1/run", b"{nope", 400),
                ("POST", "/v1/run",
                 json.dumps({"workload": "lok"}).encode(), 400),
                ("POST", "/v1/sweep",
                 json.dumps({"figure": "fig99"}).encode(), 400),
                ("GET", "/v1/result/zzz", None, 400),
                ("GET", "/v1/result/" + "0" * 64, None, 404),
                ("GET", "/nope", None, 404),
                ("DELETE", "/healthz", None, 405),
            ]
            for method, path, body, expected in cases:
                status, _, resp = await client.request(
                    method, path, body)
                assert status == expected, (path, status)
                assert "error" in json.loads(resp)

        serve(check, scheduler=BlockingScheduler(jobs=1))

    def test_metrics_endpoint_renders(self):
        async def check(gw, client):
            status, headers, body = await client.request(
                "GET", "/metrics")
            assert status == 200
            assert headers["content-type"].startswith("text/plain")
            text = body.decode()
            assert "# TYPE repro_requests_total counter" in text
            assert "repro_queue_depth" in text

        serve(check, scheduler=BlockingScheduler(jobs=1))

    def test_failed_simulation_is_422(self):
        bad = RunSpec.make("lock",
                           MachineConfig(num_procs=2,
                                         protocol=Protocol.PU),
                           kind="no-such-lock")

        async def check(gw, client):
            status, _, body = await client.request(
                "POST", "/v1/run", run_body(bad))
            assert status == 422
            doc = json.loads(body)
            assert not doc["record"]["ok"]
            assert doc["record"]["error_type"] == "ValueError"

        serve(check)


class TestServerProcess:
    """End-to-end against a real ``serve`` subprocess."""

    @staticmethod
    def _env():
        import repro

        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        env["PYTHONPATH"] = src_root + os.pathsep + \
            env.get("PYTHONPATH", "")
        return env

    def boot(self, tmp_path, *extra):
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.experiments", "serve",
             "--port", "0", "--jobs", "2", "--cache-dir",
             str(tmp_path / "cache"), "--quiet", *extra],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            env=self._env(), text=True)
        boot = json.loads(proc.stdout.readline())
        return proc, boot["port"]

    def test_sigterm_drains_inflight_sweep(self, tmp_path):
        proc, port = self.boot(tmp_path)
        try:
            body = json.dumps({"figure": "fig9", "scale": SCALE,
                               "procs": 2}).encode()
            with socket.create_connection(("127.0.0.1", port),
                                          timeout=60) as sock:
                sock.settimeout(60)
                sock.sendall(
                    (f"POST /v1/sweep HTTP/1.1\r\nHost: t\r\n"
                     f"Content-Length: {len(body)}\r\n\r\n"
                     ).encode() + body)
                time.sleep(0.05)        # sweep admitted, now SIGTERM
                proc.send_signal(signal.SIGTERM)
                chunks = []
                while True:
                    chunk = sock.recv(65536)
                    if not chunk:
                        break
                    chunks.append(chunk)
            raw = b"".join(chunks)
            head, _, payload = raw.partition(b"\r\n\r\n")
            assert b"200 OK" in head.splitlines()[0]
            events = [json.loads(l) for l in payload.splitlines()]
            done = events[-1]
            assert done["event"] == "done" and done["ok"]
            assert done["executed"] + done["cached"] == 9
        finally:
            try:
                rc = proc.wait(timeout=60)
            except subprocess.TimeoutExpired:
                proc.kill()
                pytest.fail("server did not exit after SIGTERM")
        assert rc == 0

    def test_healthz_and_second_boot_reuses_cache(self, tmp_path):
        import urllib.request

        proc, port = self.boot(tmp_path)
        try:
            with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/healthz",
                    timeout=30) as resp:
                doc = json.loads(resp.read())
            assert doc["status"] == "ok"
            assert doc["jobs"] == 2
        finally:
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60) == 0


class TestReadiness:
    """/readyz is distinct from /healthz: it flips to 503 the moment a
    drain begins (and before start() completes), so a cluster router
    stops routing to a shard before its SIGTERM finishes."""

    def test_ready_while_serving(self):
        async def check(gw, client):
            status, _, body = await client.request("GET", "/readyz")
            assert status == 200
            assert json.loads(body)["status"] == "ready"

        serve(check, scheduler=BlockingScheduler(jobs=1))

    def test_unready_during_drain_while_healthz_still_answers(self):
        async def check(gw, client):
            gw._draining = True     # white-box: flag only, server open
            gw._ready = False
            status, headers, body = await client.request(
                "GET", "/readyz")
            assert status == 503
            assert json.loads(body)["status"] == "draining"
            assert "retry-after" in headers
            gw._draining = False
            gw._ready = True

        serve(check, scheduler=BlockingScheduler(jobs=1))

    def test_unready_before_start(self):
        gw = Gateway(ServiceConfig(port=0, jobs=1, quiet=True,
                                   cache_dir=None),
                     scheduler=BlockingScheduler(jobs=1))
        assert gw._ready is False

    def test_shard_identity_in_health_and_boot(self):
        ids = ("shard-0", "shard-1")
        config = ServiceConfig(port=0, jobs=1, quiet=True,
                               cache_dir=None, shard_id="shard-0",
                               shard_peers=ids)

        async def check(gw, client):
            status, _, body = await client.request("GET", "/healthz")
            assert json.loads(body)["shard_id"] == "shard-0"
            status, _, body = await client.request("GET", "/readyz")
            assert json.loads(body)["shard_id"] == "shard-0"
            status, _, body = await client.request("GET", "/metrics")
            assert 'shard_id="shard-0"' in body.decode()

        serve(check, config=config)
