"""Integration tests for the experiment harness and CLI."""

import pytest

from repro.config import ExperimentScale
from repro.experiments import (
    FIGURES, MISS_CATEGORIES, UPDATE_CATEGORIES, combo_label,
    fig8_lock_latency, fig9_lock_misses, fig10_lock_updates,
    fig11_barrier_latency, fig13_barrier_updates,
    fig14_reduction_latency, fig16_reduction_updates,
)
from repro.experiments.cli import build_parser, main
from repro.config import Protocol

TINY = ExperimentScale(lock_total_acquires=48, barrier_episodes=4,
                       reduction_iters=4)
SIZES = (2, 4)


class TestFigureRunners:
    def test_combo_labels(self):
        assert combo_label("tk", Protocol.WI) == "tk-i"
        assert combo_label("db", Protocol.PU) == "db-u"
        assert combo_label("sr", Protocol.CU) == "sr-c"

    def test_fig8_structure(self):
        s = fig8_lock_latency(scale=TINY, sizes=SIZES)
        assert s.xs == [2, 4]
        assert set(s.lines) == {
            f"{k}-{p}" for k in ("tk", "MCS", "uc")
            for p in ("i", "u", "c")}
        for label in s.lines:
            for P in SIZES:
                assert s.get(label, P) is not None
                assert s.get(label, P) > 0

    def test_fig9_structure(self):
        b = fig9_lock_misses(scale=TINY, P=4)
        assert b.categories == MISS_CATEGORIES
        assert len(b.bars) == 9
        for label in b.bars:
            assert b.total(label) >= 0

    def test_fig10_only_update_protocols(self):
        b = fig10_lock_updates(scale=TINY, P=4)
        assert set(b.bars) == {
            f"{k}-{p}" for k in ("tk", "MCS", "uc") for p in ("u", "c")}
        assert b.categories == UPDATE_CATEGORIES

    def test_fig11_structure(self):
        s = fig11_barrier_latency(scale=TINY, sizes=SIZES)
        assert set(s.lines) == {
            f"{k}-{p}" for k in ("cb", "db", "tb")
            for p in ("i", "u", "c")}

    def test_fig13_structure(self):
        b = fig13_barrier_updates(scale=TINY, P=4)
        assert len(b.bars) == 6

    def test_fig14_structure(self):
        s = fig14_reduction_latency(scale=TINY, sizes=SIZES)
        assert set(s.lines) == {
            f"{k}-{p}" for k in ("sr", "pr") for p in ("i", "u", "c")}

    def test_fig16_structure(self):
        b = fig16_reduction_updates(scale=TINY, P=4)
        assert set(b.bars) == {"sr-u", "sr-c", "pr-u", "pr-c"}

    def test_figures_registry_complete(self):
        assert set(FIGURES) == {f"fig{i}" for i in range(8, 17)}

    def test_progress_callback_invoked(self):
        calls = []
        fig9_lock_misses(scale=TINY, P=2, progress=calls.append)
        assert len(calls) == 9
        assert all(c.startswith("fig9") for c in calls)


class TestCampaignFigures:
    """The figures are campaigns: parallel == serial, cache == live."""

    def test_parallel_table_identical_to_serial(self):
        from repro.campaign import CampaignRunner
        serial = fig14_reduction_latency(
            scale=TINY, sizes=SIZES, runner=CampaignRunner(jobs=1))
        parallel = fig14_reduction_latency(
            scale=TINY, sizes=SIZES, runner=CampaignRunner(jobs=4))
        assert parallel.render() == serial.render()

    def test_warm_cache_runs_zero_simulations(self, tmp_path):
        from repro.campaign import CampaignRunner, ResultCache
        from repro.experiments import figure_points
        runner = CampaignRunner(cache=ResultCache(tmp_path))
        cold = fig9_lock_misses(scale=TINY, P=2, runner=runner)
        points = figure_points("fig9", scale=TINY, P=2)
        warm_report = runner.run([pt.spec for pt in points])
        assert warm_report.executed == 0
        assert warm_report.cached == len(points)
        from repro.experiments import figure_table
        warm = figure_table("fig9", points, warm_report.records)
        assert warm.render() == cold.render()

    def test_figure_failure_raises_campaign_error(self):
        from repro.campaign import CampaignError, CampaignRunner
        from repro.experiments import run_figure
        with pytest.raises(CampaignError, match="failed"):
            run_figure("fig9", scale=TINY, P=2,
                       runner=CampaignRunner(), delay_mode="bogus")

    def test_points_cover_every_combination(self):
        from repro.experiments import figure_points
        points = figure_points("fig8", scale=TINY, sizes=SIZES)
        assert len(points) == 3 * 3 * len(SIZES)
        labels = {pt.label for pt in points}
        assert labels == {f"{k}-{p}" for k in ("tk", "MCS", "uc")
                          for p in ("i", "u", "c")}


class TestCLI:
    def test_parser_defaults(self):
        args = build_parser().parse_args([])
        assert args.figures == ["all"]
        assert args.scale == 0.1
        assert args.sizes == (1, 2, 4, 8, 16, 32)
        assert args.jobs == 1
        assert args.cache_dir == ".repro-cache"
        assert not args.no_cache

    def test_cli_jobs_and_cache(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cc")
        bench = str(tmp_path / "BENCH_figures.json")
        argv = ["fig16", "--scale", "0.002", "--procs", "2",
                "--jobs", "2", "--cache-dir", cache_dir,
                "--bench-json", bench, "--quiet"]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "Figure 16" in cold
        import json as _json
        with open(bench) as fh:
            tallies = _json.load(fh)["figures"]["fig16"]
        assert tallies["executed"] == tallies["specs"] > 0
        # warm re-run: identical table, zero simulations
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert warm == cold
        with open(bench) as fh:
            tallies = _json.load(fh)["figures"]["fig16"]
        assert tallies["executed"] == 0
        assert tallies["cached"] == tallies["specs"]

    def test_cli_no_cache(self, tmp_path, capsys):
        argv = ["fig16", "--scale", "0.002", "--procs", "2",
                "--no-cache", "--quiet"]
        assert main(argv) == 0
        assert "Figure 16" in capsys.readouterr().out

    def test_check_accepts_jobs(self, capsys):
        from repro.experiments.check import main as check_main
        assert check_main(["--procs", "2", "--jobs", "2",
                           "--quiet"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_parser_sizes(self):
        args = build_parser().parse_args(["--sizes", "2,4"])
        assert args.sizes == (2, 4)

    def test_unknown_figure_rejected(self, capsys):
        rc = main(["fig99"])
        assert rc == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_cli_runs_a_traffic_figure(self, capsys):
        rc = main(["fig9", "--scale", "0.002", "--procs", "4",
                   "--no-cache", "--quiet"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out
        assert "tk-i" in out

    def test_cli_runs_a_latency_figure(self, capsys):
        rc = main(["fig14", "--scale", "0.002", "--sizes", "2,4",
                   "--no-cache", "--quiet"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 14" in out
        assert "sr-u" in out


class TestCliErrorPaths:
    """Unknown names exit nonzero with suggestions, never a traceback
    (run through ``python -m repro.experiments`` like a user would)."""

    @staticmethod
    def run_cli(*argv, cache_args=("--no-cache",)):
        import os
        import subprocess
        import sys

        import repro

        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        env["PYTHONPATH"] = src_root + os.pathsep + \
            env.get("PYTHONPATH", "")
        return subprocess.run(
            [sys.executable, "-m", "repro.experiments",
             *argv, *cache_args],
            capture_output=True, text=True, env=env, timeout=120)

    def test_unknown_figure_suggests_close_names(self):
        out = self.run_cli("fig99")
        assert out.returncode == 2
        assert "unknown figure 'fig99'" in out.stderr
        assert "did you mean" in out.stderr
        assert "fig9" in out.stderr
        assert "choose from" in out.stderr
        assert "Traceback" not in out.stderr

    def test_typoed_subcommand_suggests(self):
        out = self.run_cli("modelchek")
        assert out.returncode == 2
        assert "did you mean" in out.stderr
        assert "modelcheck" in out.stderr
        assert "Traceback" not in out.stderr

    def test_every_unknown_name_reported(self):
        out = self.run_cli("fig99", "gif8")
        assert out.returncode == 2
        assert "fig99" in out.stderr and "gif8" in out.stderr

    def test_did_you_mean_in_process(self, capsys):
        assert main(["fig12a", "--no-cache"]) == 2
        err = capsys.readouterr().err
        assert "did you mean" in err and "fig12" in err

    def test_bad_cache_max_mb_rejected(self, capsys):
        rc = main(["fig9", "--cache-max-mb", "0", "--no-cache"])
        assert rc == 2
        assert "cache-max-mb" in capsys.readouterr().err
