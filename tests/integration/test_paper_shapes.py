"""Paper-shape regression tests.

Each test asserts one of the qualitative results of section 4 at a
reduced (but still meaningful) scale.  These are the guardrails that
keep the simulator faithful to the phenomena the paper reports; the
full-scale numbers live in EXPERIMENTS.md and the benchmarks.
"""

import pytest

from repro.config import MachineConfig, Protocol
from repro.workloads import (
    run_barrier_workload, run_lock_workload, run_reduction_workload,
)


def cfg(P, protocol):
    return MachineConfig(num_procs=P, protocol=protocol)


def lock_lat(P, protocol, kind, total=1600, **kw):
    return run_lock_workload(cfg(P, protocol), kind,
                             total_acquires=total, **kw).avg_latency


def barrier_lat(P, protocol, kind, episodes=60):
    return run_barrier_workload(cfg(P, protocol), kind,
                                episodes=episodes).avg_latency


def reduction_lat(P, protocol, kind, iterations=60, **kw):
    return run_reduction_workload(cfg(P, protocol), kind,
                                  iterations=iterations,
                                  **kw).avg_latency


class TestLockShapes:
    """Section 4.1."""

    def test_ticket_update_protocols_beat_wi_at_scale(self):
        """'the update-based protocols exchange the expensive cache
        misses ... for corresponding update messages' (32p)."""
        wi = lock_lat(16, Protocol.WI, "tk")
        pu = lock_lat(16, Protocol.PU, "tk")
        cu = lock_lat(16, Protocol.CU, "tk")
        assert pu < wi / 1.5
        assert cu < wi / 1.5

    def test_ticket_update_best_at_small_p(self):
        """'the ticket lock under the update-based protocols
        outperforms all other combinations up to 4 processors'."""
        for P in (2, 4):
            tk_u = lock_lat(P, Protocol.PU, "tk")
            others = [
                lock_lat(P, Protocol.WI, "tk"),
                lock_lat(P, Protocol.WI, "MCS"),
                lock_lat(P, Protocol.PU, "MCS"),
            ]
            assert tk_u < min(others) * 1.2  # best or essentially tied

    def test_mcs_cu_beats_mcs_wi_at_scale(self):
        """'the MCS lock under CU performs best for larger numbers of
        processors'."""
        wi = lock_lat(16, Protocol.WI, "MCS")
        cu = lock_lat(16, Protocol.CU, "MCS")
        assert cu < wi

    def test_mcs_beats_ticket_under_wi_at_high_contention(self):
        wi_tk = lock_lat(16, Protocol.WI, "tk")
        wi_mcs = lock_lat(16, Protocol.WI, "MCS")
        assert wi_mcs < wi_tk

    def test_mcs_pu_updates_mostly_useless(self):
        """'the vast majority of updates under an update-based protocol
        is useless' (for the MCS lock)."""
        res = run_lock_workload(cfg(16, Protocol.PU), "MCS",
                                total_acquires=3200)
        upd = res.result.updates
        useless = upd["total"] - upd["useful"]
        assert useless > upd["useful"]

    def test_uc_mcs_cuts_update_traffic(self):
        """The paper's 39%-fewer-updates mechanism (magnitude depends
        on queue mixing; direction must hold)."""
        mcs = run_lock_workload(cfg(16, Protocol.PU), "MCS",
                                total_acquires=1600)
        uc = run_lock_workload(cfg(16, Protocol.PU), "uc",
                               total_acquires=1600)
        assert uc.result.updates["total"] < mcs.result.updates["total"]

    def test_uc_mcs_trades_updates_for_misses(self):
        """'...counter-balanced by an increase in cache miss
        activity'."""
        mcs = run_lock_workload(cfg(16, Protocol.PU), "MCS",
                                total_acquires=1600)
        uc = run_lock_workload(cfg(16, Protocol.PU), "uc",
                               total_acquires=1600)
        assert uc.result.misses["total"] > mcs.result.misses["total"]

    def test_low_contention_same_qualitative_ranking(self):
        """The random-delay variant keeps tk: update > WI (sec 4.1)."""
        wi = lock_lat(8, Protocol.WI, "tk", delay_mode="random")
        pu = lock_lat(8, Protocol.PU, "tk", delay_mode="random")
        assert pu < wi


class TestBarrierShapes:
    """Section 4.2."""

    def test_dissemination_update_beats_wi_everywhere(self):
        """'dissemination ... significantly outperforming WI for all
        numbers of processors'."""
        for P in (4, 8, 16, 32):
            wi = barrier_lat(P, Protocol.WI, "db")
            pu = barrier_lat(P, Protocol.PU, "db")
            cu = barrier_lat(P, Protocol.CU, "db")
            assert pu < wi, P
            assert cu < wi, P

    def test_tree_update_beats_wi(self):
        """'for the tree-based barrier PU and CU again perform ...
        much better than WI'."""
        for P in (8, 16, 32):
            wi = barrier_lat(P, Protocol.WI, "tb")
            pu = barrier_lat(P, Protocol.PU, "tb")
            assert pu < wi, P

    def test_dissemination_update_is_overall_best_at_scale(self):
        """'the dissemination barrier under either PU or CU is the
        combination of choice'."""
        P = 32
        best_db = min(barrier_lat(P, Protocol.PU, "db"),
                      barrier_lat(P, Protocol.CU, "db"))
        others = [barrier_lat(P, pr, k)
                  for k in ("cb", "tb")
                  for pr in (Protocol.WI, Protocol.PU, Protocol.CU)]
        others.append(barrier_lat(P, Protocol.WI, "db"))
        assert best_db < min(others)

    def test_central_barrier_wi_wins_only_at_scale(self):
        """'for centralized barriers the WI protocol outperforms its
        update-based counterparts, but only for large machine
        configurations'."""
        # small machine: update-based wins
        assert barrier_lat(4, Protocol.PU, "cb") < \
            barrier_lat(4, Protocol.WI, "cb")
        # large machine: WI beats pure update
        assert barrier_lat(32, Protocol.WI, "cb", episodes=120) < \
            barrier_lat(32, Protocol.PU, "cb", episodes=120)

    def test_central_barrier_updates_mostly_useless(self):
        """'the amount of update traffic these protocols generate is
        substantial and mostly useless' (central barrier)."""
        res = run_barrier_workload(cfg(16, Protocol.PU), "cb",
                                   episodes=80)
        upd = res.result.updates
        assert upd["total"] > 0
        assert (upd["total"] - upd["useful"]) > upd["useful"]

    def test_dissemination_updates_all_useful(self):
        """'the update behavior of the dissemination barrier under CU
        and PU is very good (as can be seen by their lack of useless
        update messages)'."""
        res = run_barrier_workload(cfg(16, Protocol.PU), "db",
                                   episodes=80)
        upd = res.result.updates
        assert upd["useful"] >= 0.9 * upd["total"]

    def test_tree_updates_more_useful_than_central(self):
        """Scalable barriers' update traffic is 'light and mostly
        useful' relative to the centralized barrier.  (The tree's
        packed child-flag word makes sibling updates partly
        proliferation at word granularity, so its useful fraction sits
        between dissemination's ~100% and the central barrier's.)"""
        tb = run_barrier_workload(cfg(16, Protocol.PU), "tb",
                                  episodes=80).result.updates
        cb = run_barrier_workload(cfg(16, Protocol.PU), "cb",
                                  episodes=80).result.updates
        tb_frac = tb["useful"] / tb["total"]
        cb_frac = cb["useful"] / cb["total"]
        assert tb_frac >= 0.45
        assert tb_frac > cb_frac

    def test_dissemination_wi_misses_dominated_by_true_sharing(self):
        res = run_barrier_workload(cfg(16, Protocol.WI), "db",
                                   episodes=80)
        misses = res.result.misses
        assert misses["true"] > misses["total"] / 2


class TestReductionShapes:
    """Section 4.3."""

    def test_parallel_beats_sequential_under_wi(self):
        P = 32
        sr = reduction_lat(P, Protocol.WI, "sr")
        pr = reduction_lat(P, Protocol.WI, "pr")
        assert pr < sr

    def test_sequential_beats_parallel_under_update(self):
        P = 32
        for proto in (Protocol.PU, Protocol.CU):
            sr = reduction_lat(P, proto, "sr")
            pr = reduction_lat(P, proto, "pr")
            assert sr < pr, proto

    def test_update_sequential_beats_wi_parallel(self):
        """'update-based sequential reductions always exhibit better
        performance than parallel reductions under WI'."""
        for P in (8, 16, 32):
            sr_u = reduction_lat(P, Protocol.PU, "sr")
            pr_i = reduction_lat(P, Protocol.WI, "pr")
            assert sr_u < pr_i, P

    def test_reduction_updates_large_useful_fraction(self):
        """'both parallel and sequential reductions exhibit a large
        percentage of useful updates'."""
        res = run_reduction_workload(cfg(16, Protocol.PU), "sr",
                                     iterations=60)
        upd = res.result.updates
        assert upd["useful"] >= 0.3 * upd["total"]

    def test_imbalance_makes_parallel_competitive(self):
        """'parallel reductions become more efficient than their
        sequential counterparts' under load imbalance ... 'but still
        parallel reductions with PU and CU perform better than parallel
        reductions with WI'."""
        P = 16
        pr_u = reduction_lat(P, Protocol.PU, "pr", imbalance=True)
        pr_i = reduction_lat(P, Protocol.WI, "pr", imbalance=True)
        assert pr_u < pr_i
