"""Integration tests for repro.cluster: the ISSUE acceptance bar.

Everything runs in one event loop: K shard-aware gateways on free
ports plus one router in front, so shard death can be simulated by
closing a gateway's listener and the cross-shard counters can be
asserted white-box.  Covers:

* a 3-shard sweep whose merged stream is bit-identical (full
  ``RunRecord`` equality, deterministic spec order) to a direct
  ``CampaignRunner`` run of the same points;
* cross-shard single-flight: a duplicate-key sweep spanning shards
  executes each unique spec exactly once cluster-wide, with the
  router's dedup counter asserted;
* misrouted keys answered (not 404'd) and counted by the wrong shard;
* ``/v1/result`` fallback finding a key cached on a non-owner shard;
* shard death mid-traffic: requests fail over (bounded retry + ring
  rehash) with zero client-visible errors, sweeps replan onto the
  survivors, and recovery re-adds the shard.
"""

import asyncio
import json

import pytest

from repro.campaign import CampaignRunner, RunRecord
from repro.cluster import Router, RouterConfig, ShardEndpoint
from repro.cluster.ring import HashRing
from repro.config import ExperimentScale
from repro.experiments.figures import figure_points
from repro.service import Gateway, ServiceConfig
from repro.service.loadgen import HttpClient

SCALE = 0.002       # tiny but nonzero simulations (~10ms each)
SHARDS = 3


def spec_body(spec, label=None) -> dict:
    body = spec.to_jsonable()
    if label is not None:
        body["label"] = label
    return body


def cluster(test_coro, tmp_path=None, shards=SHARDS, jobs=1,
            probe_interval_s=0.1, timeout=240):
    """Boot ``shards`` gateways + a router; run ``test_coro(ctx)``.

    ``ctx`` exposes ``router``, ``gateways`` (shard id -> Gateway) and
    a keep-alive ``client`` pointed at the router.
    """
    class Ctx:
        pass

    async def go():
        ids = tuple(f"shard-{i}" for i in range(shards))
        gateways = {}
        for sid in ids:
            cache_dir = (str(tmp_path / sid)
                         if tmp_path is not None else None)
            gateways[sid] = Gateway(ServiceConfig(
                port=0, jobs=jobs, quiet=True, cache_dir=cache_dir,
                shard_id=sid, shard_peers=ids))
        for gw in gateways.values():
            # fork every worker pool before ANY listener exists: a
            # worker forked after a sibling gateway is up would inherit
            # that sibling's listening fd and keep its port half-alive
            # after the sibling stops (separate processes in the real
            # supervisor, so only this in-process harness must care)
            gw.scheduler.warm()
        for gw in gateways.values():
            await gw.start()
        router = Router(RouterConfig(
            shards=tuple(ShardEndpoint(sid, "127.0.0.1", gw.port)
                         for sid, gw in gateways.items()),
            port=0, probe_interval_s=probe_interval_s,
            probe_timeout_s=1.0, backoff_s=0.02, quiet=True))
        await router.start()

        ctx = Ctx()
        ctx.router = router
        ctx.gateways = gateways
        ctx.client = HttpClient("127.0.0.1", router.port)
        try:
            await asyncio.wait_for(test_coro(ctx), timeout)
        finally:
            await ctx.client.close()
            await asyncio.wait_for(router.stop(), 30)
            for gw in gateways.values():
                await asyncio.wait_for(gw.stop(), 30)
    asyncio.run(go())


def sweep_events(body: bytes):
    return [json.loads(line) for line in body.splitlines()]


def executed_cluster_wide(gateways) -> float:
    return sum(
        gw.registry.get("repro_specs_total").value(status="executed")
        for gw in gateways.values())


class TestBitIdentity:
    def test_three_shard_sweep_equals_direct_campaign(self, tmp_path):
        """The acceptance criterion: the merged cluster stream yields
        records equal (full RunRecord equality, which covers metrics
        and the complete simulation result) to a direct CampaignRunner
        run, in deterministic spec order."""
        points = figure_points(
            "fig9", scale=ExperimentScale.scaled(SCALE), P=2)
        direct = CampaignRunner(jobs=1).run(
            [pt.spec for pt in points]).records

        async def check(ctx):
            status, _, body = await ctx.client.request(
                "POST", "/v1/sweep",
                json.dumps({"figure": "fig9", "scale": SCALE,
                            "procs": 2,
                            "full_records": True}).encode())
            assert status == 200
            events = sweep_events(body)
            assert events[0]["event"] == "start"
            assert events[1]["event"] == "plan"
            assert len(events[1]["shards"]) > 1, \
                "sweep must actually span shards"
            specs = [e for e in events if e["event"] == "spec"]
            assert [e["index"] for e in specs] == \
                list(range(len(points))), "global spec order"
            for event, point, expected in zip(specs, points, direct):
                assert event["key"] == point.spec.key
                assert event["label"] == point.label
                served = RunRecord.from_jsonable(event["record"])
                assert served == expected
                assert served.sim == expected.sim
            table = [e for e in events if e["event"] == "table"]
            assert len(table) == 1 and table[0]["figure"] == "fig9"
            done = events[-1]
            assert done["event"] == "done" and done["ok"]
            assert done["unresolved"] == 0

        cluster(check, tmp_path=tmp_path)

    def test_merged_stream_is_deterministic(self, tmp_path):
        """Two identical sweeps produce identical event sequences
        (modulo the cached flag and elapsed time)."""
        req = json.dumps({"figure": "fig9", "scale": SCALE,
                          "procs": 2}).encode()

        async def check(ctx):
            runs = []
            for _ in range(2):
                status, _, body = await ctx.client.request(
                    "POST", "/v1/sweep", req)
                assert status == 200
                specs = [e for e in sweep_events(body)
                         if e["event"] == "spec"]
                runs.append([(e["index"], e["key"], e["label"],
                              tuple(sorted(e["metrics"].items())))
                             for e in specs])
            assert runs[0] == runs[1]

        cluster(check, tmp_path=tmp_path)


class TestCrossShardSingleFlight:
    def test_duplicate_key_sweep_executes_each_spec_once(self,
                                                         tmp_path):
        """A sweep repeating every spec 3x across the shard split
        executes each unique spec exactly once cluster-wide; the
        router's dedup counter records the collapsed duplicates."""
        points = figure_points(
            "fig9", scale=ExperimentScale.scaled(SCALE), P=2)
        specs = [spec_body(pt.spec, pt.label) for pt in points] * 3

        async def check(ctx):
            status, _, body = await ctx.client.request(
                "POST", "/v1/sweep",
                json.dumps({"specs": specs}).encode())
            assert status == 200
            events = sweep_events(body)
            plan = events[1]
            assert plan["unique"] == len(points)
            assert plan["duplicates"] == 2 * len(points)
            spec_events = [e for e in events if e["event"] == "spec"]
            assert len(spec_events) == len(specs)
            # duplicates carry their primary's result
            by_key = {}
            for e in spec_events:
                by_key.setdefault(e["key"], []).append(e["metrics"])
            for key, metrics in by_key.items():
                assert len(metrics) == 3
                assert metrics[0] == metrics[1] == metrics[2]
            # the cluster-wide execution count is the unique count
            assert executed_cluster_wide(ctx.gateways) == len(points)
            dedup = ctx.router.registry.get(
                "repro_router_sweep_dedup_total")
            assert dedup.total() == 2 * len(points)

        cluster(check, tmp_path=tmp_path)

    def test_warm_rerun_executes_nothing(self, tmp_path):
        req = json.dumps({"figure": "fig9", "scale": SCALE,
                          "procs": 2}).encode()

        async def check(ctx):
            for expect_cached in (0, 9):
                status, _, body = await ctx.client.request(
                    "POST", "/v1/sweep", req)
                assert status == 200
                done = sweep_events(body)[-1]
                assert done["cached"] == expect_cached
            assert executed_cluster_wide(ctx.gateways) == 9

        cluster(check, tmp_path=tmp_path)


class TestMisroutedKeys:
    def test_wrong_shard_answers_and_counts(self, tmp_path):
        """A replica receiving a key it does not own (stale ring view
        upstream) serves it and bumps the misrouted counter."""
        points = figure_points(
            "fig9", scale=ExperimentScale.scaled(SCALE), P=2)

        async def check(ctx):
            ids = tuple(ctx.gateways)
            ring = HashRing(ids)
            point = points[0]
            wrong = next(sid for sid in ids
                         if sid != ring.owner(point.spec.key))
            gw = ctx.gateways[wrong]
            direct = HttpClient("127.0.0.1", gw.port)
            try:
                status, _, body = await direct.request(
                    "POST", "/v1/run",
                    json.dumps(spec_body(point.spec)).encode())
            finally:
                await direct.close()
            assert status == 200, "misrouted key must be served"
            assert json.loads(body)["key"] == point.spec.key
            counter = gw.registry.get("repro_misrouted_requests_total")
            assert counter.total() == 1

        cluster(check, tmp_path=tmp_path)

    def test_result_found_on_non_owner_shard(self, tmp_path):
        """/v1/result falls back across shards: a record cached on the
        'wrong' replica is still found through the router."""
        points = figure_points(
            "fig9", scale=ExperimentScale.scaled(SCALE), P=2)

        async def check(ctx):
            ids = tuple(ctx.gateways)
            ring = HashRing(ids)
            point = points[0]
            wrong = next(sid for sid in ids
                         if sid != ring.owner(point.spec.key))
            gw = ctx.gateways[wrong]
            direct = HttpClient("127.0.0.1", gw.port)
            try:
                status, _, _ = await direct.request(
                    "POST", "/v1/run",
                    json.dumps(spec_body(point.spec)).encode())
                assert status == 200
            finally:
                await direct.close()
            status, _, body = await ctx.client.request(
                "GET", f"/v1/result/{point.spec.key}")
            assert status == 200
            assert json.loads(body)["key"] == point.spec.key

        cluster(check, tmp_path=tmp_path)


class TestFailover:
    def test_run_survives_shard_death(self, tmp_path):
        """Kill the owner of a key (close its listener + scheduler)
        and the router serves the key from a surviving shard via
        mark-down + ring rehash, with no client-visible error."""
        points = figure_points(
            "fig9", scale=ExperimentScale.scaled(SCALE), P=2)

        async def check(ctx):
            victim_id = ctx.router._live_ring.owner(
                points[0].spec.key)
            await ctx.gateways[victim_id].stop()
            for point in points:
                status, _, body = await ctx.client.request(
                    "POST", "/v1/run",
                    json.dumps(spec_body(point.spec)).encode())
                assert status == 200, point.label
            assert victim_id not in ctx.router.live_shards()
            markdowns = ctx.router.registry.get(
                "repro_router_shard_markdowns_total")
            assert markdowns.value(shard_id=victim_id) >= 1

        # long probe interval: mark-down must come from the request
        # path (connection-refused), not the prober
        cluster(check, tmp_path=tmp_path, probe_interval_s=30.0)

    def test_sweep_replans_onto_survivors(self, tmp_path):
        """A sweep planned while the router still believes a dead
        shard is live resolves every spec: the dead shard's batch
        fails, gets replanned onto the surviving shards, and the
        merged stream stays complete and ordered."""
        async def check(ctx):
            victim_id = next(iter(ctx.gateways))
            await ctx.gateways[victim_id].stop()
            status, _, body = await ctx.client.request(
                "POST", "/v1/sweep",
                json.dumps({"figure": "fig9", "scale": SCALE,
                            "procs": 2}).encode())
            assert status == 200
            events = sweep_events(body)
            specs = [e for e in events if e["event"] == "spec"]
            assert [e["index"] for e in specs] == list(range(9))
            done = events[-1]
            assert done["ok"] and done["unresolved"] == 0

        cluster(check, tmp_path=tmp_path, probe_interval_s=30.0)

    def test_prober_marks_down_and_recovers(self, tmp_path):
        async def check(ctx):
            victim_id = next(iter(ctx.gateways))
            victim = ctx.gateways[victim_id]
            # simulate a hung-then-killed replica: close the listener
            # without a full drain so it can come back afterwards
            victim._server.close()
            await victim._server.wait_closed()
            for _ in range(100):
                # pooled keep-alive connections outlive the listener;
                # drop them so probes must dial (and get refused)
                await ctx.router._states[victim_id].pool.close()
                if victim_id not in ctx.router.live_shards():
                    break
                await asyncio.sleep(0.1)
            assert victim_id not in ctx.router.live_shards()

            status, _, body = await ctx.client.request(
                "GET", "/readyz")
            assert status == 200, "quorum of shards still live"
            assert victim_id not in json.loads(body)["live_shards"]

            victim._server = await asyncio.start_server(
                victim._on_connection, "127.0.0.1", victim.port)
            for _ in range(100):
                if victim_id in ctx.router.live_shards():
                    break
                await asyncio.sleep(0.1)
            assert victim_id in ctx.router.live_shards()

        cluster(check, tmp_path=tmp_path, probe_interval_s=0.05)


class TestRouterEndpoints:
    def test_health_ready_metrics_and_errors(self, tmp_path):
        async def check(ctx):
            status, _, body = await ctx.client.request(
                "GET", "/healthz")
            assert status == 200
            doc = json.loads(body)
            assert doc["ring_shards"] == SHARDS
            assert all(s["up"] for s in doc["shards"].values())

            status, _, body = await ctx.client.request("GET", "/readyz")
            assert status == 200

            # aggregated metrics: router series + per-shard series
            status, _, body = await ctx.client.request(
                "GET", "/metrics")
            assert status == 200
            text = body.decode()
            assert "repro_router_requests_total" in text
            for sid in ctx.gateways:
                assert f'shard_id="{sid}"' in text
            # HELP/TYPE appear once per metric despite K shard copies
            assert text.count(
                "# HELP repro_requests_total") == 1

            for method, path, payload, expected in [
                ("POST", "/v1/run", b"{nope", 400),
                ("POST", "/v1/run",
                 json.dumps({"workload": "lok"}).encode(), 400),
                ("GET", "/v1/result/zzz", None, 400),
                ("GET", "/v1/result/" + "0" * 64, None, 404),
                ("GET", "/nope", None, 404),
                ("DELETE", "/healthz", None, 405),
            ]:
                status, _, resp = await ctx.client.request(
                    method, path, payload)
                assert status == expected, (path, status)
                assert "error" in json.loads(resp)

        cluster(check, tmp_path=tmp_path)

    def test_draining_router_rejects_new_work(self, tmp_path):
        async def check(ctx):
            ctx.router._draining = True   # white-box: flag only
            status, headers, _ = await ctx.client.request(
                "POST", "/v1/run", json.dumps(
                    {"workload": "lock", "config": {}}).encode())
            assert status == 503
            assert "retry-after" in headers
            status, _, _ = await ctx.client.request("GET", "/readyz")
            assert status == 503
            ctx.router._draining = False

        cluster(check, tmp_path=tmp_path)
