"""Tests for the trace-driven front end."""

import pytest

from repro.config import MachineConfig, Protocol
from repro.isa.ops import Compute, Fence, FetchAdd, Read, SpinUntil, Write
from repro.runtime import Machine
from repro.tracefe import (
    TraceOp, TraceRecord, capture_program, format_trace, parse_trace,
    run_trace, trace_program,
)

from tests.conftest import make_machine


class TestFormat:
    def test_roundtrip(self):
        records = [
            TraceRecord(0, TraceOp.READ, 0x40),
            TraceRecord(0, TraceOp.WRITE, 0x40, 7),
            TraceRecord(1, TraceOp.ATOMIC_ADD, 0x80, 2),
            TraceRecord(1, TraceOp.COMPUTE, arg=50),
            TraceRecord(0, TraceOp.FLUSH, 0x40),
            TraceRecord(0, TraceOp.FENCE),
        ]
        assert parse_trace(format_trace(records)) == records

    def test_comments_and_blanks(self):
        text = """
        # a comment
        0 R 0x40   # trailing comment

        1 W 64 5
        """
        records = parse_trace(text)
        assert len(records) == 2
        assert records[1] == TraceRecord(1, TraceOp.WRITE, 64, 5)

    def test_bad_lines_rejected(self):
        for bad in ("0 X 0x40", "R 0x40", "0 W", "zero R 0x40"):
            with pytest.raises(ValueError):
                parse_trace(bad)

    def test_hex_and_decimal_addresses(self):
        assert parse_trace("0 R 0x40")[0].addr == 64
        assert parse_trace("0 R 64")[0].addr == 64


class TestReplay:
    def test_simple_trace_runs(self, protocol):
        text = """
        0 W 0x0 5
        0 B
        1 R 0x0
        1 C 20
        0 A 0x40 1
        1 A 0x40 1
        """
        cfg = MachineConfig(num_procs=2, protocol=protocol)
        result, machine = run_trace(cfg, parse_trace(text))
        assert result.total_cycles > 0
        word = machine.config.word_of(0x40)
        home = machine.memmap.home_of(0x40)
        # the two fetch_and_adds happened (value in memory or a cache)
        from repro.memsys.cache import CacheState
        vals = [machine.controllers[home].mem.read_word(word)]
        for c in machine.controllers:
            line = c.cache.lookup(machine.config.block_of(0x40))
            if line is not None:
                vals.append(line.data.get(word, 0))
        assert 2 in vals

    def test_trace_outside_machine_rejected(self, protocol):
        cfg = MachineConfig(num_procs=2, protocol=protocol)
        with pytest.raises(ValueError, match="outside"):
            run_trace(cfg, [TraceRecord(5, TraceOp.READ, 0)])

    def test_idle_nodes_allowed(self, protocol):
        cfg = MachineConfig(num_procs=4, protocol=protocol)
        result, _ = run_trace(cfg, [TraceRecord(2, TraceOp.READ, 0)])
        assert result.total_cycles > 0

    def test_same_trace_same_protocol_deterministic(self, protocol):
        text = "\n".join(f"{n} W {64 * n + 4 * i:#x} {i}"
                         for n in range(3) for i in range(5))
        cfg = MachineConfig(num_procs=3, protocol=protocol)
        r1, _ = run_trace(cfg, parse_trace(text))
        r2, _ = run_trace(cfg, parse_trace(text))
        assert r1.total_cycles == r2.total_cycles
        assert r1.misses == r2.misses


class TestCapture:
    def test_capture_then_replay_matches_traffic(self, protocol):
        """A captured program replayed as a trace produces the same
        classified traffic as the original run."""
        def build(run_captured):
            cfg = MachineConfig(num_procs=2, protocol=protocol)
            m = Machine(cfg, max_events=500_000)
            a = m.memmap.alloc_word(0, "a")
            b = m.memmap.alloc_word(1, "b")

            def prog(node):
                for i in range(4):
                    yield Write(a if node == 0 else b, node * 10 + i)
                    yield Read(b if node == 0 else a)
                    yield Compute(5)
                yield Fence()

            if not run_captured:
                m.spawn(0, prog(0))
                m.spawn(1, prog(1))
                return m.run()
            wrapped0, rec0 = capture_program(0, prog(0))
            wrapped1, rec1 = capture_program(1, prog(1))
            m.spawn(0, wrapped0)
            m.spawn(1, wrapped1)
            m.run()
            # replay the captured trace on a fresh machine
            cfg2 = MachineConfig(num_procs=2, protocol=protocol)
            result, _ = run_trace(cfg2, rec0 + rec1)
            return result

        direct = build(run_captured=False)
        replayed = build(run_captured=True)
        assert direct.misses == replayed.misses
        assert direct.updates == replayed.updates
        assert direct.total_cycles == replayed.total_cycles

    def test_capture_rejects_spin(self, protocol):
        m = make_machine(1, protocol)
        addr = m.memmap.alloc_word(0)

        def prog():
            yield SpinUntil(addr, lambda v: v == 1)

        wrapped, _ = capture_program(0, prog())
        m.spawn(0, wrapped)
        with pytest.raises(ValueError, match="cannot capture"):
            m.run()

    def test_capture_preserves_results(self, protocol):
        m = make_machine(1, protocol)
        addr = m.memmap.alloc_word(0, init=10)
        got = []

        def prog():
            v = yield Read(addr)
            got.append(v)
            old = yield FetchAdd(addr, 5)
            got.append(old)

        wrapped, records = capture_program(0, prog())
        m.spawn(0, wrapped)
        m.run()
        assert got == [10, 10]
        assert [r.op for r in records] == [TraceOp.READ,
                                           TraceOp.ATOMIC_ADD]


class TestJsonShape:
    """The JSON wire shape of traces (consumed by service clients)."""

    RECORDS = [
        TraceRecord(0, TraceOp.READ, 0x40),
        TraceRecord(0, TraceOp.WRITE, 0x40, 7),
        TraceRecord(1, TraceOp.ATOMIC_ADD, 0x80, 2),
        TraceRecord(1, TraceOp.COMPUTE, arg=50),
        TraceRecord(0, TraceOp.FLUSH, 0x40),
        TraceRecord(0, TraceOp.FENCE),
    ]

    def test_record_shape(self):
        blob = TraceRecord(1, TraceOp.WRITE, 0x40, 7).to_jsonable()
        assert blob == {"node": 1, "op": "W", "addr": 0x40, "arg": 7}

    def test_list_round_trip_through_json(self):
        import json as _json

        from repro.tracefe import trace_from_jsonable, trace_to_jsonable

        wire = _json.loads(_json.dumps(trace_to_jsonable(self.RECORDS)))
        assert trace_from_jsonable(wire) == self.RECORDS

    def test_shape_is_strict_json(self):
        from repro.tracefe import trace_to_jsonable

        for item in trace_to_jsonable(self.RECORDS):
            assert set(item) == {"node", "op", "addr", "arg"}
            assert isinstance(item["node"], int)
            assert isinstance(item["op"], str)
            assert isinstance(item["addr"], int)
            assert isinstance(item["arg"], int)

    def test_from_jsonable_defaults(self):
        from repro.tracefe import trace_from_jsonable

        records = trace_from_jsonable([{"node": 0, "op": "B"}])
        assert records == [TraceRecord(0, TraceOp.FENCE)]

    def test_bad_op_rejected(self):
        from repro.tracefe import trace_from_jsonable

        with pytest.raises(ValueError):
            trace_from_jsonable([{"node": 0, "op": "Z"}])
