"""Integration tests for locks, barriers, reductions and ideal sync,
run under every coherence protocol."""

import pytest

from repro.config import Protocol
from repro.isa.ops import Compute, Read, Write
from repro.sync import (
    IdealBarrier, IdealLock, MCSLock, ParallelReduction,
    SequentialReduction, TicketLock, UpdateConsciousMCSLock, make_barrier,
    make_lock, make_reduction,
)
from repro.workloads.reductions import local_value

from tests.conftest import make_machine, run_programs

LOCK_CLASSES = [TicketLock, MCSLock, UpdateConsciousMCSLock]
BARRIER_KINDS = ["cb", "db", "tb"]


@pytest.fixture(params=LOCK_CLASSES, ids=lambda c: c.name)
def lock_cls(request):
    return request.param


class TestLockMutualExclusion:
    @pytest.mark.parametrize("P", [2, 5, 8])
    def test_mutual_exclusion_and_progress(self, protocol, lock_cls, P):
        m = make_machine(P, protocol)
        lock = lock_cls(m)
        state = {"in_cs": 0, "peak": 0, "done": 0}
        shared = m.memmap.alloc_word(0)

        def prog(node):
            for _ in range(4):
                token = yield from lock.acquire(node)
                state["in_cs"] += 1
                state["peak"] = max(state["peak"], state["in_cs"])
                v = yield Read(shared)
                yield Compute(15)
                yield Write(shared, v + 1)
                state["in_cs"] -= 1
                state["done"] += 1
                yield from lock.release(node, token)

        m.spawn_all(prog)
        m.run()
        assert state["peak"] == 1
        assert state["done"] == 4 * P

    def test_critical_section_counter_is_exact(self, protocol, lock_cls):
        """The shared counter incremented under the lock must equal the
        total number of critical sections (no lost updates)."""
        P = 6
        m = make_machine(P, protocol)
        lock = lock_cls(m)
        shared = m.memmap.alloc_word(0)
        finals = []

        def prog(node):
            last = 0
            for _ in range(5):
                token = yield from lock.acquire(node)
                v = yield Read(shared)
                yield Write(shared, v + 1)
                last = v + 1
                yield from lock.release(node, token)
            finals.append(last)

        m.spawn_all(prog)
        m.run()
        assert max(finals) == 5 * P


class TestLockSemantics:
    def test_ticket_lock_is_fifo(self, protocol):
        """Tickets are served in ticket order."""
        m = make_machine(4, protocol)
        lock = TicketLock(m)
        order = []

        def prog(node):
            token = yield from lock.acquire(node)
            order.append(token)
            yield Compute(30)
            yield from lock.release(node, token)

        m.spawn_all(prog)
        m.run()
        assert order == sorted(order)

    def test_mcs_queue_is_fifo(self, protocol):
        """Once queued, MCS hands the lock over in queue order."""
        m = make_machine(6, protocol)
        lock = MCSLock(m)
        entered = []

        def prog(node):
            yield Compute(node * 500)    # stagger arrivals clearly
            tok = yield from lock.acquire(node)
            entered.append(node)
            yield Compute(2000)          # force everyone to queue
            yield from lock.release(node, tok)

        m.spawn_all(prog)
        m.run()
        assert entered == sorted(entered)

    def test_uncontended_acquire_is_cheap(self, protocol, lock_cls):
        m = make_machine(2, protocol)
        lock = lock_cls(m)
        times = {}

        def prog(node):
            t0 = m.sim.now
            tok = yield from lock.acquire(node)
            yield from lock.release(node, tok)
            times["first"] = m.sim.now - t0
            t0 = m.sim.now
            tok = yield from lock.acquire(node)
            yield from lock.release(node, tok)
            times["second"] = m.sim.now - t0

        def other(node):
            yield Compute(1)

        run_programs(m, prog(0), other(1))
        # warm acquire/release should be well under a miss-storm
        assert times["second"] < 400

    def test_uc_mcs_flushes_reduce_updates_under_pu(self):
        """The update-conscious MCS lock must generate fewer update
        messages than the standard MCS lock (the paper's 39% claim,
        qualitatively)."""
        results = {}
        for cls in (MCSLock, UpdateConsciousMCSLock):
            m = make_machine(8, Protocol.PU)
            lock = cls(m)

            def prog(node, lock=lock):
                for _ in range(12):
                    tok = yield from lock.acquire(node)
                    yield Compute(20)
                    yield from lock.release(node, tok)
                    yield Compute((node * 37) % 150)

            m.spawn_all(prog)
            r = m.run()
            results[cls.name] = r.updates["total"]
        assert results["uc"] < results["MCS"]


class TestBarriers:
    @pytest.mark.parametrize("kind", BARRIER_KINDS)
    @pytest.mark.parametrize("P", [1, 2, 5, 8, 16])
    def test_no_thread_runs_ahead(self, protocol, kind, P):
        m = make_machine(P, protocol)
        bar = make_barrier(kind, m)
        phase = [0] * P
        bad = []

        def prog(node):
            for ep in range(5):
                phase[node] = ep
                yield from bar.wait(node)
                if min(phase) < ep:
                    bad.append((node, ep, list(phase)))

        m.spawn_all(prog)
        m.run()
        assert not bad

    @pytest.mark.parametrize("kind", BARRIER_KINDS)
    def test_skewed_arrivals(self, protocol, kind):
        """Barriers must work when arrival times are wildly uneven."""
        P = 7
        m = make_machine(P, protocol)
        bar = make_barrier(kind, m)
        out = []

        def prog(node):
            for ep in range(3):
                yield Compute(node * 700 + ep * 13)
                yield from bar.wait(node)
                out.append((ep, node))

        m.spawn_all(prog)
        m.run()
        # all episode-0 exits precede all episode-1 exits, etc.
        eps = [ep for ep, _ in out]
        assert eps == sorted(eps)

    @pytest.mark.parametrize("kind", BARRIER_KINDS)
    def test_data_visibility_across_barrier(self, protocol, kind):
        """Writes before a barrier are visible after it."""
        P = 4
        m = make_machine(P, protocol)
        bar = make_barrier(kind, m)
        slots = [m.memmap.alloc_word(i) for i in range(P)]

        def prog(node):
            yield Write(slots[node], node + 100)
            yield from bar.wait(node)
            for i in range(P):
                v = yield Read(slots[i])
                assert v == i + 100, (node, i, v)

        m.spawn_all(prog)
        m.run()

    def test_central_barrier_counter_resets(self, protocol):
        m = make_machine(3, protocol)
        bar = make_barrier("cb", m)

        def prog(node):
            for _ in range(4):
                yield from bar.wait(node)

        m.spawn_all(prog)
        m.run()
        word = m.config.word_of(bar.count)
        home = m.memmap.home_of(bar.count)
        assert m.controllers[home].mem.read_word(word) == 3 or \
            any(c.cache.contains(m.config.block_of(bar.count))
                and c.cache.read_word(m.config.block_of(bar.count),
                                      word) == 3
                for c in m.controllers)


class TestIdealSync:
    def test_ideal_lock_mutual_exclusion_and_fifo(self, protocol):
        m = make_machine(4, protocol)
        lock = IdealLock(m)
        state = {"in": 0, "peak": 0}

        def prog(node):
            for _ in range(3):
                yield from lock.acquire(node)
                state["in"] += 1
                state["peak"] = max(state["peak"], state["in"])
                yield Compute(25)
                state["in"] -= 1
                yield from lock.release(node)

        m.spawn_all(prog)
        r = m.run()
        assert state["peak"] == 1
        assert len(lock.grant_log) == 12

    def test_ideal_lock_generates_no_traffic(self, protocol):
        m = make_machine(4, protocol)
        lock = IdealLock(m)

        def prog(node):
            for _ in range(3):
                yield from lock.acquire(node)
                yield Compute(10)
                yield from lock.release(node)

        m.spawn_all(prog)
        r = m.run()
        assert r.network.messages == 0

    def test_ideal_barrier_synchronizes_without_traffic(self, protocol):
        m = make_machine(5, protocol)
        bar = IdealBarrier(m)
        phase = [0] * 5
        bad = []

        def prog(node):
            for ep in range(4):
                phase[node] = ep
                yield Compute(node * 97)
                yield from bar.wait(node)
                if min(phase) < ep:
                    bad.append(node)

        m.spawn_all(prog)
        r = m.run()
        assert not bad
        assert bar.episodes == 4
        assert r.network.messages == 0

    def test_ideal_lock_release_unheld_raises(self, protocol):
        m = make_machine(1, protocol)
        lock = IdealLock(m)

        def prog(node):
            yield from lock.release(node)

        m.spawn(0, prog(0))
        with pytest.raises(RuntimeError):
            m.run()


class TestReductions:
    def test_parallel_reduction_computes_max(self, protocol):
        P = 6
        m = make_machine(P, protocol)
        red = ParallelReduction(m, IdealLock(m), IdealBarrier(m))
        got = []

        def prog(node):
            for it in range(3):
                v = local_value(node, it)
                result = yield from red.reduce(node, v)
                got.append((it, node, result))

        m.spawn_all(prog)
        m.run()
        for it in range(3):
            expected = max(local_value(n, j)
                           for n in range(P) for j in range(it + 1))
            for e, node, result in got:
                if e == it:
                    assert result == expected

    @pytest.mark.parametrize("padded", [True, False])
    def test_sequential_reduction_computes_max(self, protocol, padded):
        P = 5
        m = make_machine(P, protocol)
        red = SequentialReduction(m, IdealBarrier(m), padded=padded)
        got = []

        def prog(node):
            for it in range(3):
                v = local_value(node, it)
                result = yield from red.reduce(node, v)
                got.append((it, result))

        m.spawn_all(prog)
        m.run()
        for it, result in got:
            expected = max(local_value(n, j)
                           for n in range(P) for j in range(it + 1))
            assert result == expected

    def test_make_reduction_factory(self, protocol):
        m = make_machine(2, protocol)
        r1 = make_reduction("sr", m, barrier=IdealBarrier(m))
        assert isinstance(r1, SequentialReduction)
        r2 = make_reduction("pr", m, lock=IdealLock(m),
                            barrier=IdealBarrier(m))
        assert isinstance(r2, ParallelReduction)
        with pytest.raises(ValueError):
            make_reduction("pr", m)
        with pytest.raises(ValueError):
            make_reduction("bogus", m, barrier=IdealBarrier(m))


class TestFactories:
    def test_make_lock(self, protocol):
        m = make_machine(2, protocol)
        assert isinstance(make_lock("tk", m), TicketLock)
        assert isinstance(make_lock("MCS", m), MCSLock)
        assert isinstance(make_lock("uc", m), UpdateConsciousMCSLock)
        with pytest.raises(ValueError):
            make_lock("futex", m)

    def test_make_barrier(self, protocol):
        m = make_machine(2, protocol)
        for kind in BARRIER_KINDS:
            b = make_barrier(kind, m)
            assert b.name == kind
        with pytest.raises(ValueError):
            make_barrier("combining", m)
