"""Smoke tests: every shipped example must run to completion.

Examples double as end-to-end exercises of the public API; each is run
in-process (fast variants where available) and its output sanity-checked.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name, argv, capsys):
    old_argv = sys.argv
    sys.argv = [name] + argv
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", [], capsys)
        assert "wi" in out and "pu" in out and "cu" in out

    def test_barnes_hut(self, capsys):
        out = run_example("barnes_hut_reduction.py", [], capsys)
        assert "use the parallel reduction" in out
        assert "use the sequential reduction" in out

    def test_barrier_scaling_fast(self, capsys):
        out = run_example("barrier_scaling.py", ["--fast"], capsys)
        assert "dissemination" in out
        assert "faster than" in out

    def test_lock_contention_fast(self, capsys):
        out = run_example("lock_contention_study.py", ["--fast"], capsys)
        assert "Best combination per scenario" in out

    def test_hybrid_machine(self, capsys):
        out = run_example("hybrid_machine.py", [], capsys)
        assert "Winner:" in out
        assert "traffic matrix" in out

    def test_apps_tour(self, capsys):
        out = run_example("apps_tour.py", [], capsys)
        assert "Application kernels" in out
        assert "processor timeline" in out

    @pytest.mark.slow
    def test_protocol_advisor(self, capsys):
        out = run_example("protocol_advisor.py", ["--procs", "4"], capsys)
        assert "Recommendations:" in out
