"""Integration tests for the synthetic workloads and their metrics."""

import pytest

from repro.config import MachineConfig, Protocol
from repro.workloads import (
    run_barrier_workload, run_lock_workload, run_reduction_workload,
    local_value,
)
from repro.workloads.reductions import VALUE_BAND


def cfg(P=4, protocol=Protocol.WI, **kw):
    return MachineConfig(num_procs=P, protocol=protocol, **kw)


class TestLockWorkload:
    def test_total_acquires_rounded_to_multiple_of_p(self, protocol):
        res = run_lock_workload(cfg(4, protocol), "tk", total_acquires=10)
        assert res.total_acquires == 8  # 2 iters x 4 procs

    def test_latency_metric_definition(self, protocol):
        res = run_lock_workload(cfg(2, protocol), "tk",
                                total_acquires=20, hold_cycles=50)
        expected = res.result.total_cycles / res.total_acquires - 50
        assert res.avg_latency == expected
        assert res.avg_latency > 0

    @pytest.mark.parametrize("kind", ["tk", "MCS", "uc"])
    def test_all_lock_kinds_run(self, protocol, kind):
        res = run_lock_workload(cfg(4, protocol), kind, total_acquires=16)
        assert res.result.total_cycles > 0

    def test_delay_modes(self, protocol):
        base = run_lock_workload(cfg(4, protocol), "tk",
                                 total_acquires=16, delay_mode="none",
                                 jitter_cycles=0)
        rand = run_lock_workload(cfg(4, protocol), "tk",
                                 total_acquires=16, delay_mode="random",
                                 jitter_cycles=0)
        prop = run_lock_workload(cfg(4, protocol), "tk",
                                 total_acquires=16,
                                 delay_mode="proportional",
                                 jitter_cycles=0)
        # extra out-of-CS work extends total runtime
        assert rand.result.total_cycles > base.result.total_cycles
        assert prop.result.total_cycles > base.result.total_cycles

    def test_unknown_delay_mode(self, protocol):
        with pytest.raises(ValueError):
            run_lock_workload(cfg(2, protocol), "tk", total_acquires=4,
                              delay_mode="bogus")

    def test_seed_changes_jitter_schedule(self):
        a = run_lock_workload(cfg(4), "tk", total_acquires=16, seed=1)
        b = run_lock_workload(cfg(4), "tk", total_acquires=16, seed=2)
        # different seeds -> different interleavings (almost surely)
        assert a.result.total_cycles != b.result.total_cycles

    def test_single_processor_no_contention(self, protocol):
        res = run_lock_workload(cfg(1, protocol), "tk", total_acquires=8)
        # uncontended acquire+release should be far below contended
        assert res.avg_latency < 500


class TestBarrierWorkload:
    @pytest.mark.parametrize("kind", ["cb", "db", "tb"])
    def test_all_barrier_kinds_run(self, protocol, kind):
        res = run_barrier_workload(cfg(4, protocol), kind, episodes=5)
        assert res.episodes == 5
        assert res.avg_latency == res.result.total_cycles / 5

    def test_latency_grows_with_processors(self, protocol):
        small = run_barrier_workload(cfg(2, protocol), "cb", episodes=10)
        big = run_barrier_workload(cfg(16, protocol), "cb", episodes=10)
        assert big.avg_latency > small.avg_latency

    def test_single_processor_barrier(self, protocol):
        # P=1: dissemination has zero rounds (a no-op); the others
        # still touch their flags
        res = run_barrier_workload(cfg(1, protocol), "db", episodes=5)
        assert res.result.total_cycles >= 0
        res = run_barrier_workload(cfg(1, protocol), "cb", episodes=5)
        assert res.result.total_cycles > 0


class TestReductionWorkload:
    @pytest.mark.parametrize("kind", ["sr", "pr"])
    def test_reductions_run_and_verify_internally(self, protocol, kind):
        # the workload itself asserts result >= own value each episode
        res = run_reduction_workload(cfg(4, protocol), kind, iterations=6)
        assert res.iterations == 6
        assert res.avg_latency > 0

    def test_imbalance_variant(self, protocol):
        res = run_reduction_workload(cfg(4, protocol), "pr", iterations=6,
                                     imbalance=True)
        assert res.result.total_cycles > 0

    def test_unknown_kind(self, protocol):
        with pytest.raises(ValueError):
            run_reduction_workload(cfg(2, protocol), "xx", iterations=2)

    def test_contiguous_layout_variant(self, protocol):
        res = run_reduction_workload(cfg(4, protocol), "sr", iterations=4,
                                     padded=False)
        assert res.result.total_cycles > 0


class TestLocalValue:
    def test_band_structure(self):
        # identical values within a band, advancing across bands
        for node in range(8):
            assert local_value(node, 0) == local_value(node, VALUE_BAND - 1)
            assert local_value(node, VALUE_BAND) > local_value(node, 0)

    def test_band_max_monotonic(self):
        P = 8
        prev = -1
        for band in range(0, 30, VALUE_BAND):
            cur = max(local_value(n, band) for n in range(P))
            assert cur > prev
            prev = cur

    def test_winner_varies_across_bands(self):
        P = 16
        winners = set()
        for band in range(0, 60, VALUE_BAND):
            vals = [local_value(n, band) for n in range(P)]
            winners.add(vals.index(max(vals)))
        assert len(winners) > 2
