"""Shared test helpers."""

from __future__ import annotations

import pytest

from repro.config import MachineConfig, Protocol
from repro.runtime import Machine

ALL_PROTOCOLS = (Protocol.WI, Protocol.PU, Protocol.CU)


def make_machine(num_procs: int = 4, protocol: Protocol = Protocol.WI,
                 max_events: int = 5_000_000, **cfg_kw) -> Machine:
    cfg = MachineConfig(num_procs=num_procs, protocol=protocol, **cfg_kw)
    return Machine(cfg, max_events=max_events)


def run_programs(machine: Machine, *programs):
    """Spawn ``programs[i]`` on node i and run to completion."""
    for node, prog in enumerate(programs):
        machine.spawn(node, prog)
    return machine.run()


@pytest.fixture(params=ALL_PROTOCOLS, ids=lambda p: p.value)
def protocol(request):
    return request.param
