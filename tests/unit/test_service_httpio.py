"""Unit tests for the service's HTTP/1.1 framing layer."""

import asyncio
import json

import pytest

from repro.service.httpio import (
    HttpError, json_response, ndjson_line, read_request, response,
    stream_head,
)


def parse(raw: bytes, max_body: int = 8 << 20):
    """Feed ``raw`` to read_request on a fresh StreamReader."""
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, max_body)
    return asyncio.run(go())


def req_bytes(method="POST", target="/v1/run", body=b"", headers=()):
    head = [f"{method} {target} HTTP/1.1", "Host: t"]
    head += [f"{k}: {v}" for k, v in headers]
    if body:
        head.append(f"Content-Length: {len(body)}")
    return ("\r\n".join(head) + "\r\n\r\n").encode() + body


class TestReadRequest:
    def test_basic_request(self):
        req = parse(req_bytes(body=b'{"a": 1}'))
        assert req.method == "POST"
        assert req.path == "/v1/run"
        assert req.body == b'{"a": 1}'
        assert req.json() == {"a": 1}

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_query_string_and_percent_decoding(self):
        req = parse(req_bytes(method="GET", target="/a%20b?x=1&y="))
        assert req.path == "/a b"
        assert req.query == {"x": "1", "y": ""}

    def test_header_keys_lowercased(self):
        req = parse(req_bytes(method="GET", target="/",
                              headers=[("X-Thing", "v")]))
        assert req.headers["x-thing"] == "v"

    def test_keep_alive_defaults(self):
        assert parse(req_bytes(method="GET", target="/")).keep_alive
        req = parse(req_bytes(method="GET", target="/",
                              headers=[("Connection", "close")]))
        assert not req.keep_alive

    def test_http10_defaults_to_close(self):
        req = parse(b"GET / HTTP/1.0\r\n\r\n")
        assert not req.keep_alive

    def test_malformed_request_line(self):
        with pytest.raises(HttpError) as err:
            parse(b"GETSPACE\r\n\r\n")
        assert err.value.status == 400

    def test_unsupported_version(self):
        with pytest.raises(HttpError) as err:
            parse(b"GET / HTTP/2.0\r\n\r\n")
        assert err.value.status == 400

    def test_body_over_limit_is_413(self):
        with pytest.raises(HttpError) as err:
            parse(req_bytes(body=b"x" * 100), max_body=10)
        assert err.value.status == 413

    def test_bad_content_length(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"
        with pytest.raises(HttpError) as err:
            parse(raw)
        assert err.value.status == 400

    def test_chunked_rejected(self):
        raw = (b"POST / HTTP/1.1\r\n"
               b"Transfer-Encoding: chunked\r\n\r\n")
        with pytest.raises(HttpError) as err:
            parse(raw)
        assert err.value.status == 400

    def test_truncated_body_is_clean_eof(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"
        assert parse(raw) is None

    def test_json_errors_are_400(self):
        req = parse(req_bytes(body=b"{nope"))
        with pytest.raises(HttpError) as err:
            req.json()
        assert err.value.status == 400
        empty = parse(req_bytes(method="GET", target="/"))
        with pytest.raises(HttpError):
            empty.json()


class TestResponses:
    def test_response_framing(self):
        raw = response(200, b"hi", keep_alive=True)
        text = raw.decode()
        assert text.startswith("HTTP/1.1 200 OK\r\n")
        assert "Content-Length: 2" in text
        assert "Connection: keep-alive" in text
        assert text.endswith("\r\n\r\nhi")

    def test_json_response_round_trips(self):
        raw = json_response(422, {"error": "x"}, keep_alive=False)
        head, _, body = raw.partition(b"\r\n\r\n")
        assert b"422 Unprocessable Entity" in head
        assert b"Connection: close" in head
        assert json.loads(body) == {"error": "x"}

    def test_extra_headers(self):
        raw = json_response(429, {}, headers={"Retry-After": "7"})
        assert b"Retry-After: 7\r\n" in raw

    def test_stream_head_is_close_delimited(self):
        head = stream_head().decode()
        assert "Connection: close" in head
        assert "Content-Length" not in head
        assert "application/x-ndjson" in head

    def test_ndjson_line(self):
        line = ndjson_line({"b": 2, "a": 1})
        assert line == b'{"a": 1, "b": 2}\n'
