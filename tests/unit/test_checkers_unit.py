"""Unit tests for the checker subsystem: race-detector vector-clock
semantics, lint rules over recorded op streams, the promoted
sequence-number install guards, and the sanitizer's non-perturbing
cache observer."""

from __future__ import annotations

import pytest

from repro.checkers import (
    CheckerReport, RaceDetector, record_streams, run_lint,
)
from repro.config import MachineConfig, Protocol
from repro.isa.ops import (
    Fence, FetchAdd, Flush, Read, SpinUntil, Write,
)
from repro.memsys.cache import Cache, CacheState
from repro.network.messages import Message, MsgType
from repro.runtime import Machine
from repro.runtime.memory_map import MemoryMap
from repro.sync.locks import TicketLock


# ----------------------------------------------------------------------
# race detector: vector-clock semantics (driven directly, no machine)
# ----------------------------------------------------------------------

def _detector(procs: int = 2):
    cfg = MachineConfig(num_procs=procs)
    mm = MemoryMap(cfg)
    report = CheckerReport()
    return RaceDetector(cfg, mm, report), mm, report


DATA, FLAG = 0x0, 0x40          # separate blocks


def test_race_fenced_message_passing_is_clean():
    det, mm, report = _detector()
    mm.mark_sync(FLAG)
    det.on_write(0, DATA)
    det.on_fence(0)             # publish the data write
    det.on_write(0, FLAG)       # flag store carries the fenced clock
    det.on_read(1, FLAG)        # acquire
    det.on_read(1, DATA)
    assert report.clean, report.render()


def test_race_unfenced_message_passing_is_flagged():
    det, mm, report = _detector()
    mm.mark_sync(FLAG)
    det.on_write(0, DATA)
    det.on_write(0, FLAG)       # no fence: publishes stale knowledge
    det.on_read(1, FLAG)
    det.on_read(1, DATA)
    races = report.by_rule("data-race")
    assert len(races) == 1
    assert races[0].word == DATA


def test_race_write_write_conflict_is_flagged():
    det, _, report = _detector()
    det.on_write(0, DATA)
    det.on_write(1, DATA)
    assert report.by_rule("data-race")


def test_race_spin_target_is_whitelisted():
    det, _, report = _detector()
    det.on_spin_start(1, FLAG)      # dynamic whitelist
    det.on_write(0, DATA)
    det.on_fence(0)
    det.on_write(0, FLAG)           # racy store to the spin word: benign
    det.on_spin_success(1, FLAG)    # acquire
    det.on_read(1, DATA)
    assert report.clean, report.render()


def test_race_atomic_orders_data_handoff():
    det, _, report = _detector()
    det.on_write(0, DATA)
    det.on_atomic(0, FLAG)          # atomics drain the write buffer
    det.on_atomic(1, FLAG)          # and acquire the published clock
    det.on_read(1, DATA)
    assert report.clean, report.render()


def test_race_atomic_issue_publishes_before_completion():
    # serialization can put a later-issued atomic first: the publish
    # must already be on the word at *issue* time
    det, _, report = _detector()
    det.on_write(0, DATA)
    det.on_atomic_issue(0, FLAG)
    det.on_atomic_issue(1, FLAG)
    det.on_atomic_complete(1, FLAG)
    det.on_atomic_complete(0, FLAG)
    det.on_read(1, DATA)
    assert report.clean, report.render()


def test_race_fork_join_edges():
    det, _, report = _detector()
    det.on_write(0, DATA)
    det.on_fork(0, 1)               # child inherits parent's knowledge
    det.on_read(1, DATA)
    det.on_write(1, DATA)
    det.on_join(0, 1)               # parent absorbs child's knowledge
    det.on_read(0, DATA)
    assert report.clean, report.render()


def test_race_without_join_edge_is_flagged():
    det, _, report = _detector()
    det.on_write(1, DATA)
    det.on_read(0, DATA)
    assert report.by_rule("data-race")


def test_race_reports_are_deduplicated():
    det, _, report = _detector()
    det.on_write(0, DATA)
    for _ in range(5):
        det.on_write(1, DATA)
        det.on_read(1, DATA)
    assert len(report.by_rule("data-race")) == 1


def test_race_ideal_channel_edges():
    det, _, report = _detector()
    det.on_write(0, DATA)
    det.ideal_release(0, channel=1)
    det.ideal_acquire(1, channel=1)
    det.on_read(1, DATA)
    det.ideal_barrier([0, 1])
    det.on_write(0, DATA)           # exclusive again after the barrier?
    assert report.clean, report.render()


# ----------------------------------------------------------------------
# lint rules
# ----------------------------------------------------------------------

def _lint_machine(procs: int = 2) -> Machine:
    return Machine(MachineConfig(num_procs=procs, protocol=Protocol.WI))


def test_lint_clean_ticket_lock_program():
    machine = _lint_machine()
    lock = TicketLock(machine)
    counter = machine.memmap.alloc_word(0, "counter")

    def program(node):
        token = yield from lock.acquire(node)
        value = yield Read(counter)
        yield Write(counter, value + 1)
        yield from lock.release(node, token)

    report = run_lint(machine.memmap, [(n, program(n)) for n in (0, 1)])
    assert report.clean, report.render()


def test_lint_missing_release_fence():
    machine = _lint_machine()
    lock = TicketLock(machine)
    counter = machine.memmap.alloc_word(0, "counter")

    def program(node):
        ticket = yield FetchAdd(lock.next_ticket, 1)
        yield SpinUntil(lock.now_serving, lambda v, t=ticket: v == t)
        value = yield Read(counter)
        yield Write(counter, value + 1)
        # buggy release: hand the lock over without a Fence
        now = yield Read(lock.now_serving)
        yield Write(lock.now_serving, now + 1)

    report = run_lint(machine.memmap, [(n, program(n)) for n in (0, 1)])
    found = report.by_rule("missing-release-fence")
    assert found, report.render()
    assert f"{machine.memmap.config.word_of(counter):#x}" \
        in found[0].detail


def test_lint_write_escapes_release():
    machine = _lint_machine()
    lock = TicketLock(machine)
    counter = machine.memmap.alloc_word(0, "counter")

    def program(node):
        ticket = yield FetchAdd(lock.next_ticket, 1)
        yield SpinUntil(lock.now_serving, lambda v, t=ticket: v == t)
        yield Fence()
        # buggy: this store is issued after the fence that guards the
        # handoff, so it is not covered by it
        yield Write(counter, node)
        now = yield Read(lock.now_serving)
        yield Write(lock.now_serving, now + 1)

    report = run_lint(machine.memmap, [(n, program(n)) for n in (0, 1)])
    assert report.by_rule("write-escapes-release"), report.render()
    assert not report.by_rule("missing-release-fence")


def test_lint_unshared_flush():
    machine = _lint_machine()
    mm = machine.memmap
    private = mm.alloc_word(0, "private")
    shared = mm.alloc_word(0, "shared")

    def flusher(node):
        yield Write(private, 1)
        yield Flush(private)            # nobody else touches this block
        yield Write(shared, 1)

    def other(node):
        yield Read(shared)

    report = run_lint(mm, [(0, flusher(0)), (1, other(1))])
    assert report.by_rule("unshared-flush"), report.render()


def test_lint_unshared_flush_skipped_single_node():
    machine = _lint_machine()
    private = machine.memmap.alloc_word(0, "private")

    def program(node):
        yield Write(private, 1)
        yield Flush(private)

    report = run_lint(machine.memmap, [(0, program(0))])
    assert report.clean, report.render()


def test_lint_spin_never_satisfied():
    machine = _lint_machine()
    flag = machine.memmap.alloc_word(0, "flag")

    def spinner(node):
        yield SpinUntil(flag, lambda v: v == 99)

    def other(node):
        yield Write(flag, 1)            # never 99

    report = run_lint(machine.memmap, [(0, spinner(0)), (1, other(1))])
    found = report.by_rule("spin-never-satisfied")
    assert found and found[0].node == 0


def test_record_streams_seeds_initial_values():
    cfg = MachineConfig(num_procs=1)

    def program(node):
        value = yield Read(0x0)
        yield Write(0x40, value)

    events, blocked = record_streams(cfg, [(0, program(0))],
                                     initial={0x0: 7})
    assert not blocked
    assert [e.kind for e in events] == ["read", "write"]


# ----------------------------------------------------------------------
# promoted sequence-number install guards (WI)
# ----------------------------------------------------------------------

def _wi_machine_with_sanitizer() -> Machine:
    cfg = MachineConfig(num_procs=2, protocol=Protocol.WI,
                        enable_sanitizer=True, checkers_strict=False)
    return Machine(cfg)


def test_stale_inv_ignored_reported_as_event():
    machine = _wi_machine_with_sanitizer()
    addr = machine.memmap.alloc_word(0, "x")
    block = machine.config.block_of(addr)
    ctrl = machine.controllers[1]
    # a copy installed by a transaction *newer* than the invalidation
    ctrl.cache.install(block, CacheState.SHARED,
                       {machine.config.word_of(addr): 1}, seq=9)
    ctrl._cache_inv(Message(MsgType.INV, src=0, dst=1, block=block,
                            requester=0, seq=3))
    events = machine.checker_report.events_of("stale-inv-ignored")
    assert len(events) == 1 and events[0].node == 1
    assert ctrl.cache.contains(block)      # the newer copy survives
    assert machine.checker_report.clean    # events never fail a run


def test_inv_overtaking_fill_reported_as_event():
    machine = _wi_machine_with_sanitizer()
    addr = machine.memmap.alloc_word(0, "x")
    cfg = machine.config
    block, word = cfg.block_of(addr), cfg.word_of(addr)
    ctrl = machine.controllers[1]
    got = []
    ctrl.read(addr, got.append)            # outstanding fill
    # the invalidation for a later transaction arrives first
    ctrl._cache_inv(Message(MsgType.INV, src=0, dst=1, block=block,
                            requester=0, seq=7))
    ctrl._complete_fill(
        Message(MsgType.READ_REPLY, src=0, dst=1, block=block,
                data={word: 0}, seq=5),
        CacheState.SHARED)
    assert got == [0]                      # value consumed exactly once
    assert not ctrl.cache.contains(block)  # ...but the block is dropped
    events = machine.checker_report.events_of("inv-overtook-fill")
    assert len(events) == 1 and events[0].block == block


# ----------------------------------------------------------------------
# sanitizer observer plumbing
# ----------------------------------------------------------------------

def test_cache_peek_does_not_touch_lru():
    cache = Cache(num_lines=2, block_size=64, associativity=2)
    cache.install(10, CacheState.SHARED, {})
    cache.install(20, CacheState.SHARED, {})   # LRU order: 10, 20
    assert cache.peek(10) is not None          # observer look
    evicted = cache.install(30, CacheState.SHARED, {})
    assert evicted is not None and evicted.block == 10
    # contrast: a lookup() *does* promote to MRU
    cache2 = Cache(num_lines=2, block_size=64, associativity=2)
    cache2.install(10, CacheState.SHARED, {})
    cache2.install(20, CacheState.SHARED, {})
    cache2.lookup(10)
    evicted = cache2.install(30, CacheState.SHARED, {})
    assert evicted is not None and evicted.block == 20


def test_sanitizer_flags_unwritten_read_value():
    machine = _wi_machine_with_sanitizer()
    addr = machine.memmap.alloc_word(0, "x")
    cfg = machine.config
    san = machine.sanitizer
    san.record_value(cfg.word_of(addr), 5)
    san.check_read(0, cfg.block_of(addr), cfg.word_of(addr), 5)
    assert machine.checker_report.clean
    san.check_read(0, cfg.block_of(addr), cfg.word_of(addr), 12345)
    found = machine.checker_report.by_rule("read-value")
    assert found and found[0].word == cfg.word_of(addr)


def test_checker_config_flags_default_off():
    cfg = MachineConfig(num_procs=2)
    machine = Machine(cfg)
    assert machine.sanitizer is None
    assert machine.race_detector is None
    assert machine.checker_report is None
