"""The consistent-hash ring: the properties the cluster stands on.

Three things must hold or the cluster silently mis-caches:

* **stability** -- key ownership is a pure function of (shard set,
  vnodes), identical across processes and insertion orders, because
  the router and every shard each build their own ring and must agree;
* **bounded movement** -- membership changes move only the keys the
  change forces: a joining shard only *takes* keys (~1/N), a leaving
  shard only *gives up* its own;
* **balance** -- with vnodes=64 no shard owns a wildly outsized share.

Hypothesis drives the movement properties over random shard sets and
keys; a subprocess check pins cross-process stability against
``PYTHONHASHSEED`` leaks.
"""

import json
import subprocess
import sys

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.ring import DEFAULT_VNODES, EmptyRingError, HashRing


def keys(n, prefix="key"):
    return [f"{prefix}-{i:04d}" for i in range(n)]


class TestBasics:
    def test_empty_ring_raises(self):
        ring = HashRing()
        with pytest.raises(EmptyRingError):
            ring.owner("anything")
        with pytest.raises(EmptyRingError):
            ring.preference("anything")

    def test_vnodes_validation(self):
        with pytest.raises(ValueError):
            HashRing(vnodes=0)

    def test_empty_shard_id_rejected(self):
        with pytest.raises(ValueError):
            HashRing([""])

    def test_membership(self):
        ring = HashRing(["a", "b"])
        assert len(ring) == 2
        assert "a" in ring and "c" not in ring
        assert ring.shards == frozenset({"a", "b"})

    def test_add_remove_idempotent(self):
        ring = HashRing(["a"])
        ring.add("a")
        assert len(ring) == 1
        ring.remove("missing")
        ring.remove("a")
        ring.remove("a")
        assert len(ring) == 0

    def test_single_shard_owns_everything(self):
        ring = HashRing(["only"])
        assert all(ring.owner(k) == "only" for k in keys(50))

    def test_preference_starts_at_owner_and_is_distinct(self):
        ring = HashRing(["a", "b", "c", "d"])
        for key in keys(30):
            pref = ring.preference(key)
            assert pref[0] == ring.owner(key)
            assert sorted(pref) == sorted(set(pref))
            assert set(pref) == ring.shards

    def test_preference_n_limits(self):
        ring = HashRing(["a", "b", "c"])
        assert len(ring.preference("k", n=2)) == 2


class TestStability:
    def test_insertion_order_independent(self):
        shards = ["s0", "s1", "s2", "s3", "s4"]
        forward = HashRing(shards)
        backward = HashRing(reversed(shards))
        for key in keys(200):
            assert forward.owner(key) == backward.owner(key)

    def test_remove_then_readd_restores_mapping(self):
        ring = HashRing(["a", "b", "c"])
        before = {k: ring.owner(k) for k in keys(200)}
        ring.remove("b")
        ring.add("b")
        assert {k: ring.owner(k) for k in keys(200)} == before

    def test_stable_across_processes(self):
        """Ownership must not depend on PYTHONHASHSEED or any other
        per-process state: router and shards each build their own
        ring from shard ids alone."""
        shards = ["shard-0", "shard-1", "shard-2"]
        sample = keys(64)
        local = {k: HashRing(shards).owner(k) for k in sample}
        script = (
            "import json, sys\n"
            "from repro.cluster.ring import HashRing\n"
            "shards, sample = json.load(sys.stdin)\n"
            "ring = HashRing(shards)\n"
            "print(json.dumps({k: ring.owner(k) for k in sample}))\n")
        out = subprocess.run(
            [sys.executable, "-c", script],
            input=json.dumps([shards, sample]), text=True,
            capture_output=True, check=True)
        assert json.loads(out.stdout) == local


class TestBalance:
    def test_no_shard_grossly_overloaded(self):
        n_shards, n_keys = 5, 2000
        ring = HashRing([f"shard-{i}" for i in range(n_shards)])
        counts = {}
        for key in keys(n_keys):
            owner = ring.owner(key)
            counts[owner] = counts.get(owner, 0) + 1
        assert len(counts) == n_shards, "some shard owns zero keys"
        for owner, count in counts.items():
            share = count / n_keys
            assert 0.3 / n_shards < share < 3.0 / n_shards, \
                f"{owner} owns {share:.1%} of the key space"


shard_sets = st.lists(
    st.sampled_from([f"shard-{i}" for i in range(12)]),
    min_size=1, max_size=8, unique=True)
key_sets = st.lists(st.text(min_size=1, max_size=24),
                    min_size=1, max_size=120, unique=True)


class TestMovement:
    @settings(max_examples=60, deadline=None)
    @given(shards=shard_sets, sample=key_sets)
    def test_join_only_takes_keys(self, shards, sample):
        """Adding a shard may only move keys TO the new shard."""
        ring = HashRing(shards)
        before = {k: ring.owner(k) for k in sample}
        ring.add("joiner")
        for key in sample:
            after = ring.owner(key)
            if after != before[key]:
                assert after == "joiner"

    @settings(max_examples=60, deadline=None)
    @given(shards=shard_sets, sample=key_sets)
    def test_leave_only_moves_its_own_keys(self, shards, sample):
        """Removing a shard may only move the keys it owned."""
        ring = HashRing(shards + ["leaver"])
        before = {k: ring.owner(k) for k in sample}
        ring.remove("leaver")
        for key in sample:
            if before[key] != "leaver":
                assert ring.owner(key) == before[key]

    def test_join_moves_about_one_nth(self):
        n_keys = 3000
        ring = HashRing([f"shard-{i}" for i in range(4)])
        sample = keys(n_keys)
        before = {k: ring.owner(k) for k in sample}
        ring.add("shard-4")
        moved = sum(1 for k in sample if ring.owner(k) != before[k])
        # exactly the joiner's share should move: ~1/5 of keys, with
        # generous slack for vnode placement variance
        assert moved / n_keys < 2.0 / 5
        assert moved > 0


class TestDefaultVnodes:
    def test_default_is_64(self):
        assert DEFAULT_VNODES == 64
        assert HashRing(["a"]).vnodes == 64
