"""Unit tests for the home-aware shared-memory allocator."""

import pytest

from repro.config import MachineConfig
from repro.runtime import MemoryMap


def make(num_procs=8):
    cfg = MachineConfig(num_procs=num_procs)
    return cfg, MemoryMap(cfg)


class TestPlacement:
    def test_word_homed_where_requested(self):
        cfg, mm = make()
        for home in range(8):
            addr = mm.alloc_word(home)
            assert mm.home_of(addr) == home

    def test_block_homed_where_requested(self):
        cfg, mm = make()
        addr = mm.alloc_block(5)
        assert mm.home_of(addr) == 5
        assert addr % cfg.block_size_bytes == 0

    def test_home_out_of_range(self):
        _, mm = make()
        with pytest.raises(ValueError):
            mm.alloc_word(8)

    def test_unpacked_words_get_own_blocks(self):
        cfg, mm = make()
        a = mm.alloc_word(0)
        b = mm.alloc_word(0)
        assert cfg.block_of(a) != cfg.block_of(b)

    def test_packed_words_share_a_block(self):
        cfg, mm = make()
        a = mm.alloc_word(0, pack=True)
        b = mm.alloc_word(0, pack=True)
        assert cfg.block_of(a) == cfg.block_of(b)
        assert a != b

    def test_packed_overflow_starts_new_block(self):
        cfg, mm = make()
        addrs = [mm.alloc_word(0, pack=True)
                 for _ in range(cfg.words_per_block + 1)]
        blocks = {cfg.block_of(a) for a in addrs}
        assert len(blocks) == 2

    def test_no_overlap_across_allocations(self):
        cfg, mm = make()
        seen = set()
        for i in range(100):
            a = mm.alloc_word(i % 8, pack=(i % 2 == 0))
            assert a not in seen
            seen.add(a)


class TestStructsAndArrays:
    def test_struct_fields_contiguous_same_block(self):
        cfg, mm = make()
        s = mm.alloc_struct(3, ["next", "locked"])
        assert s["locked"] - s["next"] == cfg.word_size_bytes
        assert cfg.block_of(s["next"]) == cfg.block_of(s["locked"])
        assert mm.home_of(s["next"]) == 3

    def test_struct_too_big(self):
        cfg, mm = make()
        with pytest.raises(ValueError):
            mm.alloc_struct(0, [f"f{i}" for i in range(17)])

    def test_alloc_words_packed_and_homed(self):
        cfg, mm = make()
        addrs = mm.alloc_words(2, 20)
        assert len(addrs) == 20
        for a in addrs:
            assert mm.home_of(a) == 2
        blocks = {cfg.block_of(a) for a in addrs}
        assert len(blocks) == 2  # 20 words -> 2 blocks of 16

    def test_region_contiguous_and_interleaved(self):
        cfg, mm = make()
        base = mm.alloc_region(8 * cfg.block_size_bytes)
        homes = [mm.home_of(base + i * cfg.block_size_bytes)
                 for i in range(8)]
        assert homes == list(range(8))

    def test_region_rejects_zero(self):
        _, mm = make()
        with pytest.raises(ValueError):
            mm.alloc_region(0)


class TestInitialValuesAndLabels:
    def test_initial_value_recorded(self):
        cfg, mm = make()
        addr = mm.alloc_word(0, init=42)
        assert mm.initial_values[cfg.word_of(addr)] == 42

    def test_set_initial(self):
        cfg, mm = make()
        addr = mm.alloc_word(0)
        mm.set_initial(addr, 7)
        assert mm.initial_values[cfg.word_of(addr)] == 7

    def test_find_by_label(self):
        _, mm = make()
        addr = mm.alloc_word(1, label="ticket")
        found = mm.find("ticket")
        assert found is not None and found.addr == addr
        assert mm.find("nope") is None
