"""Unit tests for the mesh topology."""

import pytest

from repro.network import MeshTopology


class TestCoordinates:
    def test_row_major_layout(self):
        topo = MeshTopology(8)  # 4x2
        assert topo.coords(0) == (0, 0)
        assert topo.coords(3) == (3, 0)
        assert topo.coords(4) == (0, 1)
        assert topo.coords(7) == (3, 1)

    def test_node_at_roundtrip(self):
        topo = MeshTopology(32)
        for n in range(32):
            assert topo.node_at(*topo.coords(n)) == n

    def test_out_of_range(self):
        topo = MeshTopology(4)
        with pytest.raises(ValueError):
            topo.coords(4)
        with pytest.raises(ValueError):
            topo.node_at(5, 0)


class TestHops:
    def test_self_is_zero(self):
        topo = MeshTopology(32)
        for n in range(32):
            assert topo.hops(n, n) == 0

    def test_symmetry(self):
        topo = MeshTopology(32)
        for a in range(32):
            for b in range(32):
                assert topo.hops(a, b) == topo.hops(b, a)

    def test_manhattan_distance(self):
        topo = MeshTopology(32)  # 8x4
        assert topo.hops(0, 7) == 7       # same row, far ends
        assert topo.hops(0, 24) == 3      # same column, far ends
        assert topo.hops(0, 31) == 10     # opposite corners

    def test_diameter(self):
        assert MeshTopology(32).diameter == 10
        assert MeshTopology(16).diameter == 6
        assert MeshTopology(1).diameter == 0

    def test_triangle_inequality(self):
        topo = MeshTopology(16)
        for a in range(16):
            for b in range(16):
                for c in range(0, 16, 5):
                    assert (topo.hops(a, b)
                            <= topo.hops(a, c) + topo.hops(c, b))


class TestRouting:
    def test_route_endpoints(self):
        topo = MeshTopology(32)
        route = topo.route(3, 28)
        assert route[0] == 3
        assert route[-1] == 28

    def test_route_length_matches_hops(self):
        topo = MeshTopology(32)
        for a in range(0, 32, 3):
            for b in range(0, 32, 5):
                assert len(topo.route(a, b)) == topo.hops(a, b) + 1

    def test_dimension_order_x_first(self):
        topo = MeshTopology(16)  # 4x4
        route = topo.route(0, 15)  # (0,0) -> (3,3)
        # x varies first while y stays 0
        ys = [topo.coords(n)[1] for n in route]
        assert ys == sorted(ys)  # y never decreases after x phase
        assert ys[:4] == [0, 0, 0, 0]

    def test_route_steps_are_neighbours(self):
        topo = MeshTopology(32)
        route = topo.route(1, 30)
        for a, b in zip(route, route[1:]):
            assert topo.hops(a, b) == 1

    def test_route_to_self(self):
        topo = MeshTopology(8)
        assert topo.route(5, 5) == [5]
