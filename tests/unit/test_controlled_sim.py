"""Unit tests for :class:`repro.engine.ControlledSimulator`: the
same-cycle choice-point hook the model checker drives."""

from __future__ import annotations

import pytest

from repro.engine import ControlledSimulator, SimulationError, Simulator


def _schedule_tie(sim, order):
    for name in ("a", "b", "c"):
        sim.at(5, order.append, name)
    sim.at(9, order.append, "late")


def test_none_chooser_matches_stock_order():
    stock, controlled = [], []
    sim = Simulator()
    _schedule_tie(sim, stock)
    sim.run()
    csim = ControlledSimulator()
    _schedule_tie(csim, controlled)
    csim.run()
    assert controlled == stock == ["a", "b", "c", "late"]


def test_chooser_permutes_same_cycle_ties():
    order: list = []
    sim = ControlledSimulator(chooser=lambda batch: len(batch) - 1)
    _schedule_tie(sim, order)
    sim.run()
    # always taking the last candidate reverses each tie batch
    assert order == ["c", "b", "a", "late"]


def test_choice_log_records_candidates_and_choice():
    sim = ControlledSimulator(chooser=lambda batch: 0)
    _schedule_tie(sim, [])
    sim.run()
    # singleton pops are choice-free and not logged as branch points
    assert sim.choice_log == [(3, 0), (2, 0)]


def test_chooser_sees_shrinking_batches():
    sizes: list = []

    def chooser(batch):
        sizes.append(len(batch))
        return 0

    sim = ControlledSimulator(chooser=chooser)
    _schedule_tie(sim, [])
    sim.run()
    assert sizes == [3, 2]


def test_out_of_range_choice_raises():
    sim = ControlledSimulator(chooser=lambda batch: len(batch))
    _schedule_tie(sim, [])
    with pytest.raises(SimulationError, match="chooser returned"):
        sim.run()


def test_step_consults_chooser():
    order: list = []
    sim = ControlledSimulator(chooser=lambda batch: 1)
    sim.at(1, order.append, "x")
    sim.at(1, order.append, "y")
    assert sim.step()
    assert order == ["y"]
    assert sim.step()
    assert order == ["y", "x"]
    assert not sim.step()
