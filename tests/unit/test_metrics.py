"""Unit tests for result tables and tracing."""

from repro.engine import NullTracer, Tracer
from repro.metrics import Series, StackedBars, format_table


class TestFormatTable:
    def test_basic_layout(self):
        out = format_table(["a", "bb"], [[1, 2.5], [30, 4.0]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bb" in lines[2]
        assert "30" in out and "2.5" in out

    def test_no_title(self):
        out = format_table(["x"], [[1]])
        assert out.splitlines()[0].strip() == "x"


class TestSeries:
    def test_add_keeps_xs_sorted(self):
        s = Series("t", "procs", "cycles")
        s.add("a-i", 4, 10.0)
        s.add("a-i", 1, 5.0)
        s.add("a-i", 2, 7.0)
        assert s.xs == [1, 2, 4]
        assert s.lines["a-i"] == [5.0, 7.0, 10.0]

    def test_missing_points_render_dash(self):
        s = Series("t", "p", "c")
        s.add("a", 1, 1.0)
        s.add("b", 2, 2.0)
        rows = s.as_rows()
        assert rows[0] == [1, 1.0, "-"]
        assert rows[1] == [2, "-", 2.0]

    def test_render_contains_labels(self):
        s = Series("Figure 8", "procs", "cycles")
        s.add("tk-i", 1, 100.0)
        out = s.render()
        assert "Figure 8" in out
        assert "tk-i" in out


class TestStackedBars:
    def test_counts_and_total(self):
        b = StackedBars("f9", ["cold", "true"])
        b.add("tk-i", {"cold": 3, "true": 2, "ignored": 9})
        assert b.total("tk-i") == 5
        assert b.as_rows() == [["tk-i", 3, 2, 5]]

    def test_missing_categories_zero(self):
        b = StackedBars("f", ["cold", "true"])
        b.add("x", {})
        assert b.total("x") == 0

    def test_render_has_bars_and_legend(self):
        b = StackedBars("f9", ["cold", "true"])
        b.add("tk-i", {"cold": 10, "true": 5})
        out = b.render()
        assert "legend:" in out
        assert "#" in out


class TestTracer:
    def test_null_tracer_records_nothing(self):
        t = NullTracer()
        t.record(0, "msg", 0, "x")
        assert t.records() == []
        assert t.enabled is False

    def test_tracer_records_and_filters(self):
        t = Tracer()
        t.record(1, "msg", 0, "read_req", blk=5)
        t.record(2, "proc", 1, "stall")
        assert len(t.records()) == 2
        assert [r.event for r in t.filter(category="msg")] == ["read_req"]
        assert list(t.filter(node=1))[0].event == "stall"
        assert t.records()[0].get("blk") == 5
        assert t.records()[0].get("nope", -1) == -1

    def test_category_filtering_at_record_time(self):
        t = Tracer(categories={"msg"})
        t.record(1, "msg", 0, "a")
        t.record(1, "proc", 0, "b")
        assert len(t.records()) == 1

    def test_limit_drops_excess(self):
        t = Tracer(limit=2)
        for i in range(5):
            t.record(i, "msg", 0, "e")
        assert len(t.records()) == 2
        assert t.dropped == 3

    def test_counts(self):
        t = Tracer()
        t.record(1, "msg", 0, "a")
        t.record(2, "msg", 0, "a")
        t.record(3, "msg", 1, "b")
        assert t.counts() == {"msg:a": 2, "msg:b": 1}

    def test_sink_invoked(self):
        seen = []
        t = Tracer(sink=seen.append)
        t.record(1, "msg", 0, "a")
        assert len(seen) == 1

    def test_clear(self):
        t = Tracer()
        t.record(1, "msg", 0, "a")
        t.clear()
        assert t.records() == []
