"""Unit tests for the discrete-event kernel."""

import pytest

from repro.engine import DeadlockError, Simulator, SimulationError


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(5, log.append, "late")
        sim.schedule(1, log.append, "early")
        sim.schedule(3, log.append, "middle")
        sim.run()
        assert log == ["early", "middle", "late"]

    def test_ties_fire_in_schedule_order(self):
        sim = Simulator()
        log = []
        for i in range(10):
            sim.schedule(7, log.append, i)
        sim.run()
        assert log == list(range(10))

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(42, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [42]
        assert sim.now == 42

    def test_zero_delay_fires_at_current_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [0]

    def test_nested_scheduling(self):
        sim = Simulator()
        log = []

        def outer():
            log.append(("outer", sim.now))
            sim.schedule(3, inner)

        def inner():
            log.append(("inner", sim.now))

        sim.schedule(2, outer)
        sim.run()
        assert log == [("outer", 2), ("inner", 5)]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda: None)

    def test_at_absolute_time(self):
        sim = Simulator()
        seen = []
        sim.at(9, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [9]

    def test_at_in_the_past_rejected(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.at(5, lambda: None)

    def test_args_passed_through(self):
        sim = Simulator()
        got = []
        sim.schedule(1, lambda a, b: got.append((a, b)), 1, "x")
        sim.run()
        assert got == [(1, "x")]


class TestRunControl:
    def test_run_until_stops_at_horizon(self):
        sim = Simulator()
        log = []
        sim.schedule(5, log.append, "a")
        sim.schedule(15, log.append, "b")
        sim.run(until=10)
        assert log == ["a"]
        assert sim.now == 10
        sim.run()
        assert log == ["a", "b"]

    def test_stop_halts_after_current_event(self):
        sim = Simulator()
        log = []
        sim.schedule(1, lambda: (log.append("first"), sim.stop()))
        sim.schedule(2, log.append, "second")
        sim.run()
        assert log == ["first"]
        assert sim.pending_events == 1

    def test_step_single_event(self):
        sim = Simulator()
        log = []
        sim.schedule(1, log.append, "a")
        sim.schedule(2, log.append, "b")
        assert sim.step() is True
        assert log == ["a"]
        assert sim.step() is True
        assert sim.step() is False

    def test_max_events_guard(self):
        sim = Simulator(max_events=10)

        def loop():
            sim.schedule(1, loop)

        sim.schedule(1, loop)
        with pytest.raises(SimulationError, match="max_events"):
            sim.run()

    def test_step_enforces_max_events(self):
        """step() must trip the same livelock safety valve as run()."""
        sim = Simulator(max_events=3)

        def loop():
            sim.schedule(1, loop)

        sim.schedule(1, loop)
        for _ in range(3):
            assert sim.step() is True
        with pytest.raises(SimulationError, match="max_events"):
            sim.step()

    def test_step_respects_stop(self):
        sim = Simulator()
        log = []
        sim.schedule(1, log.append, "a")
        sim.schedule(2, log.append, "b")
        assert sim.step() is True
        sim.stop()
        assert sim.step() is False
        assert log == ["a"]
        assert sim.pending_events == 1
        # run() re-arms the loop, exactly as before
        sim.run()
        assert log == ["a", "b"]

    def test_run_not_reentrant(self):
        sim = Simulator()
        failures = []

        def reenter():
            try:
                sim.run()
            except SimulationError:
                failures.append(True)

        sim.schedule(1, reenter)
        sim.run()
        assert failures == [True]

    def test_until_event_exactly_at_horizon_fires(self):
        sim = Simulator()
        log = []
        sim.schedule(10, log.append, "at-horizon")
        sim.schedule(11, log.append, "past")
        sim.run(until=10)
        assert log == ["at-horizon"]
        assert sim.now == 10

    def test_until_preserves_seq_order_past_horizon(self):
        """The horizon check peeks the queue head; events past ``until``
        must survive untouched and keep their same-cycle seq tie-break
        when the run resumes."""
        sim = Simulator()
        log = []
        sim.schedule(3, log.append, "early")
        for i in range(8):                       # same cycle, seq-ordered
            sim.schedule(20, log.append, i)
        sim.run(until=10)
        assert log == ["early"]
        assert sim.now == 10
        assert sim.pending_events == 8
        sim.run()
        assert log == ["early"] + list(range(8))

    def test_until_with_empty_horizon_window(self):
        sim = Simulator()
        sim.schedule(50, lambda: None)
        sim.run(until=10)
        assert sim.now == 10
        assert sim.events_processed == 0
        assert sim.pending_events == 1

    def test_step_and_run_agree_on_schedule(self):
        """step()-ing a schedule to exhaustion matches run() exactly:
        same events_processed, same final clock, same firing order."""
        def build():
            sim = Simulator()
            log = []
            for i in range(30):
                sim.schedule((i * 13) % 7, log.append, i)

            def chain(depth=3):
                if depth:
                    sim.schedule(2, chain, depth - 1)

            sim.schedule(1, chain)
            return sim, log

        ran, ran_log = build()
        ran.run()
        stepped, stepped_log = build()
        while stepped.step():
            pass
        assert stepped_log == ran_log
        assert stepped.events_processed == ran.events_processed
        assert stepped.now == ran.now

    def test_run_fast_path_honours_stop(self):
        """The no-horizon/no-budget fast path must still stop after the
        current event when a callback calls stop()."""
        sim = Simulator()
        log = []

        def first():
            log.append("first")
            sim.stop()

        sim.schedule(1, first)
        sim.schedule(2, log.append, "second")
        sim.run()
        assert log == ["first"]
        assert sim.pending_events == 1

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(i, lambda: None)
        sim.run()
        assert sim.events_processed == 5

    def test_peek_time(self):
        sim = Simulator()
        assert sim.peek_time() is None
        sim.schedule(8, lambda: None)
        assert sim.peek_time() == 8


class TestDeterminism:
    def test_identical_schedules_identical_traces(self):
        def build():
            sim = Simulator()
            log = []
            for i in range(50):
                sim.schedule((i * 17) % 23, log.append, i)
            sim.run()
            return log

        assert build() == build()

    def test_deadlock_error_is_simulation_error(self):
        assert issubclass(DeadlockError, SimulationError)
