"""Unit tests for the ISA operation vocabulary."""

import pytest

from repro.isa.ops import (
    CompareSwap, Compute, FetchAdd, FetchStore, Flush, Read, SpinUntil,
    Write, apply_atomic, fetch_and_decrement,
)


class TestApplyAtomic:
    def test_fetch_and_add(self):
        assert apply_atomic("faa", 5, 3) == (8, 5)

    def test_fetch_and_add_negative(self):
        assert apply_atomic("faa", 5, -1) == (4, 5)

    def test_fetch_and_add_uninitialized(self):
        assert apply_atomic("faa", None, 1) == (1, 0)

    def test_fetch_and_store(self):
        assert apply_atomic("fas", 7, 99) == (99, 7)

    def test_cas_success(self):
        new, ok = apply_atomic("cas", 7, (7, 11))
        assert (new, ok) == (11, True)

    def test_cas_failure_keeps_value(self):
        new, ok = apply_atomic("cas", 8, (7, 11))
        assert (new, ok) == (8, False)

    def test_cas_on_uninitialized_zero(self):
        new, ok = apply_atomic("cas", None, (0, 5))
        assert (new, ok) == (5, True)

    def test_unknown_op(self):
        with pytest.raises(ValueError):
            apply_atomic("xadd", 0, 0)


class TestOpConstruction:
    def test_fetch_and_decrement_sugar(self):
        op = fetch_and_decrement(128)
        assert isinstance(op, FetchAdd)
        assert op.delta == -1
        assert op.addr == 128

    def test_atomic_operands(self):
        assert FetchAdd(0, 3).operand == 3
        assert FetchStore(0, 9).operand == 9
        assert CompareSwap(0, 1, 2).operand == (1, 2)

    def test_atomic_opnames(self):
        assert FetchAdd(0).opname == "faa"
        assert FetchStore(0, 0).opname == "fas"
        assert CompareSwap(0, 0, 0).opname == "cas"

    def test_compute_rejects_negative(self):
        with pytest.raises(ValueError):
            Compute(-1)
        assert Compute(0).cycles == 0

    def test_spin_until_holds_predicate(self):
        op = SpinUntil(64, lambda v: v == 3)
        assert op.predicate(3)
        assert not op.predicate(4)

    def test_ops_are_lightweight(self):
        # __slots__: no per-instance dict
        for op in (Read(0), Write(0, 1), Compute(1), Flush(0)):
            assert not hasattr(op, "__dict__")
