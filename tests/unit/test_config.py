"""Unit tests for machine configuration."""

import pytest

from repro.config import (
    ALL_PROTOCOLS, ExperimentScale, MachineConfig, PAPER_MACHINE_SIZES,
    Protocol, mesh_shape,
)


class TestProtocol:
    def test_update_based(self):
        assert not Protocol.WI.is_update_based
        assert Protocol.PU.is_update_based
        assert Protocol.CU.is_update_based

    def test_short_labels_match_paper(self):
        assert Protocol.WI.short == "i"
        assert Protocol.PU.short == "u"
        assert Protocol.CU.short == "c"

    @pytest.mark.parametrize("text,expected", [
        ("wi", Protocol.WI), ("WI", Protocol.WI), ("i", Protocol.WI),
        ("invalidate", Protocol.WI),
        ("pu", Protocol.PU), ("u", Protocol.PU), ("update", Protocol.PU),
        ("cu", Protocol.CU), ("c", Protocol.CU),
        ("competitive", Protocol.CU),
        ("mesi", Protocol.MESI), ("e", Protocol.MESI),
    ])
    def test_parse(self, text, expected):
        assert Protocol.parse(text) is expected

    def test_parse_unknown(self):
        with pytest.raises(ValueError):
            Protocol.parse("dragon")

    def test_all_protocols_ordering(self):
        assert ALL_PROTOCOLS == (Protocol.WI, Protocol.PU, Protocol.CU)


class TestMeshShapes:
    @pytest.mark.parametrize("n,shape", [
        (1, (1, 1)), (2, (2, 1)), (4, (2, 2)), (8, (4, 2)),
        (16, (4, 4)), (32, (8, 4)), (64, (8, 8)),
    ])
    def test_paper_shapes(self, n, shape):
        assert mesh_shape(n) == shape

    def test_non_power_of_two(self):
        w, h = mesh_shape(6)
        assert w * h == 6

    def test_prime_degenerates_to_line(self):
        assert mesh_shape(7) == (7, 1)

    def test_invalid(self):
        with pytest.raises(ValueError):
            mesh_shape(0)


class TestMachineConfig:
    def test_paper_defaults(self):
        cfg = MachineConfig()
        assert cfg.num_procs == 32
        assert cfg.cache_size_bytes == 64 * 1024
        assert cfg.block_size_bytes == 64
        assert cfg.write_buffer_entries == 4
        assert cfg.mem_first_word_cycles == 20
        assert cfg.switch_delay_cycles == 2
        assert cfg.flit_bytes == 2
        assert cfg.update_threshold == 4

    def test_derived_quantities(self):
        cfg = MachineConfig()
        assert cfg.words_per_block == 16
        assert cfg.num_cache_lines == 1024
        assert cfg.mesh == (8, 4)
        assert cfg.data_msg_bytes == cfg.header_bytes + 64

    def test_block_and_word_arithmetic(self):
        cfg = MachineConfig()
        assert cfg.block_of(0) == 0
        assert cfg.block_of(63) == 0
        assert cfg.block_of(64) == 1
        assert cfg.word_of(5) == 4
        assert cfg.word_of(4) == 4
        assert cfg.block_base(130) == 128

    def test_home_interleaving(self):
        cfg = MachineConfig(num_procs=8)
        homes = [cfg.home_of_block(b) for b in range(16)]
        assert homes == list(range(8)) * 2

    def test_with_protocol_and_procs(self):
        cfg = MachineConfig()
        cfg2 = cfg.with_protocol(Protocol.PU).with_procs(4)
        assert cfg2.protocol is Protocol.PU
        assert cfg2.num_procs == 4
        assert cfg.protocol is Protocol.WI  # frozen original untouched

    @pytest.mark.parametrize("kw", [
        dict(num_procs=0),
        dict(block_size_bytes=60),          # not multiple of word
        dict(cache_size_bytes=100),         # not multiple of block
        dict(write_buffer_entries=0),
        dict(update_threshold=0),
    ])
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            MachineConfig(**kw)

    def test_paper_machine_sizes(self):
        assert PAPER_MACHINE_SIZES == (1, 2, 4, 8, 16, 32)


class TestExperimentScale:
    def test_paper_counts(self):
        s = ExperimentScale.paper()
        assert s.lock_total_acquires == 32000
        assert s.barrier_episodes == 5000
        assert s.reduction_iters == 5000

    def test_scaled(self):
        s = ExperimentScale.scaled(0.1)
        assert s.lock_total_acquires == 3200
        assert s.barrier_episodes == 500
        assert s.reduction_iters == 500

    def test_scaled_floor_is_one(self):
        s = ExperimentScale.scaled(1e-9)
        assert s.lock_total_acquires >= 1
        assert s.barrier_episodes >= 1

    def test_scaled_invalid(self):
        with pytest.raises(ValueError):
            ExperimentScale.scaled(0)
