"""The static analyzer and the conformance pass, exercised on toy
specs with one seeded defect each, on the pristine controllers, and on
the seeded protocol mutations."""

from __future__ import annotations

import json

import pytest

from repro.config import Protocol
from repro.network.messages import MsgType
from repro.protocols import _CTRL_CLASSES
from repro.protospec import (
    Impossible, ProtocolSpec, SideSpec, TransitionRow, get_spec,
)
from repro.staticcheck import (
    StaticCheckReport, SuppressionError, analyze_spec,
    check_conformance, check_dispatch_tables, load_suppressions,
)

ALL = ("wi", "pu", "cu", "hybrid", "mesi")


# --- toy-spec scaffolding ---------------------------------------------

def _unused_rest(*used):
    return tuple((m.name, "not part of the toy protocol")
                 for m in MsgType if m.name not in used)


def _toy(cache_rows=None, cache_impossible=None, cache_states=None,
         cache_events=None, home_rows=None, unused=None):
    """A two-message toy protocol that analyzes clean by default."""
    cache = SideSpec(
        name="cache", initial="I",
        states=cache_states or ("I", "V"),
        stable=("I", "V"),
        events=cache_events or ("READ_REPLY", "local:read"),
        rows=cache_rows if cache_rows is not None else (
            TransitionRow("I", "local:read", ("send:READ_REQ",)),
            TransitionRow("I", "READ_REPLY", ("install",), "V"),
        ),
        impossible=cache_impossible if cache_impossible is not None
        else (Impossible("V", "READ_REPLY", "no outstanding miss"),))
    home = SideSpec(
        name="home", initial="U", states=("U",), stable=("U",),
        events=("READ_REQ",),
        rows=home_rows if home_rows is not None else (
            TransitionRow("U", "READ_REQ", ("send:READ_REPLY",)),))
    spec = ProtocolSpec(
        protocol="toy", description="toy", cache=cache, home=home,
        unused_messages=(unused if unused is not None
                         else _unused_rest("READ_REQ", "READ_REPLY")))
    spec.validate()
    return spec


def _idents(findings, check):
    return [f.ident for f in findings if f.check == check]


def test_toy_spec_is_clean():
    assert analyze_spec(_toy()) == []


# --- one seeded defect per analyzer check -----------------------------

def test_missing_pair_is_a_completeness_finding():
    spec = _toy(cache_impossible=())     # forgot (V, READ_REPLY)
    idents = _idents(analyze_spec(spec), "completeness")
    assert idents == ["completeness:toy:cache:V:READ_REPLY"]


def test_row_plus_impossible_is_a_contradiction():
    spec = _toy(cache_rows=(
        TransitionRow("I", "local:read", ("send:READ_REQ",)),
        TransitionRow("I", "READ_REPLY", ("install",), "V"),
        TransitionRow("V", "READ_REPLY", ("install",)),
    ))
    idents = _idents(analyze_spec(spec), "contradiction")
    assert idents == ["contradiction:toy:cache:V:READ_REPLY"]


def test_dead_state_is_a_reachability_finding():
    spec = _toy(cache_states=("I", "V", "M"),
                cache_impossible=(
                    Impossible("V", "READ_REPLY", "no miss"),
                    Impossible("M", "READ_REPLY", "no miss"),
                ))
    idents = _idents(analyze_spec(spec), "reachability")
    assert idents == ["reachability:toy:cache:M"]


def test_duplicate_guard_is_an_ambiguity_finding():
    spec = _toy(cache_rows=(
        TransitionRow("I", "local:read", ("send:READ_REQ",)),
        TransitionRow("I", "READ_REPLY", ("install",), "V"),
        TransitionRow("I", "READ_REPLY", ("fill",), "V"),
    ))
    idents = _idents(analyze_spec(spec), "ambiguity")
    assert idents == ["ambiguity:toy:cache:I:READ_REPLY"]


def test_retry_cycle_without_fairness_is_a_progress_finding():
    spec = _toy(cache_rows=(
        TransitionRow("I", "local:read", ("send:READ_REQ",)),
        TransitionRow("I", "READ_REPLY", ("install",), "V",
                      guard="data"),
        TransitionRow("I", "READ_REPLY", ("send:READ_REQ",), "I",
                      guard="nack", retry=True),
    ))
    idents = _idents(analyze_spec(spec), "progress")
    assert idents == ["progress:toy:cache:I:READ_REPLY"]


def test_retry_cycle_with_fairness_is_clean():
    spec = _toy(cache_rows=(
        TransitionRow("I", "local:read", ("send:READ_REQ",)),
        TransitionRow("I", "READ_REPLY", ("install",), "V",
                      guard="data"),
        TransitionRow("I", "READ_REPLY", ("send:READ_REQ",), "I",
                      guard="nack", retry=True,
                      fairness="home serves in FIFO arrival order"),
    ))
    assert analyze_spec(spec) == []


def test_used_and_unused_is_a_vocabulary_contradiction():
    spec = _toy(unused=_unused_rest("READ_REQ")
                + (("READ_REPLY", "declared unused by mistake"),))
    idents = _idents(analyze_spec(spec), "vocabulary")
    assert idents == ["vocabulary:toy:contradiction:READ_REPLY"]


def test_unaccounted_msgtype_is_a_vocabulary_orphan():
    rest = _unused_rest("READ_REQ", "READ_REPLY")
    spec = _toy(unused=tuple(u for u in rest if u[0] != "INV"))
    idents = _idents(analyze_spec(spec), "vocabulary")
    assert idents == ["vocabulary:toy:orphan:INV"]


def test_dead_letter_send_is_a_routing_finding():
    spec = _toy(cache_rows=(
        TransitionRow("I", "local:read", ("send:READ_REQ",)),
        TransitionRow("I", "READ_REPLY", ("install", "send:INV"), "V"),
    ), unused=_unused_rest("READ_REQ", "READ_REPLY", "INV"))
    idents = _idents(analyze_spec(spec), "routing")
    assert idents == ["routing:toy:dead-letter:INV"]


def test_never_sent_event_is_a_routing_finding():
    spec = _toy(cache_events=("READ_REPLY", "INV", "local:read"),
                cache_impossible=(
                    Impossible("V", "READ_REPLY", "no miss"),
                    Impossible("I", "INV", "nothing cached"),
                    Impossible("V", "INV", "nobody sends it"),
                ),
                unused=_unused_rest("READ_REQ", "READ_REPLY", "INV"))
    idents = _idents(analyze_spec(spec), "routing")
    assert idents == ["routing:toy:never-sent:INV"]


# --- the shipped specs and controllers --------------------------------

@pytest.mark.parametrize("name", ALL)
def test_shipped_specs_analyze_clean(name):
    assert analyze_spec(get_spec(name)) == []


@pytest.mark.parametrize("name", ALL)
def test_pristine_controllers_conform(name):
    spec = get_spec(name)
    cls = _CTRL_CLASSES[Protocol.parse(name)]
    assert check_conformance(spec, cls) == []


@pytest.mark.parametrize("name", ALL)
def test_compiled_dispatch_round_trips(name):
    """The execution tables the simulator dispatches through must agree
    row-for-row with what the spec routes."""
    proto = Protocol.parse(name)
    spec = get_spec(name)
    assert check_dispatch_tables(spec, _CTRL_CLASSES[proto], proto) == []


def test_corrupted_dispatch_table_is_detected():
    from repro.protocols import WINodeCtrl
    from repro.protocols.base import _DISPATCH_TABLES, compile_dispatch

    class _Probe(WINodeCtrl):
        pass

    proto = Protocol.WI
    spec = get_spec("wi")
    receivable = sorted(spec.receivable(), key=lambda m: m.index)
    routed = receivable[0]
    unrouted = next(m for m in MsgType if m not in spec.receivable())
    key = (_Probe, proto)
    try:
        table = list(compile_dispatch(_Probe, proto))
        table[routed.index] = "_no_such_handler"       # mis-routed row
        table[unrouted.index] = _Probe.HANDLERS[routed]  # spurious row
        _DISPATCH_TABLES[key] = tuple(table)
        idents = {f.ident for f in
                  check_dispatch_tables(spec, _Probe, proto)}
        assert f"dispatch:wi:{routed.name}:mismatch" in idents
        assert f"dispatch:wi:{unrouted.name}:spurious" in idents

        _DISPATCH_TABLES[key] = tuple(table[:-1])      # lost a slot
        findings = check_dispatch_tables(spec, _Probe, proto)
        assert [f.ident for f in findings] == ["dispatch:wi:table-size"]
    finally:
        _DISPATCH_TABLES.pop(key, None)


@pytest.mark.parametrize("mutation", [
    "wi-drop-inv-ack", "wi-skip-invalidation",
    "pu-upd-prop-overwrite", "cu-counter-stuck",
])
def test_seeded_mutations_are_detected_statically(mutation):
    from repro.modelcheck.mutations import get_mutation

    mut = get_mutation(mutation)
    spec = get_spec(mut.protocol.value)
    cls = _CTRL_CLASSES[mut.protocol]
    with mut.activate():
        findings = check_conformance(spec, cls)
    assert findings, f"{mutation} produced no conformance finding"
    assert all(f.check == "conformance" for f in findings)
    assert any(f.file and f.line for f in findings), (
        "conformance findings must point at file:line")
    # and deactivation restores conformance
    assert check_conformance(spec, cls) == []


# --- suppressions -----------------------------------------------------

def _manifest(tmp_path, entries):
    path = tmp_path / "suppressions.json"
    path.write_text(json.dumps({"suppressions": entries}))
    return str(path)


def test_suppressed_finding_does_not_fail_the_report(tmp_path):
    report = StaticCheckReport()
    report.extend(analyze_spec(_toy(cache_impossible=())))
    assert not report.ok
    table = load_suppressions(_manifest(tmp_path, [
        {"id": "completeness:toy:cache:V:READ_REPLY",
         "reason": "known hole, tracked separately"}]))
    report.apply_suppressions(table)
    assert report.ok
    assert report.findings[0].suppressed
    assert "known hole" in report.findings[0].suppress_reason


def test_stale_suppression_is_itself_a_finding(tmp_path):
    report = StaticCheckReport()
    table = load_suppressions(_manifest(tmp_path, [
        {"id": "completeness:toy:cache:GONE:INV",
         "reason": "fixed long ago"}]))
    report.apply_suppressions(table)
    stale = report.by_check("stale-suppression")
    assert len(stale) == 1
    assert not report.ok          # stale entries must be cleaned up


@pytest.mark.parametrize("entries", [
    [{"id": "x"}],                           # missing reason
    [{"reason": "no id"}],                   # missing id
    [{"id": "x", "reason": "a"},
     {"id": "x", "reason": "b"}],            # duplicate
])
def test_bad_manifest_is_rejected(tmp_path, entries):
    with pytest.raises(SuppressionError):
        load_suppressions(_manifest(tmp_path, entries))


# --- the CLI ----------------------------------------------------------

def test_cli_clean_tree_exits_zero(capsys):
    from repro.experiments.staticcheck import main

    assert main(["--protocol", "wi", "--quiet"]) == 0
    assert "no findings" in capsys.readouterr().out


def test_cli_unknown_protocol_suggests_and_exits_two(capsys):
    from repro.experiments.staticcheck import main

    with pytest.raises(SystemExit) as exc:
        main(["--protocol", "wii"])
    assert exc.value.code == 2
    assert "did you mean 'wi'" in capsys.readouterr().err


def test_cli_bad_manifest_exits_two(tmp_path, capsys):
    from repro.experiments.staticcheck import main

    bad = tmp_path / "bad.json"
    bad.write_text('{"suppressions": [{"id": "x"}]}')
    assert main(["--protocol", "wi", "--suppressions",
                 str(bad)]) == 2
    assert "bad suppression manifest" in capsys.readouterr().err


def test_cli_json_report_artifact(tmp_path):
    from repro.experiments.staticcheck import main

    out = tmp_path / "report.json"
    assert main(["--protocol", "wi", "--quiet", "--json",
                 str(out)]) == 0
    payload = json.loads(out.read_text())
    assert payload["ok"] is True
    assert payload["protocols"] == ["wi"]


def test_cli_dump_specs_round_trips(tmp_path):
    from repro.experiments.staticcheck import main

    assert main(["--protocol", "pu", "--quiet", "--dump-specs",
                 str(tmp_path)]) == 0
    dumped = ProtocolSpec.loads((tmp_path / "pu.json").read_text())
    assert dumped == get_spec("pu")


def test_modelcheck_cli_unknown_program_suggests(capsys):
    from repro.experiments.modelcheck import main

    assert main(["--program", "barier"]) == 2
    err = capsys.readouterr().err
    assert "unknown program 'barier'" in err
    assert "did you mean barrier" in err


def test_modelcheck_cli_unknown_mutation_suggests(capsys):
    from repro.experiments.modelcheck import main

    assert main(["--mutants", "--mutant", "wi-drop-invack"]) == 2
    err = capsys.readouterr().err
    assert "did you mean" in err and "wi-drop-inv-ack" in err
