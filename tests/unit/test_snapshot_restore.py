"""Snapshot/restore must be invisible to simulation results.

The contract (docs/performance.md): ``Machine.snapshot()`` mid-run,
followed by arbitrary further execution, followed by ``restore()``,
must leave the machine in a state from which the run completes with a
RunResult *bit-identical* to an undisturbed run -- every counter,
classification, network statistic and per-processor metric included.
"""

import pytest

from repro.campaign.result import run_result_to_jsonable
from repro.config import MachineConfig, Protocol
from repro.isa.ops import Compute, Fence, FetchAdd, Read, SpinUntil, Write
from repro.runtime import Machine

PROTOCOLS = [Protocol.WI, Protocol.PU, Protocol.CU, Protocol.HYBRID]


def _eq1(v) -> bool:
    return v == 1


def _build(protocol: Protocol) -> Machine:
    """Three nodes: two fetch-add contenders on a counter, one spinning
    consumer -- touches atomics, spins, fences and evictions."""
    cfg = MachineConfig(num_procs=3, protocol=protocol,
                        cache_size_bytes=128,
                        enable_sanitizer=True, checkers_strict=True)
    machine = Machine(cfg)
    mm = machine.memmap
    count = mm.alloc_word(0, "count")
    flag = mm.alloc_word(1, "flag")
    scratch = mm.alloc_word(2, "scratch")
    mm.mark_sync(count)

    def bumper(node):
        for i in range(4):
            yield FetchAdd(count, 1)
            yield Compute((node * 7 + i) % 5 + 1)
            yield Write(scratch, node * 100 + i)
        yield Fence()
        if node == 0:
            yield Write(flag, 1)
            yield Fence()

    def watcher(node):
        yield SpinUntil(flag, _eq1)
        yield Read(count)
        yield Read(scratch)

    machine.spawn(0, bumper(0), factory=lambda: bumper(0))
    machine.spawn(1, bumper(1), factory=lambda: bumper(1))
    machine.spawn(2, watcher(2), factory=lambda: watcher(2))
    machine.record_histories()
    return machine


def _reference(protocol: Protocol) -> dict:
    return run_result_to_jsonable(_build(protocol).run())


@pytest.mark.parametrize("protocol", PROTOCOLS,
                         ids=[p.value for p in PROTOCOLS])
class TestSnapshotRestore:
    def test_snapshot_mutate_restore_bit_identical(self, protocol):
        ref = _reference(protocol)

        machine = _build(protocol)
        machine.prepare()
        machine.sim.run(until=30)
        snap = machine.snapshot()

        # mutate: run the simulation all the way to completion...
        machine.sim.run()
        mutated = run_result_to_jsonable(machine.finish())
        assert mutated == ref  # sanity: undisturbed result

        # ...then rewind and run to completion again
        machine.restore(snap)
        machine.sim.run()
        assert run_result_to_jsonable(machine.finish()) == ref

    def test_one_snapshot_seeds_many_restores(self, protocol):
        ref = _reference(protocol)

        machine = _build(protocol)
        machine.prepare()
        machine.sim.run(until=15)
        snap = machine.snapshot()
        for _ in range(3):
            machine.sim.run()
            assert run_result_to_jsonable(machine.finish()) == ref
            machine.restore(snap)
        machine.sim.run()
        assert run_result_to_jsonable(machine.finish()) == ref

    def test_nested_snapshots_restore_in_any_order(self, protocol):
        ref = _reference(protocol)

        machine = _build(protocol)
        machine.prepare()
        machine.sim.run(until=10)
        early = machine.snapshot()
        machine.sim.run(until=40)
        late = machine.snapshot()

        machine.restore(early)
        machine.sim.run()
        assert run_result_to_jsonable(machine.finish()) == ref

        machine.restore(late)
        machine.sim.run()
        assert run_result_to_jsonable(machine.finish()) == ref


def test_restore_without_factory_raises():
    cfg = MachineConfig(num_procs=2, protocol=Protocol.WI)
    machine = Machine(cfg)
    x = machine.memmap.alloc_word(0, "x")

    def prog(node):
        yield Write(x, node)
        yield Fence()

    machine.spawn(0, prog(0))  # no factory
    machine.spawn(1, prog(1), factory=lambda: prog(1))
    machine.record_histories()
    machine.prepare()
    snap = machine.snapshot()
    with pytest.raises(RuntimeError, match="factory"):
        machine.restore(snap)


def test_restore_without_history_raises():
    cfg = MachineConfig(num_procs=1, protocol=Protocol.WI)
    machine = Machine(cfg)
    x = machine.memmap.alloc_word(0, "x")

    def prog(node):
        yield Write(x, 1)
        yield Fence()

    machine.spawn(0, prog(0), factory=lambda: prog(0))
    # record_histories() deliberately not called
    machine.prepare()
    snap = machine.snapshot()
    with pytest.raises(RuntimeError, match="record_histories"):
        machine.restore(snap)
