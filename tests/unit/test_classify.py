"""Unit tests for the miss and update classifiers.

Each paper category is exercised by a minimal hand-built scenario.
"""

from repro.classify import (
    MissClass, MissClassifier, UpdateClass, UpdateClassifier,
)
from repro.memsys.cache import EvictReason


class TestMissClassifier:
    def test_first_access_is_cold(self):
        mc = MissClassifier()
        mc.record_miss(0, 1, 64)
        assert mc.counts[MissClass.COLD] == 1

    def test_second_node_also_cold(self):
        mc = MissClassifier()
        mc.record_miss(0, 1, 64)
        mc.record_miss(1, 1, 64)
        assert mc.counts[MissClass.COLD] == 2

    def test_true_sharing_immediate(self):
        mc = MissClassifier()
        mc.record_miss(0, 1, 64)                     # cold fill
        mc.record_leave(0, 1, EvictReason.INVALIDATION)
        mc.record_write(1, 64, writer=1)             # remote write, same word
        mc.record_miss(0, 1, 64)                     # re-reference that word
        assert mc.counts[MissClass.TRUE_SHARING] == 1

    def test_false_sharing_resolved_at_next_leave(self):
        mc = MissClassifier()
        mc.record_miss(0, 1, 64)
        mc.record_leave(0, 1, EvictReason.INVALIDATION)
        mc.record_write(1, 68, writer=1)             # remote write, OTHER word
        mc.record_miss(0, 1, 64)                     # miss on word 64
        # still pending; leaves again without touching word 68
        mc.record_leave(0, 1, EvictReason.INVALIDATION)
        assert mc.counts[MissClass.FALSE_SHARING] == 1

    def test_false_sharing_resolved_at_finalize(self):
        mc = MissClassifier()
        mc.record_miss(0, 1, 64)
        mc.record_leave(0, 1, EvictReason.INVALIDATION)
        mc.record_write(1, 68, writer=1)
        mc.record_miss(0, 1, 64)
        mc.finalize()
        assert mc.counts[MissClass.FALSE_SHARING] == 1

    def test_pending_upgraded_to_true_by_later_reference(self):
        mc = MissClassifier()
        mc.record_miss(0, 1, 64)
        mc.record_leave(0, 1, EvictReason.INVALIDATION)
        mc.record_write(1, 68, writer=1)
        mc.record_miss(0, 1, 64)                     # pending (word 64)
        mc.record_reference(0, 1, 68)                # touches remote word
        assert mc.counts[MissClass.TRUE_SHARING] == 1
        assert mc.counts[MissClass.FALSE_SHARING] == 0

    def test_own_write_does_not_make_true_sharing(self):
        mc = MissClassifier()
        mc.record_miss(0, 1, 64)
        mc.record_leave(0, 1, EvictReason.INVALIDATION)
        mc.record_write(1, 64, writer=0)             # our own write
        mc.record_miss(0, 1, 64)
        mc.finalize()
        assert mc.counts[MissClass.TRUE_SHARING] == 0
        assert mc.counts[MissClass.FALSE_SHARING] == 1

    def test_eviction_miss(self):
        mc = MissClassifier()
        mc.record_miss(0, 1, 64)
        mc.record_leave(0, 1, EvictReason.REPLACEMENT)
        mc.record_miss(0, 1, 64)
        assert mc.counts[MissClass.EVICTION] == 1

    def test_flush_counts_as_eviction(self):
        mc = MissClassifier()
        mc.record_miss(0, 1, 64)
        mc.record_leave(0, 1, EvictReason.FLUSH)
        mc.record_miss(0, 1, 64)
        assert mc.counts[MissClass.EVICTION] == 1

    def test_drop_miss(self):
        mc = MissClassifier()
        mc.record_miss(0, 1, 64)
        mc.record_leave(0, 1, EvictReason.DROP)
        mc.record_miss(0, 1, 64)
        assert mc.counts[MissClass.DROP] == 1

    def test_exclusive_requests_separate(self):
        mc = MissClassifier()
        mc.record_upgrade(0, 1)
        assert mc.exclusive_requests == 1
        assert mc.total_misses == 0

    def test_usefulness_partition(self):
        assert MissClass.COLD.useful
        assert MissClass.TRUE_SHARING.useful
        assert not MissClass.FALSE_SHARING.useful
        assert not MissClass.EVICTION.useful
        assert not MissClass.DROP.useful

    def test_miss_rate(self):
        mc = MissClassifier()
        for _ in range(9):
            mc.record_reference(0, 1, 64)
        mc.record_reference(0, 1, 64)
        mc.record_miss(0, 1, 64)
        assert mc.miss_rate() == 0.1
        assert mc.shared_refs == 10

    def test_uncounted_reference(self):
        mc = MissClassifier()
        mc.record_reference(0, 1, 64, count=False)
        assert mc.shared_refs == 0

    def test_as_dict_totals(self):
        mc = MissClassifier()
        mc.record_miss(0, 1, 64)
        mc.record_upgrade(0, 1)
        d = mc.as_dict()
        assert d["cold"] == 1
        assert d["exclusive_requests"] == 1
        assert d["total"] == 1


class TestUpdateClassifier:
    def test_useful_update(self):
        uc = UpdateClassifier()
        uc.record_update(0, 1, 64)
        uc.record_reference(0, 1, 64)
        uc.record_update(0, 1, 64)      # overwrite closes the first
        uc.finalize()
        assert uc.counts[UpdateClass.USEFUL] == 1

    def test_proliferation(self):
        uc = UpdateClassifier()
        uc.record_update(0, 1, 64)
        uc.record_update(0, 1, 64)      # overwritten, never referenced
        uc.finalize()
        assert uc.counts[UpdateClass.PROLIFERATION] == 1
        assert uc.counts[UpdateClass.TERMINATION] == 1  # the second one

    def test_false_sharing_needs_concurrent_other_word_activity(self):
        uc = UpdateClassifier()
        uc.record_update(0, 1, 64)
        uc.record_reference(0, 1, 68)   # other word of same block
        uc.record_update(0, 1, 64)
        uc.finalize()
        assert uc.counts[UpdateClass.FALSE_SHARING] == 1

    def test_termination(self):
        uc = UpdateClassifier()
        uc.record_update(0, 1, 64)
        uc.finalize()
        assert uc.counts[UpdateClass.TERMINATION] == 1

    def test_referenced_then_program_end_is_useful(self):
        uc = UpdateClassifier()
        uc.record_update(0, 1, 64)
        uc.record_reference(0, 1, 64)
        uc.finalize()
        assert uc.counts[UpdateClass.USEFUL] == 1
        assert uc.counts[UpdateClass.TERMINATION] == 0

    def test_replacement(self):
        uc = UpdateClassifier()
        uc.record_update(0, 1, 64)
        uc.record_block_gone(0, 1)      # replaced, unreferenced
        uc.finalize()
        assert uc.counts[UpdateClass.REPLACEMENT] == 1

    def test_referenced_before_replacement_is_useful(self):
        uc = UpdateClassifier()
        uc.record_update(0, 1, 64)
        uc.record_reference(0, 1, 64)
        uc.record_block_gone(0, 1)
        uc.finalize()
        assert uc.counts[UpdateClass.USEFUL] == 1
        assert uc.counts[UpdateClass.REPLACEMENT] == 0

    def test_drop_update_closes_block(self):
        uc = UpdateClassifier()
        uc.record_update(0, 1, 64)      # earlier, unreferenced
        uc.record_drop_update(0, 1, 68)
        uc.finalize()
        assert uc.counts[UpdateClass.DROP] == 1
        assert uc.counts[UpdateClass.REPLACEMENT] == 1

    def test_stale_delivery_is_proliferation(self):
        uc = UpdateClassifier()
        uc.record_stale_update(0, 1)
        assert uc.counts[UpdateClass.PROLIFERATION] == 1
        assert uc.stale_deliveries == 1

    def test_per_node_independence(self):
        uc = UpdateClassifier()
        uc.record_update(0, 1, 64)
        uc.record_update(1, 1, 64)
        uc.record_reference(0, 1, 64)
        uc.finalize()
        assert uc.counts[UpdateClass.USEFUL] == 1
        assert uc.counts[UpdateClass.TERMINATION] == 1

    def test_usefulness_totals(self):
        uc = UpdateClassifier()
        uc.record_update(0, 1, 64)
        uc.record_reference(0, 1, 64)
        uc.record_update(0, 1, 64)
        uc.finalize()
        assert uc.useful_updates() == 1
        assert uc.useless_updates() == 1
        assert uc.total_updates == 2
