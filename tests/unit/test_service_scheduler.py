"""Unit tests for the scheduler: admission, single-flight, deadlines.

Simulation execution is stubbed by overriding ``SimScheduler._execute``
(the documented test seam), so these tests never fork a process pool.
"""

import asyncio

import pytest

from repro.campaign import ResultCache, RunRecord, RunSpec
from repro.config import MachineConfig, Protocol
from repro.service.scheduler import (
    DeadlineExceeded, Draining, QueueFull, SimScheduler,
)


def spec(n: int = 8) -> RunSpec:
    cfg = MachineConfig(num_procs=2, protocol=Protocol.PU)
    return RunSpec.make("lock", cfg, kind="tk", total_acquires=n)


def ok_record(s: RunSpec) -> RunRecord:
    return RunRecord(key=s.key, workload=s.workload, ok=True,
                     metrics={"answer": 1.0})


class FakeScheduler(SimScheduler):
    """Counts executions; optionally blocks until released."""

    def __init__(self, *args, blocking=False, fail=False, **kwargs):
        super().__init__(*args, **kwargs)
        self.calls = []
        self.release = asyncio.Event()
        self.blocking = blocking
        self.fail = fail

    async def _execute(self, s: RunSpec) -> RunRecord:
        self.calls.append(s.key)
        if self.blocking:
            await self.release.wait()
        if self.fail:
            return RunRecord(key=s.key, workload=s.workload, ok=False,
                             error="boom", error_type="ValueError")
        return ok_record(s)


class TestAdmission:
    def test_cache_hit_returns_record(self, tmp_path):
        cache = ResultCache(tmp_path)
        s = spec()
        cache.put(ok_record(s))

        async def go():
            sched = FakeScheduler(jobs=1, cache=cache)
            handle = sched.admit(s)
            assert isinstance(handle, RunRecord)
            assert handle.cached
            rec = await sched.result(handle, 1.0)
            assert rec.key == s.key
            assert sched.calls == []
            assert sched.m_cache.value(result="hit") == 1
        asyncio.run(go())

    def test_miss_executes_and_caches(self, tmp_path):
        cache = ResultCache(tmp_path)
        s = spec()

        async def go():
            sched = FakeScheduler(jobs=1, cache=cache)
            rec = await sched.result(sched.admit(s), 5.0)
            assert rec.ok and sched.calls == [s.key]
            assert sched.m_specs.value(status="executed") == 1
        asyncio.run(go())
        assert cache.get(s) is not None

    def test_single_flight_within_batch_and_across(self):
        async def go():
            sched = FakeScheduler(jobs=1, blocking=True)
            handles = sched.admit_many([spec(), spec(), spec()])
            other = sched.admit(spec())
            assert handles[0] is handles[1] is handles[2] is other
            assert sched.pending == 1
            assert sched.m_dedup.value() == 3
            sched.release.set()
            rec = await sched.result(handles[0], 5.0)
            assert rec.ok and sched.calls == [spec().key]
        asyncio.run(go())

    def test_queue_full_rejects_whole_batch(self):
        async def go():
            sched = FakeScheduler(jobs=1, max_queue=2, blocking=True)
            sched.admit_many([spec(1), spec(2)])
            with pytest.raises(QueueFull) as err:
                sched.admit_many([spec(3), spec(4)])
            assert err.value.retry_after_s >= 1
            # nothing from the rejected batch was admitted
            assert sched.pending == 2
            assert sched.m_rejected.value() == 1
            # joining in-flight work is still allowed when full
            assert sched.admit(spec(1)) is not None
            sched.release.set()
        asyncio.run(go())

    def test_failed_records_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        s = spec()

        async def go():
            sched = FakeScheduler(jobs=1, cache=cache, fail=True)
            rec = await sched.result(sched.admit(s), 5.0)
            assert not rec.ok
            assert sched.m_specs.value(status="failed") == 1
        asyncio.run(go())
        assert cache.get(s) is None

    def test_draining_rejects_admission(self):
        async def go():
            sched = FakeScheduler(jobs=1)
            await sched.drain(grace_s=0.1)
            with pytest.raises(Draining):
                sched.admit(spec())
        asyncio.run(go())


class TestDeadline:
    def test_deadline_aborts_wait_not_sim(self, tmp_path):
        cache = ResultCache(tmp_path)
        s = spec()

        async def go():
            sched = FakeScheduler(jobs=1, cache=cache, blocking=True)
            handle = sched.admit(s)
            with pytest.raises(DeadlineExceeded):
                await sched.result(handle, 0.05)
            # the simulation is still in flight and finishes normally
            assert sched.inflight_key(s.key) is not None
            sched.release.set()
            rec = await sched.result(sched.admit(s), 5.0)
            assert rec.ok
        asyncio.run(go())
        assert cache.get(s) is not None

    def test_no_deadline_waits(self):
        async def go():
            sched = FakeScheduler(jobs=1)
            rec = await sched.result(sched.admit(spec()), None)
            assert rec.ok
        asyncio.run(go())


class TestDrain:
    def test_drain_finishes_inflight(self):
        async def go():
            sched = FakeScheduler(jobs=1, blocking=True)
            handle = sched.admit(spec())
            asyncio.get_running_loop().call_later(
                0.05, sched.release.set)
            clean = await sched.drain(grace_s=5.0)
            assert clean
            rec = await sched.result(handle, 1.0)
            assert rec.ok
        asyncio.run(go())

    def test_drain_grace_can_expire(self):
        async def go():
            sched = FakeScheduler(jobs=1, blocking=True)
            sched.admit(spec())
            clean = await sched.drain(grace_s=0.05)
            assert not clean
            sched.release.set()
        asyncio.run(go())


class TestMetricsFlow:
    def test_gauges_track_pending(self):
        async def go():
            sched = FakeScheduler(jobs=1, blocking=True)
            sched.admit_many([spec(1), spec(2), spec(3)])
            await asyncio.sleep(0)      # let tasks reach _execute
            assert sched.pending == 3
            assert sched.running == 1           # jobs=1 semaphore
            assert sched.m_queue.value() == 2
            assert sched.m_inflight.value() == 1
            sched.release.set()
            recs = [await sched.result(h, 5.0)
                    for h in sched.admit_many([spec(1), spec(2),
                                               spec(3)])]
            assert all(r.ok for r in recs)
            assert sched.pending == 0
            assert sched.m_latency.count() == 3
        asyncio.run(go())

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            SimScheduler(jobs=0)
        with pytest.raises(ValueError):
            SimScheduler(max_queue=0)
