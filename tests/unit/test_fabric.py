"""Unit tests for the network fabric (latency model + contention)."""

import pytest

from repro.config import MachineConfig
from repro.engine import Simulator
from repro.network import Message, MsgType, Network


def make_net(num_procs=8, **kw):
    sim = Simulator()
    cfg = MachineConfig(num_procs=num_procs, **kw)
    return sim, cfg, Network(sim, cfg)


def sink(log):
    return lambda msg: log.append(msg)


class TestSizes:
    def test_ctrl_message_size(self):
        _, cfg, net = make_net()
        msg = Message(MsgType.READ_REQ, 0, 1, 0)
        assert net.size_of(msg) == cfg.ctrl_msg_bytes

    def test_block_data_message_size(self):
        _, cfg, net = make_net()
        msg = Message(MsgType.READ_REPLY, 0, 1, 0)
        assert net.size_of(msg) == cfg.header_bytes + cfg.block_size_bytes

    def test_word_message_size(self):
        _, cfg, net = make_net()
        msg = Message(MsgType.UPD_PROP, 0, 1, 0)
        assert net.size_of(msg) == cfg.header_bytes + cfg.word_size_bytes

    def test_flit_count_rounds_up(self):
        _, _, net = make_net()
        assert net.flits_of(3) == 2
        assert net.flits_of(4) == 2
        assert net.flits_of(5) == 3


class TestLatency:
    def test_uncontended_remote_latency(self):
        sim, cfg, net = make_net()
        log = []
        for n in range(8):
            net.register(n, sink(log))
        # 0 -> 1 in a 4x2 mesh: 1 hop
        msg = Message(MsgType.READ_REQ, 0, 1, 0)
        net.send(msg)
        sim.run()
        flits = net.flits_of(cfg.ctrl_msg_bytes)
        expected = flits + cfg.switch_delay_cycles * 1 + flits
        assert sim.now == expected
        assert log == [msg]

    def test_latency_grows_with_distance(self):
        _, _, net = make_net(num_procs=32)
        near = net.latency(0, 1, 8)
        far = net.latency(0, 31, 8)
        assert far > near

    def test_local_message_cheaper_than_remote(self):
        sim, cfg, net = make_net()
        log = []
        for n in range(8):
            net.register(n, sink(log))
        net.send(Message(MsgType.READ_REQ, 2, 2, 0))
        sim.run()
        local_time = sim.now
        assert local_time < net.latency(0, 7, cfg.ctrl_msg_bytes)

    def test_bigger_messages_take_longer(self):
        _, cfg, net = make_net()
        small = net.latency(0, 5, cfg.ctrl_msg_bytes)
        big = net.latency(0, 5, cfg.data_msg_bytes)
        assert big > small


class TestOrderingAndContention:
    def test_fifo_per_destination_same_source(self):
        sim, _, net = make_net()
        log = []
        for n in range(8):
            net.register(n, sink(log))
        m1 = Message(MsgType.READ_REPLY, 0, 5, 0)   # big, slow
        m2 = Message(MsgType.READ_REQ, 0, 5, 1)     # small, fast
        net.send(m1)
        net.send(m2)
        sim.run()
        assert [m.block for m in log] == [0, 1]

    def test_remote_deliveries_ordered_by_send_order(self):
        """Two remote senders to one destination: the earlier send
        arrives first (FIFO NIC sink)."""
        sim, _, net = make_net()
        log = []
        for n in range(8):
            net.register(n, sink(log))
        far = Message(MsgType.READ_REPLY, 7, 4, 0)   # sent first
        near = Message(MsgType.READ_REQ, 5, 4, 1)    # sent second
        net.send(far)
        net.send(near)
        sim.run()
        assert [m.block for m in log] == [0, 1]

    def test_source_serialization_delays_second_message(self):
        sim, cfg, net = make_net()
        log = []
        for n in range(8):
            net.register(n, sink(log))
        # two messages from node 0 to different destinations: the second
        # waits for the first to clear the egress NIC
        t_single = net.latency(0, 3, cfg.ctrl_msg_bytes)
        net.send(Message(MsgType.READ_REQ, 0, 1, 0))
        net.send(Message(MsgType.READ_REQ, 0, 3, 1))
        sim.run()
        assert sim.now > t_single

    def test_local_message_queues_behind_egress_burst(self):
        """A node-local message still serializes through the NIC/bus
        behind earlier outgoing messages (update fan-out effect)."""
        sim, cfg, net = make_net()
        times = {}
        for n in range(8):
            net.register(n, lambda m, n=n: times.setdefault(m.block, sim.now))
        for i in range(5):
            net.send(Message(MsgType.UPD_PROP, 0, i + 1, i))
        local = Message(MsgType.UPD_PROP, 0, 0, 99)
        net.send(local)
        sim.run()
        flits = net.flits_of(cfg.word_msg_bytes)
        assert local.send_time == 0
        # departs only after the 5 earlier messages cleared the egress
        assert times[99] >= 5 * flits + flits + cfg.local_hop_cycles

    def test_local_message_alone_is_fast(self):
        sim, cfg, net = make_net()
        times = {}
        for n in range(8):
            net.register(n, lambda m: times.setdefault(m.block, sim.now))
        net.send(Message(MsgType.UPD_PROP, 0, 0, 7))
        sim.run()
        flits = net.flits_of(cfg.word_msg_bytes)
        assert times[7] == flits + cfg.local_hop_cycles

    def test_uncontended_remote_message_counts_no_contention(self):
        """Regression: dst-side queuing must be computed against the
        destination NIC's busy-until time *before* the message occupies
        it.  The old code updated ``_dst_free`` first and then compared
        the head arrival against its own delivery time, so the dst-side
        branch was always taken; a single uncontended remote message
        must record zero contention cycles."""
        sim, _, net = make_net()
        log = []
        for n in range(8):
            net.register(n, sink(log))
        net.send(Message(MsgType.READ_REQ, 0, 1, 0))
        sim.run()
        assert net.stats.contention_cycles == 0

    def test_dst_contention_counts_queue_wait(self):
        """Two equidistant senders to one destination: the second
        message queues behind the first for exactly its serialization
        time."""
        sim, cfg, net = make_net()
        log = []
        for n in range(8):
            net.register(n, sink(log))
        # nodes 1 and 4 are both one hop from node 0 in the 4x2 mesh
        net.send(Message(MsgType.READ_REQ, 1, 0, 0))
        net.send(Message(MsgType.READ_REQ, 4, 0, 1))
        sim.run()
        flits = net.flits_of(cfg.ctrl_msg_bytes)
        # both heads arrive at flits + switch_delay; the second streams
        # in only after the first clears the ingress NIC (flits cycles)
        assert net.stats.contention_cycles == flits

    def test_src_contention_counts_egress_wait(self):
        """Back-to-back sends from one node: the second waits for the
        egress NIC for the first's serialization time."""
        sim, cfg, net = make_net()
        log = []
        for n in range(8):
            net.register(n, sink(log))
        net.send(Message(MsgType.READ_REQ, 0, 1, 0))
        net.send(Message(MsgType.READ_REQ, 0, 2, 1))
        sim.run()
        flits = net.flits_of(cfg.ctrl_msg_bytes)
        # second message: src-side wait == flits; its head then arrives
        # at a different destination, so no dst-side queuing
        assert net.stats.contention_cycles == flits

    def test_stats_counting(self):
        sim, cfg, net = make_net()
        for n in range(8):
            net.register(n, sink([]))
        net.send(Message(MsgType.READ_REQ, 0, 1, 0))
        net.send(Message(MsgType.READ_REPLY, 1, 1, 0))
        sim.run()
        assert net.stats.messages == 2
        assert net.stats.local_messages == 1
        assert net.stats.by_type[MsgType.READ_REQ] == 1
        assert net.stats.bytes == (cfg.ctrl_msg_bytes
                                   + cfg.data_msg_bytes)


class TestRegistration:
    def test_double_registration_rejected(self):
        _, _, net = make_net()
        net.register(0, lambda m: None)
        with pytest.raises(ValueError):
            net.register(0, lambda m: None)

    def test_unregistered_destination_raises(self):
        sim, _, net = make_net()
        net.send(Message(MsgType.READ_REQ, 0, 1, 0))
        with pytest.raises(RuntimeError):
            sim.run()
