"""The spec-graph explorer: exhaustive product-graph exploration on
the tables alone.  WI and MESI explore in a couple of seconds each, so
they anchor the unit suite; the slower PU/CU/hybrid runs and the full
four-mutation cross-validation live in
``tests/integration/test_graph_modelcheck.py``."""

from __future__ import annotations

import json

import pytest

from repro.protospec import get_spec
from repro.staticcheck import (
    DEFAULT_SUPPRESSIONS, SPEC_MUTATIONS, apply_spec_mutation,
    check_spec_graph, explore_spec, load_suppressions,
)


@pytest.fixture(scope="module")
def wi_result():
    return check_spec_graph("wi")


@pytest.fixture(scope="module")
def mesi_result():
    return check_spec_graph("mesi")


@pytest.fixture(scope="module")
def mutated_wi_result():
    spec = apply_spec_mutation(get_spec("wi"),
                               "wi-skip-invalidation")
    return check_spec_graph("wi", spec)


def _errors(findings):
    return [f for f in findings if f.severity == "error"]


def _warns(findings):
    return [f for f in findings if f.severity == "warn"]


@pytest.mark.parametrize("fixture", ["wi_result", "mesi_result"])
def test_pristine_graph_has_no_errors(fixture, request):
    findings, graph = request.getfixturevalue(fixture)
    assert _errors(findings) == []
    assert graph["counterexamples"] == []
    assert not any(run["truncated"] for run in graph["runs"])


@pytest.mark.parametrize("fixture", ["wi_result", "mesi_result"])
def test_residual_warns_are_all_suppressed_by_the_manifest(
        fixture, request):
    """Every dead-row warning the explorer leaves behind must carry a
    written justification in the shipped suppression manifest."""
    findings, _ = request.getfixturevalue(fixture)
    manifest = load_suppressions(DEFAULT_SUPPRESSIONS)
    for f in _warns(findings):
        assert f.ident in manifest, (
            f"unsuppressed graph warning: {f.ident}: {f.detail}")


def test_full_state_and_row_coverage_on_wi(wi_result):
    """Modulo the manifest's defensive rows, exploration visits every
    state on both sides."""
    _, graph = wi_result
    spec = get_spec("wi")
    for side in spec.sides:
        visited = set(graph["coverage"][side.name]["states_visited"])
        assert visited == set(side.states)


def test_mutated_wi_yields_staleness_counterexample(mutated_wi_result):
    findings, graph = mutated_wi_result
    errors = _errors(findings)
    assert errors, "wi-skip-invalidation escaped the explorer"
    expect = SPEC_MUTATIONS["wi-skip-invalidation"].expect
    kinds = {f.ident.split("/")[1][len("graph-"):] for f in errors}
    assert kinds & set(expect)
    assert graph["counterexamples"]


def test_counterexample_paths_carry_file_line_attribution(
        mutated_wi_result):
    """Each counterexample step names the table row that fired, down to
    the file:line of its definition, and the whole report is JSON."""
    _, graph = mutated_wi_result
    json.dumps(graph)
    ce = graph["counterexamples"][0]
    assert ce["kind"] and ce["run"] and ce["steps"]
    located = 0
    for step in ce["steps"]:
        for row in step.get("rows", ()):
            assert row["side"] in ("cache", "home")
            assert row["state"] and row["event"]
            if row.get("file"):
                assert row["line"] > 0
                assert row["file"].endswith(".py")
                located += 1
    assert located, "no step row located back to its table source"


def test_truncation_is_reported_not_silent():
    ex = explore_spec(get_spec("wi"), max_states=50)
    assert ex.truncated


def test_unknown_protocol_raises():
    with pytest.raises((KeyError, ValueError)):
        check_spec_graph("dragon")


def test_unknown_mutation_raises():
    with pytest.raises(KeyError):
        apply_spec_mutation(get_spec("wi"), "no-such-mutation")


def test_mutations_target_existing_rows():
    """Every registered mutation changes the spec it claims to target
    (an apply that returns the spec unchanged tests nothing)."""
    for name, mut in SPEC_MUTATIONS.items():
        spec = get_spec(mut.protocol)
        assert apply_spec_mutation(spec, name).dumps() != spec.dumps()
        assert mut.expect
