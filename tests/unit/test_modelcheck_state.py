"""Unit tests for the canonical state encoder: determinism, state
sensitivity, and node/word symmetry merging."""

from __future__ import annotations

from repro.config import Protocol
from repro.modelcheck import canonical_key, get_program
from repro.modelcheck.explorer import _build
from repro.modelcheck.state import encode_machine


def _machine(name: str = "sb", protocol: Protocol = Protocol.WI):
    litmus = get_program(name)
    config = litmus.config(protocol)
    return _build(litmus, config, max_events=50_000)


def _advance(machine, histories, first_choice: int, steps: int):
    """Prepare the machine and take ``steps`` events, using
    ``first_choice`` at the first same-cycle tie and 0 afterwards."""
    taken = {"n": 0}

    def chooser(batch):
        taken["n"] += 1
        return first_choice if taken["n"] == 1 else 0

    machine.sim.chooser = chooser
    machine.prepare()
    for _ in range(steps):
        machine.sim.step()


def test_key_is_deterministic():
    machine, built, histories, syms = _machine()
    machine.prepare()
    pending = machine.sim.pending_snapshot()
    k1 = canonical_key(machine, pending, syms, histories)
    k2 = canonical_key(machine, pending, syms, histories)
    assert k1 is not None
    assert k1 == k2


def test_identical_runs_share_a_key():
    keys = []
    for _ in range(2):
        machine, built, histories, syms = _machine()
        _advance(machine, histories, first_choice=0, steps=2)
        keys.append(canonical_key(machine, machine.sim.pending_snapshot(),
                                  syms, histories))
    assert keys[0] is not None
    assert keys[0] == keys[1]


def test_key_tracks_machine_state():
    machine, built, histories, syms = _machine()
    machine.prepare()
    before = canonical_key(machine, machine.sim.pending_snapshot(), syms,
                           histories)
    machine.sim.step()
    after = canonical_key(machine, machine.sim.pending_snapshot(), syms,
                          histories)
    assert before != after


def test_symmetry_merges_mirror_states():
    """sb is symmetric under swapping the two nodes together with the
    two variables: executing node 0 first and node 1 first yields
    mirror-image states with the same canonical key -- but different
    raw encodings."""
    encodings, keys = [], []
    for first in (0, 1):
        machine, built, histories, syms = _machine()
        _advance(machine, histories, first_choice=first, steps=1)
        pending = machine.sim.pending_snapshot()
        encodings.append(repr(encode_machine(machine, pending,
                                             histories)))
        keys.append(canonical_key(machine, pending, syms, histories))
    assert encodings[0] != encodings[1]
    assert keys[0] == keys[1]


def test_without_symmetry_mirror_states_stay_distinct():
    keys = []
    for first in (0, 1):
        machine, built, histories, syms = _machine()
        _advance(machine, histories, first_choice=first, steps=1)
        keys.append(canonical_key(machine, machine.sim.pending_snapshot(),
                                  (), histories))
    assert keys[0] != keys[1]
