"""Tests for the processor-state timeline instrumentation."""

from repro.config import MachineConfig, Protocol
from repro.isa.ops import Compute, Fence, Read, SpinUntil, Write
from repro.metrics.timeline import CpuState, Timeline
from repro.runtime import Machine

from tests.conftest import make_machine


def run_instrumented(protocol=Protocol.WI):
    m = make_machine(2, protocol)
    tl = Timeline(m.sim)
    addr = m.memmap.alloc_word(0)

    def worker():
        yield Compute(100)
        yield Write(addr, 1)
        yield Fence()

    def waiter():
        yield SpinUntil(addr, lambda v: v == 1)
        yield Compute(50)

    m.spawn(0, tl.instrument(0, worker()))
    m.spawn(1, tl.instrument(1, waiter()))
    result = m.run()
    return m, tl, result


class TestTimeline:
    def test_intervals_cover_states(self):
        m, tl, result = run_instrumented()
        states0 = {iv.state for iv in tl.intervals(0)}
        assert CpuState.COMPUTE in states0
        states1 = {iv.state for iv in tl.intervals(1)}
        assert CpuState.SPIN in states1

    def test_intervals_ordered_and_disjoint(self):
        m, tl, _ = run_instrumented()
        for node in (0, 1):
            ivs = tl.intervals(node)
            for a, b in zip(ivs, ivs[1:]):
                assert a.end <= b.start
                assert a.start < a.end

    def test_state_fractions_sum_to_one(self):
        m, tl, _ = run_instrumented()
        for node in (0, 1):
            fr = tl.state_fractions(node)
            assert abs(sum(fr.values()) - 1.0) < 1e-9

    def test_spinner_mostly_spins(self):
        m, tl, _ = run_instrumented()
        fr = tl.state_fractions(1)
        assert fr.get(CpuState.SPIN, 0) > 0.5

    def test_render_has_one_row_per_processor(self):
        m, tl, _ = run_instrumented()
        text = tl.render(width=40)
        lines = text.splitlines()
        assert any(line.startswith("p0") for line in lines)
        assert any(line.startswith("p1") for line in lines)
        assert "compute" in lines[-1]

    def test_render_empty(self):
        m = make_machine(1, Protocol.WI)
        tl = Timeline(m.sim)
        assert "empty" in tl.render()

    def test_instrumented_program_unchanged_semantics(self):
        """Instrumentation must not alter results or timing."""
        def build(instrument):
            m = make_machine(2, Protocol.PU)
            tl = Timeline(m.sim)
            addr = m.memmap.alloc_word(0)
            got = []

            def prog(node):
                yield Write(addr, node + 1)
                v = yield Read(addr)
                got.append(v)
                yield Compute(10)
                yield Fence()

            for node in range(2):
                p = prog(node)
                m.spawn(node, tl.instrument(node, p) if instrument
                        else p)
            r = m.run()
            return r.total_cycles, r.misses

        assert build(True) == build(False)


class TestJsonShape:
    """Timeline JSON shape (streamed by the service; keep it stable)."""

    def test_top_level_shape(self):
        import json as _json

        m, tl, _ = run_instrumented()
        blob = _json.loads(_json.dumps(tl.to_jsonable()))
        assert set(blob) == {"horizon", "procs"}
        assert blob["horizon"] == m.sim.now
        assert set(blob["procs"]) == {"0", "1"}   # string node keys

    def test_per_proc_shape(self):
        m, tl, _ = run_instrumented()
        blob = tl.to_jsonable()
        for node in ("0", "1"):
            proc = blob["procs"][node]
            assert set(proc) == {"intervals", "fractions"}
            for iv in proc["intervals"]:
                assert set(iv) == {"start", "end", "state"}
                assert isinstance(iv["start"], int)
                assert isinstance(iv["end"], int)
                assert iv["start"] < iv["end"]
                assert CpuState(iv["state"])    # valid enum value
            assert abs(sum(proc["fractions"].values()) - 1.0) < 1e-9

    def test_intervals_match_accessors(self):
        m, tl, _ = run_instrumented()
        blob = tl.to_jsonable()
        direct = [iv.to_jsonable() for iv in tl.intervals(0)]
        assert blob["procs"]["0"]["intervals"] == direct

    def test_horizon_override(self):
        m, tl, _ = run_instrumented()
        assert tl.to_jsonable(until=123)["horizon"] == 123
