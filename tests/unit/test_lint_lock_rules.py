"""Unit tests for the lock-discipline lint rules (L5 double-acquire,
L6 acquire-without-release)."""

from __future__ import annotations

from repro.checkers import run_lint
from repro.config import MachineConfig, Protocol
from repro.isa.ops import Fence, FetchStore, Read, SpinUntil, Write
from repro.runtime import Machine
from repro.sync.locks import TicketLock


def _machine(procs: int = 2) -> Machine:
    return Machine(MachineConfig(num_procs=procs, protocol=Protocol.WI))


def _free(v) -> bool:
    return v == 0


def _tas_lock(machine):
    """A plain test-and-set flag lock word."""
    mm = machine.memmap
    lock = mm.alloc_word(0, "lock")
    mm.mark_sync(lock)
    mm.mark_release(lock, predicate=_free)
    return lock


def test_tas_lock_acquire_release_is_clean():
    machine = _machine()
    lock = _tas_lock(machine)
    counter = machine.memmap.alloc_word(0, "counter")

    def program(node):
        for _ in range(2):
            yield SpinUntil(lock, _free)
            yield FetchStore(lock, 1)
            value = yield Read(counter)
            yield Write(counter, value + 1)
            yield Fence()
            yield Write(lock, 0)

    report = run_lint(machine.memmap, [(n, program(n)) for n in (0, 1)])
    assert not report.by_rule("double-acquire"), report.render()
    assert not report.by_rule("acquire-without-release"), report.render()


def test_double_acquire_is_flagged():
    machine = _machine(1)
    lock = _tas_lock(machine)

    def program(node):
        yield SpinUntil(lock, _free)
        yield Fence()
        # BUG: re-enters the acquire protocol while still holding the
        # lock (no release action since the first spin-ok)
        yield SpinUntil(lock, _free)
        yield Fence()
        yield Write(lock, 0)

    report = run_lint(machine.memmap, [(0, program(0))])
    found = report.by_rule("double-acquire")
    assert len(found) == 1, report.render()
    assert found[0].node == 0
    assert found[0].word == machine.memmap.config.word_of(lock)
    assert not report.by_rule("acquire-without-release")


def test_acquire_without_release_is_flagged():
    machine = _machine(1)
    lock = _tas_lock(machine)
    counter = machine.memmap.alloc_word(0, "counter")

    def program(node):
        yield SpinUntil(lock, _free)
        value = yield Read(counter)
        yield Write(counter, value + 1)
        yield Fence()
        # BUG: the critical section never ends

    report = run_lint(machine.memmap, [(0, program(0))])
    found = report.by_rule("acquire-without-release")
    assert len(found) == 1, report.render()
    assert found[0].word == machine.memmap.config.word_of(lock)
    assert not report.by_rule("double-acquire")


def test_atomic_release_on_sync_word_is_not_flagged():
    """MCS-style release: the holder CASes a sync word (the queue
    tail) instead of storing to the word it spun on."""
    machine = _machine(1)
    lock = _tas_lock(machine)
    tail = machine.memmap.alloc_word(0, "tail")
    machine.memmap.mark_sync(tail)

    def program(node):
        yield SpinUntil(lock, _free)
        yield Fence()
        yield FetchStore(tail, 0)      # tail-CAS hands the lock over

    report = run_lint(machine.memmap, [(0, program(0))])
    assert not report.by_rule("acquire-without-release"), report.render()


def test_handoff_store_by_peer_is_not_flagged():
    """Someone else storing to the acquired word counts as handing the
    lock onward on the holder's behalf."""
    machine = _machine()
    lock = _tas_lock(machine)

    def holder(node):
        yield SpinUntil(lock, _free)
        yield Fence()

    def granter(node):
        yield Fence()
        yield Write(lock, 0)           # releases on the holder's behalf

    report = run_lint(machine.memmap, [(0, holder(0)), (1, granter(1))])
    assert not report.by_rule("acquire-without-release"), report.render()


def test_ticket_lock_has_no_lock_discipline_findings():
    machine = _machine()
    lock = TicketLock(machine)
    counter = machine.memmap.alloc_word(0, "counter")

    def program(node):
        token = yield from lock.acquire(node)
        value = yield Read(counter)
        yield Write(counter, value + 1)
        yield from lock.release(node, token)

    report = run_lint(machine.memmap, [(n, program(n)) for n in (0, 1)])
    assert not report.by_rule("double-acquire"), report.render()
    assert not report.by_rule("acquire-without-release"), report.render()
