"""Unit tests for the processor front-end (op dispatch, spin-wait
semantics, accounting)."""

import pytest

from repro.config import MachineConfig, Protocol
from repro.isa.ops import (
    CallHook, Compute, Fence, FetchAdd, Read, SpinUntil, Write,
)
from repro.runtime import Machine

from tests.conftest import make_machine, run_programs


class TestDispatch:
    def test_instruction_count(self, protocol):
        m = make_machine(1, protocol)
        addr = m.memmap.alloc_word(0)

        def prog():
            yield Compute(5)
            yield Write(addr, 1)
            yield Read(addr)
            yield Fence()

        proc = m.spawn(0, prog())
        m.run()
        assert proc.instructions == 4
        assert proc.done
        assert proc.done_time == m.sim.now

    def test_non_op_yield_raises(self, protocol):
        m = make_machine(1, protocol)

        def prog():
            yield "not an op"

        m.spawn(0, prog())
        with pytest.raises(TypeError, match="non-Op"):
            m.run()

    def test_compute_advances_exact_cycles(self, protocol):
        m = make_machine(1, protocol)
        times = []

        def prog():
            t0 = m.sim.now
            yield Compute(17)
            times.append(m.sim.now - t0)

        m.spawn(0, prog())
        m.run()
        assert times == [17]

    def test_callhook_receives_processor(self, protocol):
        m = make_machine(1, protocol)
        seen = []

        def prog():
            got = yield CallHook(
                lambda proc, resume: (seen.append(proc.node),
                                      resume("hello")))
            assert got == "hello"

        m.spawn(0, prog())
        m.run()
        assert seen == [0]

    def test_double_start_rejected(self, protocol):
        m = make_machine(1, protocol)

        def prog():
            yield Compute(1)

        proc = m.spawn(0, prog())
        m.run()
        with pytest.raises(RuntimeError):
            proc.start()


class TestSpinSemantics:
    def test_spin_satisfied_immediately_costs_little(self, protocol):
        m = make_machine(2, protocol)
        addr = m.memmap.alloc_word(0, init=5)
        times = []

        def prog():
            yield Read(addr)               # warm the cache
            t0 = m.sim.now
            v = yield SpinUntil(addr, lambda v: v == 5)
            times.append(m.sim.now - t0)
            assert v == 5

        def other():
            yield Compute(1)

        run_programs(m, prog(), other())
        assert times[0] <= 3

    def test_spin_wakeup_counter(self, protocol):
        m = make_machine(2, protocol)
        addr = m.memmap.alloc_word(0)

        def spinner():
            yield SpinUntil(addr, lambda v: v == 3)

        def writer():
            for i in range(1, 4):
                yield Compute(200)
                yield Write(addr, i)
                yield Fence()

        proc = m.spawn(0, spinner())
        m.spawn(1, writer())
        m.run()
        # one wakeup per observed change (some may coalesce)
        assert 1 <= proc.spin_wakeups <= 3

    def test_spin_value_is_the_satisfying_one(self, protocol):
        m = make_machine(2, protocol)
        addr = m.memmap.alloc_word(0)
        got = []

        def spinner():
            v = yield SpinUntil(addr, lambda v: v >= 2)
            got.append(v)

        def writer():
            yield Compute(100)
            yield Write(addr, 1)
            yield Compute(100)
            yield Write(addr, 2)
            yield Compute(100)
            yield Write(addr, 9)
            yield Fence()

        m.spawn(0, spinner())
        m.spawn(1, writer())
        m.run()
        assert got[0] in (2, 9)

    def test_spin_on_own_pending_write(self, protocol):
        """A processor spinning on a word it just wrote must see its
        own buffered value (write-buffer forwarding)."""
        m = make_machine(1, protocol)
        addr = m.memmap.alloc_word(0)

        def prog():
            yield Write(addr, 1)
            v = yield SpinUntil(addr, lambda v: v == 1)
            assert v == 1

        m.spawn(0, prog())
        m.run()

    def test_two_spinners_one_writer(self, protocol):
        m = make_machine(3, protocol)
        addr = m.memmap.alloc_word(0)
        woke = []

        def spinner(tag):
            yield SpinUntil(addr, lambda v: v == 1)
            woke.append(tag)

        def writer():
            yield Compute(500)
            yield Write(addr, 1)
            yield Fence()

        m.spawn(0, spinner("a"))
        m.spawn(1, spinner("b"))
        m.spawn(2, writer())
        m.run()
        assert sorted(woke) == ["a", "b"]


class TestAccounting:
    def test_done_times_monotone_with_work(self, protocol):
        m = make_machine(2, protocol)

        def short():
            yield Compute(10)

        def long():
            yield Compute(500)

        p1 = m.spawn(0, short())
        p2 = m.spawn(1, long())
        m.run()
        assert p1.done_time < p2.done_time

    def test_failure_recorded(self, protocol):
        m = make_machine(1, protocol)

        def prog():
            yield Compute(1)
            raise RuntimeError("boom")

        proc = m.spawn(0, prog())
        with pytest.raises(RuntimeError, match="boom"):
            m.run()
        assert proc.failure is not None

    def test_current_op_exposes_blocked_operation(self, protocol):
        """The public attribution hook: while a thread is blocked,
        ``current_op`` is the operation it is blocked on (deadlock
        reports are built from it)."""
        m = make_machine(1, protocol)
        flag = m.memmap.alloc_word(0)
        m.memmap.mark_sync(flag)

        def prog():
            yield SpinUntil(flag, lambda v: v == 1)   # never satisfied

        proc = m.spawn(0, prog())
        assert proc.current_op is None                # not started yet
        m.run(until=2000)
        op = proc.current_op
        assert isinstance(op, SpinUntil)
        assert op.addr == flag

    def test_deadlock_report_uses_current_op(self, protocol):
        from repro.engine import DeadlockError

        m = make_machine(1, protocol)
        flag = m.memmap.alloc_word(0)
        m.memmap.mark_sync(flag)

        def prog():
            yield SpinUntil(flag, lambda v: v == 2)

        proc = m.spawn(0, prog())
        with pytest.raises(DeadlockError) as exc_info:
            m.run()
        (stuck,) = exc_info.value.stuck
        assert stuck.node == 0
        assert stuck.op == repr(proc.current_op)
