"""Property test: the calendar/bucket queue is order-equivalent to a
plain ``(when, seq)`` heap.

:class:`~repro.engine.Simulator` stores events in per-cycle ring
buckets with an occupancy bitmask and an overflow heap for far-future
events.  Its observable contract is unchanged from the classic heap
implementation: events fire in ``(when, scheduling order)`` order,
``run(until=...)`` parks the clock at ``until`` without dispatching
past it, and ``stop()`` halts after the current event with the rest of
the queue intact.

Hypothesis drives both implementations through the same randomized
script -- initial events, callback-time rescheduling through both
``schedule`` and ``at``, far-future delays that overflow the ring, an
optional ``until`` horizon and an optional mid-run ``stop()`` -- and
requires identical fire logs, clocks and event counts.
"""

import heapq

from hypothesis import given, settings, strategies as st

from repro.engine import Simulator
from repro.engine.simulator import _RING


class HeapSim:
    """Reference implementation: the classic ``(when, seq)`` heap."""

    def __init__(self):
        self.now = 0
        self.events_processed = 0
        self._q = []
        self._seq = 0
        self._stopped = False

    def schedule(self, delay, fn, *args):
        assert delay >= 0
        self._seq += 1
        heapq.heappush(self._q, (self.now + delay, self._seq, fn, args))

    def at(self, when, fn, *args):
        assert when >= self.now
        self._seq += 1
        heapq.heappush(self._q, (when, self._seq, fn, args))

    def stop(self):
        self._stopped = True

    @property
    def pending_events(self):
        return len(self._q)

    def run(self, until=None):
        self._stopped = False
        while self._q and not self._stopped:
            if until is not None and self._q[0][0] > until:
                self.now = until
                return
            when, _seq, fn, args = heapq.heappop(self._q)
            self.now = when
            self.events_processed += 1
            fn(*args)


#: (initial delay, [child delays]) -- children are scheduled from the
#: parent's callback, alternating schedule()/at(); delays beyond
#: ``_RING`` exercise the overflow heap and horizon advance
_EVENT = st.tuples(
    st.integers(min_value=0, max_value=3 * _RING),
    st.lists(st.integers(min_value=0, max_value=3 * _RING), max_size=3),
)


def _drive(sim, events, until, stop_at):
    """Run ``events`` on ``sim``; return the observable trace."""
    log = []
    fired = [0]

    def child(label):
        log.append((sim.now, label))

    def parent(i, children):
        log.append((sim.now, i))
        fired[0] += 1
        if fired[0] == stop_at:
            sim.stop()
        for j, delay in enumerate(children):
            label = (i, j)
            if j % 2:
                sim.at(sim.now + delay, child, label)
            else:
                sim.schedule(delay, child, label)

    for i, (delay, children) in enumerate(events):
        sim.schedule(delay, parent, i, children)

    if until is not None:
        sim.run(until=until)
        log.append(("until-mark", sim.now))
    # drain, resuming as long as stop() left events behind
    while sim.pending_events:
        sim.run()
    return log, sim.now, sim.events_processed


@settings(max_examples=80, deadline=None)
@given(
    events=st.lists(_EVENT, max_size=16),
    until=st.one_of(st.none(), st.integers(min_value=0,
                                           max_value=4 * _RING)),
    stop_at=st.one_of(st.none(), st.integers(min_value=1, max_value=8)),
)
def test_calendar_queue_matches_heap_order(events, until, stop_at):
    ref = _drive(HeapSim(), events, until, stop_at)
    got = _drive(Simulator(), events, until, stop_at)
    assert got == ref
