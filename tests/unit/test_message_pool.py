"""Message-pool correctness: recycling, freeze/drain interop with
snapshots, debug poisoning, and the ``--profile`` stats surface."""

import pytest

from repro.config import MachineConfig
from repro.engine import ControlledSimulator, Simulator
from repro.network.fabric import Network
from repro.network.messages import MessagePool, MsgType
from repro.runtime import Machine


def _fabric(pool_debug: bool = False, controlled: bool = False):
    """A 2-node fabric with collecting handlers on both nodes."""
    sim = ControlledSimulator() if controlled else Simulator()
    cfg = MachineConfig(num_procs=2, cache_size_bytes=1024,
                        pool_debug=pool_debug)
    net = Network(sim, cfg)
    inbox = []
    net.register(0, inbox.append)
    net.register(1, inbox.append)
    return sim, net, inbox


class TestRecycling:
    def test_release_then_reuse_returns_same_object(self):
        sim, net, inbox = _fabric()
        net.post(MsgType.READ_REQ, 0, 1, block=5, word=8)
        sim.run()
        (msg,) = inbox
        assert msg.block == 5 and msg.word == 8
        net.release(msg)
        assert msg.in_pool

        net.post(MsgType.READ_REQ, 1, 0, block=7, word=12, requester=1)
        sim.run()
        reused = inbox[1]
        assert reused is msg                     # recycled, not rebuilt
        assert not reused.in_pool
        assert (reused.src, reused.dst) == (1, 0)
        assert reused.block == 7 and reused.word == 12
        assert net.pool.reused == 1

    def test_release_drops_payload_references(self):
        sim, net, inbox = _fabric()
        payload = {0: 42}
        net.post(MsgType.READ_REPLY, 0, 1, block=3, data=payload)
        sim.run()
        (msg,) = inbox
        net.release(msg)
        assert msg.data is None                  # free list keeps no data

    def test_double_release_raises(self):
        sim, net, inbox = _fabric()
        net.post(MsgType.INV, 0, 1, block=1)
        sim.run()
        (msg,) = inbox
        net.release(msg)
        with pytest.raises(RuntimeError, match="double release"):
            net.pool.release(msg)

    def test_controlled_simulator_disables_pooling(self):
        sim, net, inbox = _fabric(controlled=True)
        assert not net.pooling_active
        net.post(MsgType.INV, 0, 1, block=1)
        sim.run()
        (msg,) = inbox
        net.release(msg)                         # no-op off-pool
        assert not msg.in_pool
        assert net.pool.released == 0


class TestSnapshotInterop:
    def test_freeze_stops_recycling_without_mutation(self):
        sim, net, inbox = _fabric()
        net.post(MsgType.READ_REPLY, 0, 1, block=3, data={0: 9})
        sim.run()
        (msg,) = inbox
        net.freeze_pool()                        # what Machine.snapshot does
        assert net.pool.frozen and not net.pooling_active
        net.release(msg)
        # a post-freeze release is a counted drop: the message keeps
        # its contents (snapshots share it by reference)
        assert not msg.in_pool
        assert msg.data == {0: 9}
        assert net.pool.stats()["dropped_frozen"] == 1

        net.post(MsgType.READ_REPLY, 1, 0, block=4)
        sim.run()
        assert inbox[1] is not msg               # no reuse after freeze

    def test_restore_drains_free_lists(self):
        sim, net, inbox = _fabric()
        snap = net.snapshot_state()
        net.post(MsgType.INV, 0, 1, block=1)
        sim.run()
        net.release(inbox[0])
        assert net.pool.stats()["free"] == 1
        net.restore_state(snap)
        assert net.pool.stats()["free"] == 0     # drained, rebuilt lazily

    def test_machine_snapshot_freezes_pool(self):
        cfg = MachineConfig(num_procs=2, cache_size_bytes=1024)
        machine = Machine(cfg)

        def program(node):
            from repro.isa.ops import Compute
            yield Compute(1)

        machine.spawn_all(program)
        machine.record_histories()
        machine.run()
        assert not machine.net.pool.frozen
        machine.snapshot()
        assert machine.net.pool.frozen


class TestPoisonMode:
    def test_seeded_use_after_release_is_detected(self):
        sim, net, inbox = _fabric(pool_debug=True)
        assert net.pool.debug
        net.post(MsgType.UPD_PROP, 0, 1, block=2, word=4, value=99)
        sim.run()
        (msg,) = inbox
        stale = msg                              # the seeded dangling ref
        net.release(msg)
        with pytest.raises(RuntimeError, match="use-after-release"):
            stale.value + 1                      # first touch explodes
        with pytest.raises(RuntimeError, match="use-after-release"):
            bool(stale.word)

    def test_reuse_unpoisons(self):
        sim, net, inbox = _fabric(pool_debug=True)
        net.post(MsgType.UPD_PROP, 0, 1, block=2, word=4, value=99)
        sim.run()
        net.release(inbox[0])
        net.post(MsgType.UPD_PROP, 1, 0, block=6, word=8, value=7)
        sim.run()
        reused = inbox[1]
        assert reused is inbox[0]
        assert reused.mtype is MsgType.UPD_PROP
        assert reused.value == 7 and reused.word == 8


class TestStats:
    def test_pool_stats_shape(self):
        pool = MessagePool()
        s = pool.stats()
        assert set(s) == {"reused", "released", "dropped_frozen",
                          "free", "frozen", "debug"}

    def test_profile_flag_reports_pool_totals(self, tmp_path, capsys,
                                              monkeypatch):
        from repro.experiments import cli

        prefix = str(tmp_path / "prof")
        rc = cli.main(["fig16", "--scale", "0.01", "--procs", "4",
                       "--jobs", "1", "--no-cache", "--quiet",
                       "--profile", prefix])
        assert rc == 0
        err = capsys.readouterr().err
        assert "[message pool:" in err
        import re
        m = re.search(r"\[message pool: (\d+) reused", err)
        assert m and int(m.group(1)) > 0         # recycling actually ran
