"""The transient-state synthesizer: MESI is authored as a stable-state
spec only, so every transient row in the shipped table must be
derivable -- and re-derivable, deterministically -- from
:func:`repro.protospec.mesi_stable`."""

from __future__ import annotations

import pytest

from repro.protospec import get_spec, mesi_stable, synthesize
from repro.protospec.synth import FIFO_FAIRNESS, XFER_FAIRNESS


@pytest.fixture(scope="module")
def stable():
    return mesi_stable()


@pytest.fixture(scope="module")
def spec(stable):
    return synthesize(stable)


def test_synthesized_spec_validates(spec):
    spec.validate()


def test_synthesis_is_deterministic(stable):
    assert synthesize(stable).dumps() == synthesize(stable).dumps()


def test_shipped_mesi_is_the_synthesized_spec(spec):
    """get_spec('mesi') must be synthesize(mesi_stable()) -- the tree
    carries no hand-written MESI transients."""
    assert get_spec("mesi").dumps() == spec.dumps()


def test_transients_are_generated_not_authored(stable, spec):
    """Every transaction contributes its transient (and lost-copy
    shadow) as a non-stable state the author never wrote down."""
    authored = set(stable.cache.stable)
    synthesized = set(spec.cache.states)
    assert authored < synthesized
    for txn in stable.cache.transactions:
        assert txn.transient in synthesized
        assert txn.transient not in authored
        assert txn.transient not in spec.cache.stable
        if txn.lost_copy is not None:
            assert txn.lost_copy.shadow in synthesized
            assert txn.lost_copy.shadow not in spec.cache.stable


def test_every_transient_has_an_exit(spec):
    """No synthesized wait state is a trap: each has at least one row
    leading to a different state."""
    transients = set(spec.cache.states) - set(spec.cache.stable)
    for st in transients:
        exits = [r for r in spec.cache.rows
                 if r.state == st and r.next_state not in (None, st)]
        assert exits, f"transient {st} has no exit row"


def test_lost_copy_shadow_reached_by_invalidation(stable, spec):
    """A racing INV moves a copy-holding transient to its shadow."""
    inv = stable.cache.invalidation
    assert inv is not None
    rows = {(r.state, r.event): r for r in spec.cache.rows
            if r.when is None}
    for txn in stable.cache.transactions:
        if txn.lost_copy is None:
            continue
        row = rows[(txn.transient, inv)]
        assert row.next_state == txn.lost_copy.shadow
        assert f"send:{stable.cache.inv_ack}" in row.actions


def test_ownership_wait_states_nack_forwards(stable, spec):
    """A node the directory already records as exclusive owner may see
    a forward while its data is still in flight; the synthesizer must
    emit a NACK-retry row at the transient and its shadow so the home
    retries instead of deadlocking."""
    by_key = {}
    for r in spec.cache.rows:
        by_key.setdefault((r.state, r.event), []).append(r)
    checked = 0
    for txn in stable.cache.transactions:
        if txn.state == stable.cache.initial:
            continue
        if not any(c.next_state in stable.cache.owners
                   for c in txn.completions):
            continue
        waits = [txn.transient]
        if txn.lost_copy is not None:
            waits.append(txn.lost_copy.shadow)
        for st in waits:
            for fwd in stable.cache.forwards:
                rows = by_key.get((st, fwd))
                assert rows, f"no ({st}, {fwd}) row synthesized"
                row = rows[0]
                assert f"send:{stable.cache.nack}" in row.actions
                assert row.retry
                assert row.next_state == st
                assert row.fairness == XFER_FAIRNESS
                checked += 1
    assert checked, "mesi should exercise the ownership-wait closure"


def test_early_writeback_race_rows_carry_fifo_fairness(spec):
    """The early-writeback closure marks its retry rows with the FIFO
    fairness argument so the progress check accepts the cycle."""
    fifo_rows = [r for side in spec.sides for r in side.rows
                 if r.fairness == FIFO_FAIRNESS]
    assert fifo_rows, "synthesized spec lost its early-writeback rows"
    for row in fifo_rows:
        assert row.retry


def test_home_busy_states_are_synthesized(stable, spec):
    """Each home forward introduces its busy state; concurrent requests
    queue there (begin_txn), and the owner's NACK retries the stalled
    transaction from a non-busy state."""
    for hf in stable.home.forwards:
        assert hf.busy in spec.home.states
        assert hf.busy not in stable.home.stable
        queued = [r for r in spec.home.rows
                  if r.state == hf.busy and "begin_txn" in r.actions]
        assert queued, f"busy state {hf.busy} drops concurrent requests"
        retries = [r for r in spec.home.rows
                   if r.state == hf.busy and r.retry
                   and "retry_txn" in r.actions
                   and r.event == stable.home.nack]
        assert retries, f"busy state {hf.busy} never retries on NACK"
        for r in retries:
            assert r.next_state not in (hf.busy, None)
