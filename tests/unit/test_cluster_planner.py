"""The sweep planner: partitioning, dedup, and ordered re-merge.

The acceptance bar for the cluster is a merged sweep stream that is
*deterministic* and *bit-identical in content* to a single gateway's:
that reduces to (a) the plan covering every unique key exactly once on
its owner, (b) duplicates collapsing onto their first occurrence
(cross-shard single-flight), and (c) :class:`OrderedMerge` re-emitting
out-of-order per-shard completions in global spec order no matter the
arrival permutation.
"""

import itertools
import random
from dataclasses import dataclass

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.planner import OrderedMerge, SweepPlan, plan_sweep
from repro.cluster.ring import EmptyRingError, HashRing


@dataclass(frozen=True)
class FakeSpec:
    key: str


@dataclass(frozen=True)
class FakePoint:
    spec: FakeSpec


def points_for(keys):
    return [FakePoint(FakeSpec(k)) for k in keys]


class TestPlanSweep:
    def test_empty_ring_raises(self):
        with pytest.raises(EmptyRingError):
            plan_sweep(points_for(["k1"]), HashRing())

    def test_partition_covers_unique_keys_once(self):
        ring = HashRing(["a", "b", "c"])
        keys = [f"key-{i}" for i in range(40)]
        plan = plan_sweep(points_for(keys), ring)
        flat = sorted(i for batch in plan.batches.values()
                      for i in batch)
        assert flat == list(range(40))
        assert plan.unique == 40
        assert plan.duplicates == 0
        for shard, indices in plan.batches.items():
            for i in indices:
                assert ring.owner(keys[i]) == shard
                assert plan.shard_of(i) == shard

    def test_duplicates_collapse_to_first_occurrence(self):
        ring = HashRing(["a", "b"])
        keys = ["x", "y", "x", "z", "y", "x"]
        plan = plan_sweep(points_for(keys), ring)
        assert plan.primary == [0, 1, 0, 3, 1, 0]
        assert plan.unique == 3
        assert plan.duplicates == 3
        planned = sorted(i for batch in plan.batches.values()
                         for i in batch)
        assert planned == [0, 1, 3], \
            "only first occurrences are planned (single-flight)"

    def test_batches_preserve_spec_order(self):
        ring = HashRing(["a", "b", "c", "d"])
        plan = plan_sweep(points_for([f"k{i}" for i in range(60)]), ring)
        for indices in plan.batches.values():
            assert indices == sorted(indices)

    def test_deterministic(self):
        ring = HashRing(["a", "b", "c"])
        pts = points_for([f"k{i}" for i in range(25)])
        assert plan_sweep(pts, ring) == plan_sweep(pts, ring)

    def test_shard_of_unplanned_index_raises(self):
        plan = plan_sweep(points_for(["x", "x"]), HashRing(["a"]))
        with pytest.raises(KeyError):
            plan.shard_of(1)        # a duplicate, never planned


class TestOrderedMerge:
    def test_in_order_passthrough(self):
        out = []
        merge = OrderedMerge(3, lambda i, p: out.append((i, p)))
        for i in range(3):
            assert merge.put(i, f"p{i}") == 1
        assert out == [(0, "p0"), (1, "p1"), (2, "p2")]
        assert merge.complete

    def test_reverse_arrival_buffers_until_gap_fills(self):
        out = []
        merge = OrderedMerge(3, lambda i, p: out.append(i))
        assert merge.put(2, "c") == 0
        assert merge.put(1, "b") == 0
        assert out == []
        assert merge.emitted == 0
        assert merge.put(0, "a") == 3
        assert out == [0, 1, 2]

    def test_duplicate_put_rejected(self):
        merge = OrderedMerge(2, lambda i, p: None)
        merge.put(0, "a")
        with pytest.raises(ValueError):
            merge.put(0, "again")
        merge.put(1, "b")
        with pytest.raises(ValueError):
            merge.put(1, "again")     # already flushed

    def test_out_of_range_rejected(self):
        merge = OrderedMerge(2, lambda i, p: None)
        with pytest.raises(IndexError):
            merge.put(2, "x")
        with pytest.raises(IndexError):
            merge.put(-1, "x")

    def test_all_permutations_of_five(self):
        for perm in itertools.permutations(range(5)):
            out = []
            merge = OrderedMerge(5, lambda i, p: out.append(i))
            for idx in perm:
                merge.put(idx, None)
            assert out == [0, 1, 2, 3, 4], perm

    @settings(max_examples=40, deadline=None)
    @given(n=st.integers(min_value=1, max_value=64),
           seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_random_arrival_always_emits_in_order(self, n, seed):
        order = list(range(n))
        random.Random(seed).shuffle(order)
        out = []
        merge = OrderedMerge(n, lambda i, p: out.append((i, p)))
        for idx in order:
            merge.put(idx, idx * 10)
        assert out == [(i, i * 10) for i in range(n)]
        assert merge.complete


class TestPlanMergeTogether:
    def test_simulated_shard_streams_merge_deterministically(self):
        """Replay a plan through out-of-order per-shard completion and
        check the client-visible order is global spec order."""
        ring = HashRing(["a", "b", "c"])
        keys = [f"k{i % 7}" for i in range(21)]     # heavy duplication
        pts = points_for(keys)
        plan = plan_sweep(pts, ring)

        globals_of = {}
        for i, p in enumerate(plan.primary):
            globals_of.setdefault(p, []).append(i)

        out = []
        merge = OrderedMerge(len(pts), lambda i, p: out.append((i, p)))
        # shards complete interleaved, each batch out of order
        arrivals = []
        for shard, indices in sorted(plan.batches.items()):
            arrivals.extend(reversed(indices))
        for primary in arrivals:
            for gi in globals_of[primary]:
                merge.put(gi, f"result:{keys[primary]}")
        assert [i for i, _ in out] == list(range(len(pts)))
        # every duplicate carries its primary's payload
        assert all(p == f"result:{keys[i]}" for i, p in out)
