"""Protocol construction must fail fast -- with an error naming the
protocol, side and message -- when a MsgType the spec routes to a node
has no HANDLERS entry, instead of a dispatch error mid-simulation."""

from __future__ import annotations

import pytest

from repro.config import MachineConfig, Protocol
from repro.network.messages import MsgType
from repro.protocols.base import HandlerTableError
from repro.protocols.wi import WINodeCtrl
from repro.protocols.update import PUNodeCtrl
from repro.runtime import Machine


def _machine(protocol: Protocol) -> Machine:
    return Machine(MachineConfig(num_procs=2, protocol=protocol))


@pytest.mark.parametrize("protocol", list(Protocol))
def test_all_stock_controllers_construct(protocol):
    machine = _machine(protocol)
    assert len(machine.controllers) == 2


def test_missing_handler_fails_at_construction():
    class Broken(WINodeCtrl):
        HANDLERS = {k: v for k, v in WINodeCtrl.HANDLERS.items()
                    if k is not MsgType.INV}

    machine = _machine(Protocol.WI)
    with pytest.raises(HandlerTableError) as exc:
        Broken(machine, 0)
    text = str(exc.value)
    assert "wi" in text
    assert "INV" in text
    assert "cache" in text  # names the side that receives the message


def test_error_lists_every_missing_message():
    class VeryBroken(PUNodeCtrl):
        HANDLERS = {k: v for k, v in PUNodeCtrl.HANDLERS.items()
                    if k not in (MsgType.UPD_PROP, MsgType.RECALL_REPLY)}

    machine = _machine(Protocol.PU)
    with pytest.raises(HandlerTableError) as exc:
        VeryBroken(machine, 0)
    text = str(exc.value)
    assert "UPD_PROP" in text and "RECALL_REPLY" in text


def test_validation_is_memoized_per_class():
    # constructing a second node of an already-validated class must not
    # re-walk the spec; the cache keys on (class, protocol)
    from repro.protocols import base

    machine = _machine(Protocol.CU)
    key_count = len(base._VALIDATED_HANDLER_TABLES)
    _machine(Protocol.CU)
    assert len(base._VALIDATED_HANDLER_TABLES) == key_count
