"""Tests for the SVG figure renderer."""

import xml.etree.ElementTree as ET

import pytest

from repro.metrics import Series, StackedBars
from repro.metrics.svgchart import series_to_svg, stacked_to_svg, to_svg

SVG_NS = "{http://www.w3.org/2000/svg}"


def make_series():
    s = Series("Figure X", "procs", "cycles")
    for label, scale in (("a-i", 100.0), ("a-u", 40.0)):
        for p in (1, 2, 4, 8):
            s.add(label, p, scale * p)
    return s


def make_bars():
    b = StackedBars("Figure Y", ["useful", "proliferation"])
    b.add("x-u", {"useful": 10, "proliferation": 30})
    b.add("x-c", {"useful": 8, "proliferation": 4})
    return b


class TestSeriesSvg:
    def test_valid_xml(self):
        root = ET.fromstring(series_to_svg(make_series()))
        assert root.tag == f"{SVG_NS}svg"

    def test_one_polyline_per_line(self):
        root = ET.fromstring(series_to_svg(make_series()))
        polylines = root.findall(f".//{SVG_NS}polyline")
        assert len(polylines) == 2

    def test_points_monotone_for_growing_series(self):
        root = ET.fromstring(series_to_svg(make_series()))
        poly = root.findall(f".//{SVG_NS}polyline")[0]
        pts = [tuple(map(float, p.split(",")))
               for p in poly.attrib["points"].split()]
        xs = [x for x, _ in pts]
        ys = [y for _, y in pts]
        assert xs == sorted(xs)
        assert ys == sorted(ys, reverse=True)  # grows upward

    def test_legend_labels_present(self):
        svg = series_to_svg(make_series())
        assert "a-i" in svg and "a-u" in svg
        assert "Figure X" in svg

    def test_log_scale_renders(self):
        root = ET.fromstring(series_to_svg(make_series(), log_y=True))
        assert root.findall(f".//{SVG_NS}polyline")

    def test_empty_series(self):
        s = Series("empty", "x", "y")
        assert "no data" in series_to_svg(s)


class TestStackedSvg:
    def test_valid_xml(self):
        root = ET.fromstring(stacked_to_svg(make_bars()))
        assert root.tag == f"{SVG_NS}svg"

    def test_rect_count_matches_nonzero_segments(self):
        root = ET.fromstring(stacked_to_svg(make_bars()))
        rects = root.findall(f".//{SVG_NS}rect")
        # background + 4 segments + 2 legend swatches
        assert len(rects) == 1 + 4 + 2

    def test_segment_heights_proportional(self):
        root = ET.fromstring(stacked_to_svg(make_bars()))
        rects = [r for r in root.findall(f".//{SVG_NS}rect")
                 if float(r.attrib["width"]) not in (720.0, 12.0)]
        heights = sorted(float(r.attrib["height"]) for r in rects)
        # 4:8:10:30 ratios, allow rounding
        assert heights[-1] / heights[0] == pytest.approx(30 / 4, rel=0.1)

    def test_empty_bars(self):
        b = StackedBars("empty", ["a"])
        assert "no data" in stacked_to_svg(b)


class TestDispatch:
    def test_to_svg_dispatch(self):
        assert "<svg" in to_svg(make_series())
        assert "<svg" in to_svg(make_bars())
        with pytest.raises(TypeError):
            to_svg(42)
