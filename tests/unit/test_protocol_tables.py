"""Static sanity checks on the protocol controllers' handler tables."""

import pytest

from repro.config import MachineConfig, Protocol
from repro.network.messages import MsgType
from repro.protocols import (
    CUNodeCtrl, HybridNodeCtrl, PUNodeCtrl, WINodeCtrl, make_controller,
)
from repro.runtime import Machine

WI_SENDS = {
    MsgType.READ_REQ, MsgType.READ_REPLY, MsgType.FETCH_FWD,
    MsgType.OWNER_DATA, MsgType.SHARING_WB, MsgType.RDEX_REQ,
    MsgType.RDEX_REPLY, MsgType.UPGRADE_REQ, MsgType.UPGRADE_REPLY,
    MsgType.INV, MsgType.INV_ACK, MsgType.FETCH_INV_FWD,
    MsgType.OWNER_DATA_EX, MsgType.DIRTY_TRANSFER, MsgType.WRITEBACK,
    MsgType.FWD_NACK,
}
PU_SENDS = {
    MsgType.READ_REQ, MsgType.READ_REPLY, MsgType.UPDATE,
    MsgType.UPD_PROP, MsgType.UPD_ACK, MsgType.WRITER_ACK,
    MsgType.RECALL, MsgType.RECALL_REPLY, MsgType.ATOMIC_REQ,
    MsgType.ATOMIC_REPLY, MsgType.DROP_NOTICE, MsgType.WRITEBACK,
    MsgType.FWD_NACK,
}


class TestHandlerTables:
    def test_wi_handles_everything_it_can_receive(self):
        assert WI_SENDS <= set(WINodeCtrl.HANDLERS)

    def test_pu_handles_everything_it_can_receive(self):
        assert PU_SENDS <= set(PUNodeCtrl.HANDLERS)

    def test_cu_inherits_pu_table(self):
        assert CUNodeCtrl.HANDLERS == PUNodeCtrl.HANDLERS

    def test_hybrid_handles_union(self):
        assert (WI_SENDS | PU_SENDS) <= set(HybridNodeCtrl.HANDLERS)

    def test_handler_methods_exist(self):
        for cls in (WINodeCtrl, PUNodeCtrl, CUNodeCtrl, HybridNodeCtrl):
            for mtype, name in cls.HANDLERS.items():
                assert callable(getattr(cls, name)), (cls, mtype, name)

    def test_hybrid_collisions_are_dispatchers(self):
        collisions = set(WINodeCtrl.HANDLERS) & set(PUNodeCtrl.HANDLERS)
        for mtype in collisions:
            name = HybridNodeCtrl.HANDLERS[mtype]
            # FWD_NACK shares the base implementation; the other
            # colliding types must route through a hybrid dispatcher
            if mtype is MsgType.FWD_NACK:
                assert name == "on_fwd_nack"
            else:
                assert name.endswith("_hybrid"), (mtype, name)

    @pytest.mark.parametrize("protocol", list(Protocol))
    def test_factory_builds_each_protocol(self, protocol):
        m = Machine(MachineConfig(num_procs=2, protocol=protocol))
        ctrl = m.controllers[0]
        assert ctrl.node == 0
        assert ctrl.READABLE_STATES

    def test_readable_states_disjoint_roles(self):
        from repro.memsys.cache import CacheState
        assert CacheState.MODIFIED in WINodeCtrl.READABLE_STATES
        assert CacheState.MODIFIED not in PUNodeCtrl.READABLE_STATES
        assert set(HybridNodeCtrl.READABLE_STATES) == (
            set(WINodeCtrl.READABLE_STATES)
            | set(PUNodeCtrl.READABLE_STATES))
