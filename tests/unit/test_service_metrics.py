"""Unit tests for the stdlib Prometheus metrics used by the service."""

import math

import pytest

from repro.service.metrics import (
    Counter, Gauge, Histogram, MetricsRegistry, percentile,
)


class TestCounter:
    def test_unlabeled_renders_at_zero(self):
        c = Counter("x_total", "help me")
        assert c.samples() == ["x_total 0"]

    def test_inc_and_value(self):
        c = Counter("x_total", "h")
        c.inc()
        c.inc(2)
        assert c.value() == 3
        assert c.samples() == ["x_total 3"]

    def test_labels(self):
        c = Counter("req_total", "h", ("route", "code"))
        c.inc(route="run", code="200")
        c.inc(route="run", code="200")
        c.inc(route="sweep", code="429")
        assert c.value(route="run", code="200") == 2
        assert c.total() == 3
        assert c.samples() == [
            'req_total{route="run",code="200"} 2',
            'req_total{route="sweep",code="429"} 1',
        ]

    def test_missing_label_rejected(self):
        c = Counter("x_total", "h", ("route",))
        with pytest.raises(ValueError):
            c.inc()
        with pytest.raises(ValueError):
            c.inc(route="a", extra="b")

    def test_counters_only_go_up(self):
        with pytest.raises(ValueError):
            Counter("x_total", "h").inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("depth", "h")
        g.set(5)
        g.inc()
        g.dec(2)
        assert g.value() == 4
        assert g.samples() == ["depth 4"]

    def test_label_value_escaping(self):
        g = Gauge("g", "h", ("name",))
        g.set(1, name='a"b\nc\\d')
        line = g.samples()[0]
        assert r'\"' in line and r'\n' in line and r'\\' in line


class TestHistogram:
    def test_cumulative_buckets(self):
        h = Histogram("lat", "h", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        lines = h.samples()
        assert lines == [
            'lat_bucket{le="0.1"} 1',
            'lat_bucket{le="1"} 3',
            'lat_bucket{le="10"} 4',
            'lat_bucket{le="+Inf"} 5',
            "lat_sum 56.05",
            "lat_count 5",
        ]
        assert h.count() == 5
        assert h.sum() == pytest.approx(56.05)

    def test_boundary_lands_in_its_bucket(self):
        # Prometheus buckets are `le` (inclusive upper bound)
        h = Histogram("lat", "h", buckets=(1.0,))
        h.observe(1.0)
        assert h.samples()[0] == 'lat_bucket{le="1"} 1'

    def test_labeled_histogram(self):
        h = Histogram("lat", "h", ("route",), buckets=(1.0,))
        h.observe(0.5, route="run")
        h.observe(2.0, route="run")
        lines = h.samples()
        assert 'lat_bucket{route="run",le="1"} 1' in lines
        assert 'lat_bucket{route="run",le="+Inf"} 2' in lines
        assert 'lat_count{route="run"} 2' in lines

    def test_needs_buckets(self):
        with pytest.raises(ValueError):
            Histogram("lat", "h", buckets=())


class TestRegistry:
    def test_render_has_help_and_type(self):
        reg = MetricsRegistry()
        reg.counter("a_total", "count of a")
        reg.gauge("b", "level of b")
        text = reg.render()
        assert "# HELP a_total count of a" in text
        assert "# TYPE a_total counter" in text
        assert "# TYPE b gauge" in text
        assert text.endswith("\n")

    def test_duplicate_name_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a_total", "h")
        with pytest.raises(ValueError):
            reg.gauge("a_total", "h")

    def test_get(self):
        reg = MetricsRegistry()
        c = reg.counter("a_total", "h")
        assert reg.get("a_total") is c


class TestPercentile:
    def test_nearest_rank(self):
        data = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]
        assert percentile(data, 50) == 5
        assert percentile(data, 90) == 9
        assert percentile(data, 99) == 10
        assert percentile(data, 0) == 1
        assert percentile(data, 100) == 10

    def test_unsorted_input(self):
        assert percentile([5, 1, 3], 50) == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_inf_renders_as_prometheus_inf(self):
        h = Histogram("lat", "h", buckets=(math.inf,))
        h.observe(1.0)
        assert h.samples()[0] == 'lat_bucket{le="+Inf"} 1'


class TestConstLabels:
    """shard_id stamping: one registry per shard, every sample tagged,
    so the cluster router's aggregated /metrics stays per-replica."""

    def test_unlabeled_counter_gains_const_labels(self):
        reg = MetricsRegistry(const_labels={"shard_id": "shard-1"})
        reg.counter("a_total", "h").inc(3)
        assert 'a_total{shard_id="shard-1"} 3' in reg.render()

    def test_labeled_counter_merges_const_and_call_labels(self):
        reg = MetricsRegistry(const_labels={"shard_id": "s0"})
        c = reg.counter("b_total", "h", ("status",))
        c.inc(status="ok")
        assert 'b_total{shard_id="s0",status="ok"} 1' in reg.render()

    def test_call_sites_never_pass_const_labels(self):
        reg = MetricsRegistry(const_labels={"shard_id": "s0"})
        c = reg.counter("c_total", "h")
        with pytest.raises(ValueError):
            c.inc(shard_id="s0")

    def test_histogram_buckets_carry_const_labels(self):
        reg = MetricsRegistry(const_labels={"shard_id": "s0"})
        h = reg.histogram("lat_seconds", "h")
        h.observe(0.002)
        text = reg.render()
        assert 'lat_seconds_bucket{shard_id="s0",le="+Inf"} 1' in text
        assert 'lat_seconds_count{shard_id="s0"} 1' in text

    def test_gauge_carries_const_labels(self):
        reg = MetricsRegistry(const_labels={"shard_id": "s0"})
        reg.gauge("up", "h").set(1)
        assert 'up{shard_id="s0"} 1' in reg.render()

    def test_no_const_labels_renders_unchanged(self):
        reg = MetricsRegistry()
        reg.counter("plain_total", "h").inc()
        assert "plain_total 1" in reg.render()
