"""Unit tests for cache, write buffer, memory module and directory."""

import pytest

from repro.config import MachineConfig
from repro.engine import Simulator
from repro.memsys import (
    Cache, CacheState, Directory, DirState, MemoryModule, WriteBuffer,
)
from repro.memsys.writebuffer import PendingWrite


class TestCache:
    def make(self, lines=16):
        return Cache(lines, 64)

    def test_miss_on_empty(self):
        c = self.make()
        assert c.lookup(0) is None
        assert not c.contains(0)

    def test_install_and_lookup(self):
        c = self.make()
        c.install(5, CacheState.SHARED, {320: 7})
        line = c.lookup(5)
        assert line is not None
        assert line.state is CacheState.SHARED
        assert line.data[320] == 7

    def test_direct_mapped_conflict_evicts(self):
        c = self.make(lines=16)
        c.install(3, CacheState.MODIFIED, {0: 1})
        evicted = c.install(19, CacheState.SHARED, {})  # 19 % 16 == 3
        assert evicted is not None
        assert evicted.block == 3
        assert evicted.state is CacheState.MODIFIED
        assert evicted.data == {0: 1}
        assert c.lookup(3) is None
        assert c.contains(19)

    def test_reinstall_same_block_no_eviction(self):
        c = self.make()
        c.install(3, CacheState.SHARED, {})
        assert c.install(3, CacheState.MODIFIED, {}) is None

    def test_invalidate(self):
        c = self.make()
        c.install(2, CacheState.SHARED, {128: 9})
        old = c.invalidate(2)
        assert old.data[128] == 9
        assert c.lookup(2) is None
        assert c.invalidate(2) is None

    def test_write_word(self):
        c = self.make()
        assert c.write_word(1, 64, 5) is False  # not cached
        c.install(1, CacheState.VALID, {})
        assert c.write_word(1, 64, 5) is True
        assert c.read_word(1, 64) == 5

    def test_read_word_default_zero(self):
        c = self.make()
        c.install(1, CacheState.VALID, {})
        assert c.read_word(1, 68) == 0

    def test_set_state(self):
        c = self.make()
        c.install(1, CacheState.VALID, {})
        c.set_state(1, CacheState.RETAINED)
        assert c.lookup(1).state is CacheState.RETAINED
        with pytest.raises(KeyError):
            c.set_state(9, CacheState.VALID)

    def test_watchers_fire_once_per_change(self):
        c = self.make()
        c.install(1, CacheState.VALID, {})
        hits = []
        c.watch(1, lambda: hits.append("a"))
        c.write_word(1, 64, 2)
        assert hits == ["a"]
        c.write_word(1, 64, 3)      # watcher is one-shot
        assert hits == ["a"]

    def test_watchers_fire_on_invalidate_and_install(self):
        c = self.make()
        c.install(1, CacheState.VALID, {})
        hits = []
        c.watch(1, lambda: hits.append("inv"))
        c.invalidate(1)
        assert hits == ["inv"]
        c.watch(1, lambda: hits.append("fill"))
        c.install(1, CacheState.VALID, {})
        assert hits == ["inv", "fill"]

    def test_occupancy_and_resident_blocks(self):
        c = self.make()
        c.install(1, CacheState.VALID, {})
        c.install(2, CacheState.VALID, {})
        assert c.occupancy() == 2
        assert sorted(c.resident_blocks()) == [1, 2]

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            Cache(0, 64)


class TestWriteBuffer:
    def make(self, cap=4):
        return WriteBuffer(cap)

    def pw(self, word, value=0):
        return PendingWrite(word, word, word // 64, value)

    def test_fifo_order(self):
        wb = self.make()
        a, b = self.pw(0, 1), self.pw(4, 2)
        wb.enqueue(a)
        wb.enqueue(b)
        assert wb.head() is a
        assert wb.pop() is a
        assert wb.pop() is b

    def test_capacity(self):
        wb = self.make(2)
        wb.enqueue(self.pw(0))
        wb.enqueue(self.pw(4))
        assert wb.full
        with pytest.raises(RuntimeError):
            wb.enqueue(self.pw(8))

    def test_forward_latest_write_wins(self):
        wb = self.make()
        wb.enqueue(self.pw(8, 1))
        wb.enqueue(self.pw(8, 2))
        assert wb.forward(8).value == 2
        assert wb.forward(12) is None

    def test_space_waiters_woken_on_pop(self):
        wb = self.make(1)
        wb.enqueue(self.pw(0))
        woken = []
        wb.on_space(lambda: woken.append(1))
        assert not woken
        wb.pop()
        assert woken == [1]

    def test_empty_waiters(self):
        wb = self.make()
        woken = []
        wb.on_empty(lambda: woken.append("now"))
        assert woken == ["now"]        # already empty: immediate
        wb.enqueue(self.pw(0))
        wb.on_empty(lambda: woken.append("later"))
        assert woken == ["now"]
        wb.pop()
        assert woken == ["now", "later"]

    def test_pending_blocks(self):
        wb = self.make()
        wb.enqueue(PendingWrite(100, 100, 1, 0))
        wb.enqueue(PendingWrite(200, 200, 3, 0))
        assert wb.pending_blocks() == [1, 3]

    def test_write_ids_unique(self):
        ids = {self.pw(0).write_id for _ in range(100)}
        assert len(ids) == 100


class TestMemoryModule:
    def make(self):
        sim = Simulator()
        cfg = MachineConfig(num_procs=4)
        return sim, MemoryModule(sim, cfg, 0)

    def test_uninitialized_reads_zero(self):
        _, mem = self.make()
        assert mem.read_word(64) == 0

    def test_word_roundtrip(self):
        _, mem = self.make()
        mem.write_word(64, 42)
        assert mem.read_word(64) == 42

    def test_block_roundtrip(self):
        _, mem = self.make()
        mem.write_block(1, {64: 1, 68: 2})
        assert mem.read_block(1) == {64: 1, 68: 2}
        assert mem.read_block(2) == {}

    def test_block_access_timing(self):
        _, mem = self.make()
        # 20 cycles first word + 15 more words at 1/cycle
        assert mem.block_access_cycles() == 35

    def test_reserve_fifo_occupancy(self):
        sim, mem = self.make()
        t1 = mem.reserve(10)
        t2 = mem.reserve(10)
        assert t1 == 10
        assert t2 == 20
        assert mem.wait_cycles == 10
        sim.now = 50
        t3 = mem.reserve(5)
        assert t3 == 55
        assert mem.accesses == 3


class TestDirectory:
    def test_entry_creation_lazy(self):
        d = Directory(0)
        assert d.peek(7) is None
        ent = d.entry(7)
        assert ent.state is DirState.UNOWNED
        assert d.peek(7) is ent

    def test_acquire_runs_when_free(self):
        d = Directory(0)
        ran = []
        d.acquire(1, lambda: ran.append("a"))
        assert ran == ["a"]
        assert d.entry(1).busy

    def test_acquire_queues_when_busy(self):
        d = Directory(0)
        ran = []
        d.acquire(1, lambda: ran.append("a"))
        d.acquire(1, lambda: ran.append("b"))
        d.acquire(1, lambda: ran.append("c"))
        assert ran == ["a"]
        d.release(1)
        assert ran == ["a", "b"]
        d.release(1)
        assert ran == ["a", "b", "c"]
        d.release(1)
        assert not d.entry(1).busy

    def test_independent_blocks_do_not_queue(self):
        d = Directory(0)
        ran = []
        d.acquire(1, lambda: ran.append("a"))
        d.acquire(2, lambda: ran.append("b"))
        assert ran == ["a", "b"]

    def test_release_non_busy_raises(self):
        d = Directory(0)
        with pytest.raises(RuntimeError):
            d.release(3)

    def test_seq_monotonic(self):
        d = Directory(0)
        ent = d.entry(1)
        assert ent.next_seq() < ent.next_seq() < ent.next_seq()


class TestSetAssociativity:
    def test_two_way_holds_conflicting_pair(self):
        c = Cache(16, 64, associativity=2)   # 8 sets, 2 ways
        c.install(0, CacheState.SHARED, {})
        assert c.install(8, CacheState.SHARED, {}) is None  # same set
        assert c.contains(0) and c.contains(8)

    def test_lru_victim_selection(self):
        c = Cache(16, 64, associativity=2)
        c.install(0, CacheState.SHARED, {})
        c.install(8, CacheState.SHARED, {})
        c.lookup(0)                          # touch 0: 8 becomes LRU
        evicted = c.install(16, CacheState.SHARED, {})
        assert evicted.block == 8
        assert c.contains(0) and c.contains(16)

    def test_fully_associative(self):
        c = Cache(4, 64, associativity=4)    # one set
        for b in range(4):
            assert c.install(b, CacheState.VALID, {}) is None
        evicted = c.install(99, CacheState.VALID, {})
        assert evicted.block == 0            # LRU

    def test_direct_mapped_unchanged(self):
        c = Cache(16, 64)                    # associativity=1
        c.install(3, CacheState.MODIFIED, {0: 1})
        evicted = c.install(19, CacheState.SHARED, {})
        assert evicted.block == 3

    def test_eviction_fires_victim_watchers(self):
        c = Cache(16, 64, associativity=2)
        c.install(0, CacheState.SHARED, {})
        c.install(8, CacheState.SHARED, {})
        woken = []
        c.watch(0, lambda: woken.append(0))
        c.lookup(8)                          # make 0 the LRU
        c.install(16, CacheState.SHARED, {})
        assert woken == [0]

    def test_invalid_associativity(self):
        import pytest as _pytest
        with _pytest.raises(ValueError):
            Cache(16, 64, associativity=3)   # does not divide 16
        with _pytest.raises(ValueError):
            Cache(16, 64, associativity=0)

    def test_invalidate_specific_way(self):
        c = Cache(16, 64, associativity=2)
        c.install(0, CacheState.SHARED, {0: 5})
        c.install(8, CacheState.SHARED, {512: 6})
        line = c.invalidate(0)
        assert line.data == {0: 5}
        assert not c.contains(0)
        assert c.contains(8)
