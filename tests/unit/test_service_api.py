"""Unit tests for service request validation (JSON -> RunSpec)."""

import pytest

from repro.config import Protocol
from repro.service import api
from repro.service.httpio import HttpError


def err400(fn, *args):
    with pytest.raises(HttpError) as err:
        fn(*args)
    assert err.value.status == 400
    return err.value.message


RUN_BODY = {"workload": "lock",
            "config": {"num_procs": 2, "protocol": "pu"},
            "params": {"kind": "tk", "total_acquires": 8}}


class TestRunRequests:
    def test_valid_body_builds_spec(self):
        point, deadline = api.run_from_request(dict(RUN_BODY), 300.0)
        assert point.spec.workload == "lock"
        assert point.spec.config.num_procs == 2
        assert point.spec.config.protocol is Protocol.PU
        assert point.spec.params_dict["kind"] == "tk"
        assert deadline == 300.0

    def test_spec_matches_direct_construction(self):
        """The service builds specs through RunSpec.make, so the key
        (and therefore the cache entry) matches an offline run."""
        from repro.campaign import RunSpec
        from repro.config import MachineConfig

        direct = RunSpec.make(
            "lock", MachineConfig(num_procs=2, protocol=Protocol.PU),
            kind="tk", total_acquires=8)
        point = api.spec_from_request(dict(RUN_BODY))
        assert point.spec.key == direct.key

    def test_label_defaults_to_describe(self):
        point = api.spec_from_request(dict(RUN_BODY))
        assert point.label
        labelled = api.spec_from_request(
            dict(RUN_BODY, label="mine"))
        assert labelled.label == "mine"

    def test_unknown_workload_suggests(self):
        msg = err400(api.spec_from_request, dict(RUN_BODY,
                                                 workload="lok"))
        assert "unknown workload" in msg and "did you mean" in msg
        assert "lock" in msg

    def test_unknown_top_level_field_suggests(self):
        msg = err400(api.spec_from_request,
                     dict(RUN_BODY, paramz={"x": 1}))
        assert "unknown run field" in msg and "params" in msg

    def test_unknown_config_field_suggests(self):
        body = dict(RUN_BODY, config={"num_prcs": 2})
        msg = err400(api.spec_from_request, body)
        assert "num_procs" in msg

    def test_bad_protocol_name(self):
        body = dict(RUN_BODY, config={"protocol": "dragon"})
        err400(api.spec_from_request, body)

    def test_workload_required(self):
        body = dict(RUN_BODY)
        del body["workload"]
        msg = err400(api.spec_from_request, body)
        assert "workload" in msg

    def test_non_object_body(self):
        err400(api.spec_from_request, [1, 2])
        err400(api.spec_from_request, "lock")

    def test_bad_params_surface_as_400(self):
        msg = err400(api.spec_from_request,
                     dict(RUN_BODY, params={"kind": ["tk"]}))
        assert "scalar" in msg

    def test_deadline_override(self):
        _, d = api.run_from_request(
            dict(RUN_BODY, deadline_s=5), 300.0)
        assert d == 5.0
        _, d = api.run_from_request(
            dict(RUN_BODY, deadline_s=None), 300.0)
        assert d is None
        err400(api.run_from_request, dict(RUN_BODY, deadline_s=-1),
               300.0)
        err400(api.run_from_request, dict(RUN_BODY, deadline_s=True),
               300.0)


class TestSweepRequests:
    def test_figure_sweep(self):
        fid, points, deadline = api.sweep_from_request(
            {"figure": "fig9", "scale": 0.01, "procs": 2}, 300.0)
        assert fid == "fig9"
        assert len(points) == 9
        assert len({pt.spec.key for pt in points}) == 9
        assert deadline == 300.0

    def test_figure_matches_cli_points(self):
        from repro.config import ExperimentScale
        from repro.experiments.figures import figure_points

        _, points, _ = api.sweep_from_request(
            {"figure": "fig9", "scale": 0.01, "procs": 2}, None)
        direct = figure_points(
            "fig9", scale=ExperimentScale.scaled(0.01), P=2)
        assert [pt.spec.key for pt in points] == \
            [pt.spec.key for pt in direct]

    def test_paper_scale_string(self):
        _, points, _ = api.sweep_from_request(
            {"figure": "fig9", "scale": "paper", "procs": 2}, None)
        assert points

    def test_raw_specs_sweep(self):
        fid, points, _ = api.sweep_from_request(
            {"specs": [dict(RUN_BODY), dict(RUN_BODY, label="b")]},
            None)
        assert fid is None
        assert len(points) == 2
        assert points[1].label == "b"

    def test_unknown_figure_suggests(self):
        msg = err400(api.sweep_from_request, {"figure": "fig99"}, None)
        assert "did you mean" in msg and "fig9" in msg

    def test_figure_and_specs_exclusive(self):
        err400(api.sweep_from_request,
               {"figure": "fig9", "specs": [dict(RUN_BODY)]}, None)

    def test_empty_or_huge_specs_rejected(self):
        err400(api.sweep_from_request, {"specs": []}, None)
        msg = err400(
            api.sweep_from_request,
            {"specs": [dict(RUN_BODY)] * (api.MAX_SWEEP_SPECS + 1)},
            None)
        assert str(api.MAX_SWEEP_SPECS) in msg

    def test_bad_scalars_rejected(self):
        err400(api.sweep_from_request,
               {"figure": "fig9", "scale": -1}, None)
        err400(api.sweep_from_request,
               {"figure": "fig9", "procs": 0}, None)
        err400(api.sweep_from_request,
               {"figure": "fig8", "sizes": [2, 0]}, None)
        err400(api.sweep_from_request,
               {"figure": "fig9", "sanitize": "yes"}, None)

    def test_needs_figure_or_specs(self):
        err400(api.sweep_from_request, {}, None)
