"""Unit/integration tests for the post-run analysis module."""

from repro.config import MachineConfig, Protocol
from repro.isa.ops import Compute, Fence, Read, Write
from repro.metrics import (
    compare_runs, hottest_memories, markdown_report, node_utilization,
    render_traffic_matrix, summarize, traffic_matrix,
)
from repro.runtime import Machine


def run_small(protocol=Protocol.PU):
    cfg = MachineConfig(num_procs=4, protocol=protocol)
    m = Machine(cfg, max_events=500_000)
    a = m.memmap.alloc_word(1, "a")
    b = m.memmap.alloc_word(2, "b")

    def prog(node):
        for i in range(4):
            yield Write(a, node * 10 + i)
            yield Read(b)
            yield Compute(5)
        yield Fence()

    m.spawn_all(lambda n: prog(n))
    return m, m.run()


class TestNodeUtilization:
    def test_every_node_reported(self):
        m, r = run_small()
        util = node_utilization(m, r)
        assert [u.node for u in util] == [0, 1, 2, 3]

    def test_home_nodes_busiest(self):
        m, r = run_small()
        util = {u.node: u for u in node_utilization(m, r)}
        # nodes 1 and 2 are the homes of a and b: they serve requests
        assert util[1].memory_accesses > util[3].memory_accesses
        assert util[2].memory_accesses > util[3].memory_accesses

    def test_fractions_bounded(self):
        m, r = run_small()
        for u in node_utilization(m, r):
            assert 0.0 <= u.memory_busy <= 1.0

    def test_message_counts_consistent(self):
        m, r = run_small()
        util = node_utilization(m, r)
        assert sum(u.messages_sent for u in util) == r.network.messages
        assert sum(u.messages_received for u in util) == \
            r.network.messages

    def test_hottest_memories_sorted(self):
        m, r = run_small()
        hot = hottest_memories(m, r, top=4)
        counts = [n for _, n in hot]
        assert counts == sorted(counts, reverse=True)


class TestTrafficMatrix:
    def test_matrix_totals_match(self):
        m, r = run_small()
        mat = traffic_matrix(r, 4)
        assert sum(sum(row) for row in mat) == r.network.messages

    def test_render_contains_all_rows(self):
        m, r = run_small()
        text = render_traffic_matrix(r, 4)
        lines = text.splitlines()
        assert len(lines) == 2 + 4  # title + header + 4 rows


class TestSummaries:
    def test_summarize_fields(self):
        m, r = run_small()
        s = summarize(r)
        assert s.total_cycles == r.total_cycles
        assert 0.0 <= s.useful_miss_fraction <= 1.0
        assert 0.0 <= s.useful_update_fraction <= 1.0
        assert s.bytes_per_ref > 0

    def test_wi_summary_has_no_updates(self):
        m, r = run_small(Protocol.WI)
        s = summarize(r)
        assert s.updates["total"] == 0
        assert s.useful_update_fraction == 1.0  # vacuous

    def test_compare_runs_table(self):
        _, r1 = run_small(Protocol.WI)
        _, r2 = run_small(Protocol.PU)
        text = compare_runs({"wi": r1, "pu": r2})
        assert "wi" in text and "pu" in text
        assert "cycles" in text

    def test_markdown_report_names_fastest(self):
        _, r1 = run_small(Protocol.WI)
        _, r2 = run_small(Protocol.PU)
        md = markdown_report({"wi": r1, "pu": r2})
        fastest = "wi" if r1.total_cycles < r2.total_cycles else "pu"
        assert f"**{fastest}**" in md
        assert md.startswith("# ")


class TestPhaseTracker:
    def _run(self):
        from repro.metrics.phases import PhaseTracker
        from repro.sync import IdealBarrier
        cfg = MachineConfig(num_procs=2, protocol=Protocol.PU)
        m = Machine(cfg, max_events=500_000)
        tracker = PhaseTracker(m)
        bar = IdealBarrier(m)
        a = m.memmap.alloc_word(1, "a")

        def prog(node):
            # phase 1: node 0 writes a lot; phase 2: mostly idle
            if node == 0:
                for i in range(6):
                    yield Write(a, i)
                yield Fence()
            else:
                yield Read(a)
            yield from bar.wait(node)
            if node == 0:
                yield from tracker.mark("busy-phase")
            yield from bar.wait(node)
            yield Compute(100)
            yield from bar.wait(node)
            if node == 0:
                yield from tracker.mark("idle-phase")

        m.spawn_all(lambda n: prog(n))
        m.run()
        return tracker

    def test_phase_labels_and_order(self):
        tracker = self._run()
        phases = tracker.phases()
        assert [p.label for p in phases] == ["busy-phase", "idle-phase"]

    def test_traffic_attributed_to_busy_phase(self):
        tracker = self._run()
        busy, idle = tracker.phases()
        assert busy.messages > idle.messages
        assert busy.misses["total"] >= idle.misses["total"]
        assert busy.cycles > 0 and idle.cycles > 0

    def test_render_table(self):
        tracker = self._run()
        text = tracker.render()
        assert "busy-phase" in text and "idle-phase" in text
