"""The declarative transition tables: structural validation, JSON
round-trips, and agreement with the controllers' HANDLERS tables."""

from __future__ import annotations

import pytest

from repro.config import Protocol
from repro.network.messages import MsgType
from repro.protocols import _CTRL_CLASSES
from repro.protospec import (
    Impossible, ProtocolSpec, SideSpec, SpecError, SPEC_BUILDERS,
    TransitionRow, get_spec,
)

ALL = ("wi", "pu", "cu", "hybrid", "mesi")


# --- the shipped tables -----------------------------------------------

@pytest.mark.parametrize("name", ALL)
def test_builders_produce_valid_specs(name):
    spec = SPEC_BUILDERS[name]()
    spec.validate()              # raises SpecError on any problem
    assert spec.protocol == name
    assert spec.cache.name == "cache" and spec.home.name == "home"
    assert spec.cache.initial in spec.cache.stable
    assert spec.home.initial in spec.home.stable


@pytest.mark.parametrize("name", ALL)
def test_receivable_matches_controller_handlers(name):
    """The fail-fast validation in protocols.base depends on this: the
    spec's receivable set IS the controller's HANDLERS key set."""
    spec = get_spec(name)
    cls = _CTRL_CLASSES[Protocol.parse(name)]
    assert spec.receivable() == frozenset(cls.HANDLERS)


@pytest.mark.parametrize("name", ALL)
def test_spec_json_round_trip(name):
    spec = SPEC_BUILDERS[name]()
    again = ProtocolSpec.loads(spec.dumps())
    assert again == spec
    again.validate()


@pytest.mark.parametrize("name", ALL)
def test_every_msgtype_is_accounted_for(name):
    spec = get_spec(name)
    used = spec.used_messages()
    unused = {n for n, _ in spec.unused_messages}
    assert used | unused == set(MsgType.__members__)
    assert not used & unused


def test_get_spec_accepts_enum_and_string_and_caches():
    assert get_spec(Protocol.WI) is get_spec("wi")
    assert get_spec(Protocol.MESI) is get_spec("mesi")
    with pytest.raises(KeyError):
        get_spec("dragon")


def test_hybrid_guards_separate_the_merged_sides():
    """Colliding (state, event) pairs in the merged hybrid table must
    be disambiguated by the block-management guard."""
    hybrid = get_spec("hybrid")
    for side in hybrid.sides:
        seen = {}
        for row in side.rows:
            key = (row.state, row.event, row.guard or "")
            assert key not in seen, (
                f"hybrid/{side.name}: duplicate {key}")
            seen[key] = row


# --- validation errors ------------------------------------------------

def _side(**kw) -> SideSpec:
    base = dict(name="cache", initial="I", states=("I", "V"),
                stable=("I", "V"), events=("READ_REPLY",),
                rows=(TransitionRow("I", "READ_REPLY", ("install",),
                                    "V"),),
                impossible=(Impossible("V", "READ_REPLY", "only one"),))
    base.update(kw)
    return SideSpec(**base)


def _spec(cache=None, home=None, unused=()) -> ProtocolSpec:
    return ProtocolSpec(
        protocol="toy", description="test spec",
        cache=cache if cache is not None else _side(),
        home=home if home is not None else _side(
            name="home", initial="U", states=("U",), stable=("U",),
            events=("READ_REQ",),
            rows=(TransitionRow("U", "READ_REQ",
                                ("send:READ_REPLY",)),),
            impossible=()),
        unused_messages=tuple(unused))


def test_validate_accepts_the_toy_spec():
    _spec().validate()


@pytest.mark.parametrize("broken, match", [
    (dict(initial="X"), "initial state"),
    (dict(states=("I", "I", "V")), "duplicate state"),
    (dict(stable=("I", "Z")), "stable states"),
    (dict(events=("NOT_A_MSG",)), "not a MsgType"),
    (dict(events=("local:nonsense",)), "unknown local event"),
])
def test_validate_rejects_bad_side_structure(broken, match):
    with pytest.raises(SpecError, match=match):
        _spec(cache=_side(**broken)).validate()


@pytest.mark.parametrize("row, match", [
    (TransitionRow("Z", "READ_REPLY", ()), "unknown state"),
    (TransitionRow("I", "INV", ()), "not in the side's alphabet"),
    (TransitionRow("I", "READ_REPLY", (), next_state="Z"),
     "unknown next_state"),
    (TransitionRow("I", "READ_REPLY", ("frobnicate",)),
     "unknown action"),
    (TransitionRow("I", "READ_REPLY", ("send:NOPE",)),
     "unknown action"),
])
def test_validate_rejects_bad_rows(row, match):
    side = _side(rows=(row,), impossible=())
    with pytest.raises(SpecError, match=match):
        _spec(cache=side).validate()


def test_validate_rejects_empty_impossible_reason():
    side = _side(impossible=(Impossible("V", "READ_REPLY", "  "),))
    with pytest.raises(SpecError, match="empty reason"):
        _spec(cache=side).validate()


def test_validate_rejects_bad_unused_messages():
    with pytest.raises(SpecError, match="not a MsgType"):
        _spec(unused=(("NOPE", "because"),)).validate()
    with pytest.raises(SpecError, match="needs a"):
        _spec(unused=(("INV", ""),)).validate()


def test_row_round_trip_drops_no_field():
    row = TransitionRow("SM_W", "INV", ("invalidate", "ack"),
                        next_state="IM_AD", guard="conflict",
                        retry=True, fairness="FIFO", note="race")
    assert TransitionRow.from_json(row.to_json()) == row
    bare = TransitionRow("I", "INV", ())
    assert TransitionRow.from_json(bare.to_json()) == bare
