"""Direct unit coverage for every lint rule L1-L6: each rule gets one
minimal violating op stream and one clean near-miss that differs by the
single op the rule is about."""

from __future__ import annotations

from repro.checkers import run_lint
from repro.config import MachineConfig, Protocol
from repro.isa.ops import (
    Fence, FetchStore, Flush, Read, SpinUntil, Write,
)
from repro.runtime import Machine


def _machine(procs: int = 2) -> Machine:
    return Machine(MachineConfig(num_procs=procs, protocol=Protocol.WI))


def _free(v) -> bool:
    return v == 0


def _lock(machine):
    mm = machine.memmap
    lock = mm.alloc_word(0, "lock")
    mm.mark_sync(lock)
    mm.mark_release(lock, predicate=_free)
    return lock


def _lint(machine, *programs):
    return run_lint(machine.memmap, list(enumerate(programs)))


# --- L1: missing-release-fence ----------------------------------------

def test_l1_unfenced_release_store_is_flagged():
    machine = _machine(1)
    lock = _lock(machine)
    data = machine.memmap.alloc_word(0, "data")

    def program():
        yield SpinUntil(lock, _free)
        yield Write(data, 1)
        yield Write(lock, 0)       # BUG: no Fence since the acquire

    report = _lint(machine, program())
    found = report.by_rule("missing-release-fence")
    assert len(found) == 1, report.render()
    assert found[0].word == machine.memmap.config.word_of(lock)


def test_l1_fenced_release_store_is_clean():
    machine = _machine(1)
    lock = _lock(machine)
    data = machine.memmap.alloc_word(0, "data")

    def program():
        yield SpinUntil(lock, _free)
        yield Write(data, 1)
        yield Fence()              # the near-miss: one fence added
        yield Write(lock, 0)

    report = _lint(machine, program())
    assert not report.by_rule("missing-release-fence"), report.render()
    assert not report.by_rule("write-escapes-release"), report.render()


# --- L2: unshared-flush -----------------------------------------------

def test_l2_flush_of_private_block_is_flagged():
    machine = _machine(2)
    mm = machine.memmap
    mine = mm.alloc_block(0, "private")
    other = mm.alloc_block(1, "peer-data")

    def flusher():
        yield Write(mine, 1)
        yield Flush(mine)          # BUG: nobody else touches the block

    def peer():
        yield Read(other)

    report = _lint(machine, flusher(), peer())
    found = report.by_rule("unshared-flush")
    assert len(found) == 1, report.render()
    assert found[0].node == 0


def test_l2_flush_of_shared_block_is_clean():
    machine = _machine(2)
    shared = machine.memmap.alloc_block(0, "shared")

    def flusher():
        yield Write(shared, 1)
        yield Flush(shared)

    def peer():
        yield Read(shared)         # the near-miss: one reader added

    report = _lint(machine, flusher(), peer())
    assert not report.by_rule("unshared-flush"), report.render()


# --- L3: write-escapes-release ----------------------------------------

def test_l3_write_after_release_fence_is_flagged():
    machine = _machine(1)
    lock = _lock(machine)
    data = machine.memmap.alloc_word(0, "data")

    def program():
        yield SpinUntil(lock, _free)
        yield Fence()
        yield Write(data, 1)       # BUG: not covered by the fence
        yield Write(lock, 0)

    report = _lint(machine, program())
    found = report.by_rule("write-escapes-release")
    assert len(found) == 1, report.render()
    assert found[0].word == machine.memmap.config.word_of(lock)


def test_l3_write_before_release_fence_is_clean():
    machine = _machine(1)
    lock = _lock(machine)
    data = machine.memmap.alloc_word(0, "data")

    def program():
        yield SpinUntil(lock, _free)
        yield Write(data, 1)       # the near-miss: write moved up
        yield Fence()
        yield Write(lock, 0)

    report = _lint(machine, program())
    assert not report.by_rule("write-escapes-release"), report.render()


# --- L4: spin-never-satisfied -----------------------------------------

def test_l4_unsatisfiable_spin_is_flagged():
    machine = _machine(2)
    flag = machine.memmap.alloc_word(0, "flag")

    def waiter():
        yield SpinUntil(flag, lambda v: v == 1)

    def peer():
        yield Write(flag, 2)       # BUG: never stores the awaited value

    report = _lint(machine, waiter(), peer())
    found = report.by_rule("spin-never-satisfied")
    assert len(found) == 1, report.render()
    assert found[0].node == 0


def test_l4_satisfied_spin_is_clean():
    machine = _machine(2)
    flag = machine.memmap.alloc_word(0, "flag")

    def waiter():
        yield SpinUntil(flag, lambda v: v == 1)

    def peer():
        yield Write(flag, 1)       # the near-miss: the right value

    report = _lint(machine, waiter(), peer())
    assert not report.by_rule("spin-never-satisfied"), report.render()


# --- L5: double-acquire -----------------------------------------------

def test_l5_reacquire_without_release_is_flagged():
    machine = _machine(1)
    lock = _lock(machine)

    def program():
        yield SpinUntil(lock, _free)
        yield SpinUntil(lock, _free)   # BUG: still holding the lock
        yield Fence()
        yield Write(lock, 0)

    report = _lint(machine, program())
    assert len(report.by_rule("double-acquire")) == 1, report.render()


def test_l5_reacquire_after_release_is_clean():
    machine = _machine(1)
    lock = _lock(machine)

    def program():
        yield SpinUntil(lock, _free)
        yield Fence()
        yield Write(lock, 0)           # the near-miss: release between
        yield SpinUntil(lock, _free)
        yield Fence()
        yield Write(lock, 0)

    report = _lint(machine, program())
    assert not report.by_rule("double-acquire"), report.render()


# --- L6: acquire-without-release --------------------------------------

def test_l6_never_released_lock_is_flagged():
    machine = _machine(1)
    lock = _lock(machine)

    def program():
        yield SpinUntil(lock, _free)
        yield Fence()                  # BUG: no release action follows

    report = _lint(machine, program())
    found = report.by_rule("acquire-without-release")
    assert len(found) == 1, report.render()
    assert found[0].word == machine.memmap.config.word_of(lock)


def test_l6_atomic_handoff_is_clean():
    machine = _machine(1)
    lock = _lock(machine)

    def program():
        yield SpinUntil(lock, _free)
        yield Fence()
        yield FetchStore(lock, 0)      # the near-miss: atomic handoff

    report = _lint(machine, program())
    assert not report.by_rule("acquire-without-release"), report.render()
