"""Unit tests for the campaign layer: spec hashing, result
serialization, the content-addressed cache, and the runner."""

import json
import os
import subprocess
import sys
import time

import pytest

from repro.campaign import (
    CampaignError, CampaignRunner, ResultCache, RunRecord, RunSpec,
    SpecTimeoutError, canonical_json, execute_spec, register_workload,
    config_from_jsonable, config_to_jsonable,
    run_result_from_jsonable, run_result_to_jsonable,
)
from repro.campaign.spec import code_version
from repro.config import MachineConfig, Protocol


def tiny_config(**kw) -> MachineConfig:
    return MachineConfig(num_procs=2, protocol=Protocol.PU, **kw)


def lock_spec(**params) -> RunSpec:
    params.setdefault("kind", "tk")
    params.setdefault("total_acquires", 8)
    return RunSpec.make("lock", tiny_config(), **params)


# ----------------------------------------------------------------------
# spec hashing
# ----------------------------------------------------------------------

class TestSpecHash:
    def test_same_spec_same_key(self):
        assert lock_spec().key == lock_spec().key

    def test_param_order_is_canonical(self):
        a = RunSpec.make("lock", tiny_config(), kind="tk",
                         total_acquires=8)
        b = RunSpec.make("lock", tiny_config(), total_acquires=8,
                         kind="tk")
        assert a.key == b.key

    def test_key_covers_config(self):
        a = RunSpec.make("lock", tiny_config(), kind="tk")
        b = RunSpec.make(
            "lock", tiny_config().with_protocol(Protocol.CU), kind="tk")
        assert a.key != b.key

    def test_key_covers_params_and_workload(self):
        base = lock_spec()
        assert base.key != lock_spec(total_acquires=16).key
        assert base.key != RunSpec.make(
            "barrier", tiny_config(), kind="tk", total_acquires=8).key

    def test_key_covers_code_version_salt(self):
        a = RunSpec.make("lock", tiny_config(), code_version_salt="v1",
                         kind="tk")
        b = RunSpec.make("lock", tiny_config(), code_version_salt="v2",
                         kind="tk")
        assert a.key != b.key

    def test_non_scalar_param_rejected(self):
        with pytest.raises(TypeError, match="JSON scalar"):
            RunSpec.make("lock", tiny_config(), kind=["tk"])

    def test_spec_jsonable_round_trip(self):
        spec = lock_spec()
        blob = json.loads(canonical_json(spec.to_jsonable()))
        assert RunSpec.from_jsonable(blob) == spec
        assert RunSpec.from_jsonable(blob).key == spec.key

    def test_key_stable_across_processes(self):
        """The cache key must not depend on per-process state
        (PYTHONHASHSEED, dict order, enum identity)."""
        spec = RunSpec.make("lock", tiny_config(),
                            code_version_salt="pinned", kind="tk",
                            total_acquires=8)
        script = (
            "from repro.campaign import RunSpec\n"
            "from repro.config import MachineConfig, Protocol\n"
            "spec = RunSpec.make('lock',"
            " MachineConfig(num_procs=2, protocol=Protocol.PU),"
            " code_version_salt='pinned', kind='tk',"
            " total_acquires=8)\n"
            "print(spec.key)\n")
        env = dict(os.environ)
        import repro
        src_root = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        env["PYTHONPATH"] = src_root + os.pathsep + \
            env.get("PYTHONPATH", "")
        env["PYTHONHASHSEED"] = "12345"
        out = subprocess.run([sys.executable, "-c", script], env=env,
                             capture_output=True, text=True, check=True)
        assert out.stdout.strip() == spec.key

    def test_code_version_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_CODE_VERSION", "pinned-by-env")
        assert code_version() == "pinned-by-env"
        spec = lock_spec()
        assert spec.code_version == "pinned-by-env"


# ----------------------------------------------------------------------
# config / result serialization
# ----------------------------------------------------------------------

class TestSerialization:
    def test_config_round_trip(self):
        cfg = MachineConfig(num_procs=4, protocol=Protocol.CU,
                            update_threshold=7,
                            hybrid_default=Protocol.PU,
                            sequential_consistency=True)
        blob = json.loads(json.dumps(config_to_jsonable(cfg)))
        assert config_from_jsonable(blob) == cfg

    def test_run_result_round_trip(self):
        record = execute_spec(lock_spec())
        assert record.ok, record.error
        blob = json.loads(json.dumps(run_result_to_jsonable(record.sim)))
        restored = run_result_from_jsonable(blob)
        assert restored == record.sim
        # the network stats carry enum- and tuple-keyed dicts; make
        # sure the reconstruction really rebuilt the original keys
        assert restored.network.by_type == record.sim.network.by_type
        assert restored.network.by_pair == record.sim.network.by_pair

    def test_run_record_round_trip(self):
        record = execute_spec(lock_spec())
        blob = json.loads(json.dumps(record.to_jsonable()))
        assert RunRecord.from_jsonable(blob) == record

    def test_failed_record_round_trip(self):
        record = execute_spec(RunSpec.make("lock", tiny_config(),
                                           kind="no-such-lock"))
        assert not record.ok
        assert record.sim is None
        assert record.error_type
        blob = json.loads(json.dumps(record.to_jsonable()))
        assert RunRecord.from_jsonable(blob) == record


# ----------------------------------------------------------------------
# result cache
# ----------------------------------------------------------------------

class TestResultCache:
    def test_put_get_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = lock_spec()
        record = execute_spec(spec)
        path = cache.put(record)
        assert os.path.exists(path)
        hit = cache.get(spec)
        assert hit == record
        assert hit.cached

    def test_miss_on_unknown_key(self, tmp_path):
        assert ResultCache(tmp_path).get(lock_spec()) is None

    def test_code_version_salt_invalidates(self, tmp_path):
        """Same machine/workload/params under a new code version must
        be a cache miss (the salt is part of the key)."""
        cache = ResultCache(tmp_path)
        old = RunSpec.make("lock", tiny_config(),
                           code_version_salt="commit-A", kind="tk",
                           total_acquires=8)
        cache.put(execute_spec(old))
        new = RunSpec.make("lock", tiny_config(),
                           code_version_salt="commit-B", kind="tk",
                           total_acquires=8)
        assert cache.get(old) is not None
        assert cache.get(new) is None

    def test_corrupt_entry_degrades_to_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = lock_spec()
        path = cache.put(execute_spec(spec))
        with open(path, "w") as fh:
            fh.write("{not json")
        assert cache.get(spec) is None

    def test_failures_are_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = RunSpec.make("lock", tiny_config(), kind="no-such-lock")
        record = execute_spec(spec)
        assert cache.put(record) is None
        assert cache.get(spec) is None

    def test_keys_listing(self, tmp_path):
        cache = ResultCache(tmp_path)
        record = execute_spec(lock_spec())
        cache.put(record)
        assert list(cache.keys()) == [record.key]
        assert len(cache) == 1
        assert record.key in cache


# ----------------------------------------------------------------------
# cache pruning (LRU by mtime)
# ----------------------------------------------------------------------

class TestCachePrune:
    def fill(self, cache, count=4):
        """Store ``count`` records with strictly increasing mtimes."""
        specs = [lock_spec(total_acquires=8 + i) for i in range(count)]
        paths = []
        for i, spec in enumerate(specs):
            path = cache.put(execute_spec(spec))
            os.utime(path, (1_000_000 + i, 1_000_000 + i))
            paths.append(path)
        return specs, paths

    def test_prune_noop_under_limit(self, tmp_path):
        cache = ResultCache(tmp_path)
        self.fill(cache)
        assert cache.prune(cache.total_bytes()) == 0
        assert len(cache) == 4

    def test_prune_evicts_oldest_first(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs, paths = self.fill(cache)
        # budget = the two newest files: exactly the oldest two go
        budget = sum(os.path.getsize(p) for p in paths[2:])
        removed = cache.prune(budget)
        assert removed == 2
        assert cache.get(specs[0]) is None
        assert cache.get(specs[1]) is None
        assert cache.get(specs[2]) is not None
        assert cache.get(specs[3]) is not None

    def test_get_refreshes_lru_position(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs, paths = self.fill(cache)
        # a hit on the oldest entry promotes it past the others
        assert cache.get(specs[0]) is not None
        budget = os.path.getsize(paths[0]) + os.path.getsize(paths[3])
        cache.prune(budget)
        assert cache.get(specs[0]) is not None
        assert cache.get(specs[1]) is None

    def test_prune_to_zero_empties_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        self.fill(cache)
        cache.prune(0)
        assert len(cache) == 0
        assert cache.total_bytes() == 0

    def test_prune_tolerates_corrupt_and_tmp_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs, paths = self.fill(cache)
        with open(paths[2], "w") as fh:
            fh.write("{not json")        # corrupt entry, still a file
        shard = os.path.dirname(paths[0])
        dropping = os.path.join(shard, "crashed-writer.tmp")
        with open(dropping, "w") as fh:
            fh.write("x" * 10_000)
        # tmp droppings are reclaimed even when already under budget
        assert cache.prune(cache.total_bytes()) >= 1
        assert not os.path.exists(dropping)
        cache.prune(0)
        assert cache.total_bytes() == 0

    def test_prune_missing_root(self, tmp_path):
        cache = ResultCache(tmp_path / "never-created")
        assert cache.prune(0) == 0
        assert cache.total_bytes() == 0


# ----------------------------------------------------------------------
# runner
# ----------------------------------------------------------------------

def suite_specs():
    cfg = tiny_config()
    return [
        RunSpec.make("lock", cfg, kind="tk", total_acquires=8),
        RunSpec.make("barrier", cfg, kind="cb", episodes=4),
        RunSpec.make("reduction", cfg, kind="sr", iterations=4),
    ]


class TestCampaignRunner:
    def test_records_in_spec_order(self):
        specs = suite_specs()
        report = CampaignRunner().run(specs)
        assert [r.key for r in report.records] == [s.key for s in specs]
        assert report.executed == 3 and report.ok

    def test_parallel_identical_to_serial(self):
        specs = suite_specs()
        serial = CampaignRunner(jobs=1).run(specs)
        parallel = CampaignRunner(jobs=2).run(specs)
        assert serial.records == parallel.records

    def test_duplicate_specs_run_once(self):
        spec = suite_specs()[0]
        report = CampaignRunner().run([spec, spec, spec])
        assert report.executed == 1
        assert report.records[0] == report.records[1] == \
            report.records[2]

    def test_warm_cache_executes_nothing(self, tmp_path):
        specs = suite_specs()
        runner = CampaignRunner(cache=ResultCache(tmp_path))
        cold = runner.run(specs)
        assert cold.executed == 3 and cold.cached == 0
        warm = runner.run(specs)
        assert warm.executed == 0 and warm.cached == 3
        assert [r.sim for r in warm.records] == \
            [r.sim for r in cold.records]

    def test_per_spec_failure_captured(self):
        specs = suite_specs()
        specs.insert(1, RunSpec.make("lock", tiny_config(),
                                     kind="no-such-lock"))
        report = CampaignRunner().run(specs)
        assert report.failed == 1 and not report.ok
        bad = report.records[1]
        assert not bad.ok and bad.error_type == "ValueError"
        assert "no-such-lock" in bad.error
        # the rest of the campaign still completed
        assert all(r.ok for i, r in enumerate(report.records) if i != 1)
        with pytest.raises(CampaignError, match="no-such-lock"):
            report.raise_on_failure()

    def test_unknown_workload_is_captured(self):
        report = CampaignRunner().run(
            [RunSpec.make("no-such-workload", tiny_config())])
        assert report.failed == 1
        assert report.records[0].error_type == "KeyError"

    def test_progress_callback_sees_every_position(self, tmp_path):
        specs = suite_specs() + [suite_specs()[0]]   # with a duplicate
        seen = []
        runner = CampaignRunner(cache=ResultCache(tmp_path))
        runner.run(specs, progress=lambda i, s, r: seen.append(i))
        assert sorted(seen) == [0, 1, 2, 3]

    def test_registered_workload_runs(self):
        @register_workload("unit-test-const")
        def _const(spec):
            record = execute_spec(lock_spec())
            return record.sim, {"answer": spec.params_dict["x"] * 2}

        report = CampaignRunner().run(
            [RunSpec.make("unit-test-const", tiny_config(), x=21)])
        assert report.records[0].metrics["answer"] == 42


# ----------------------------------------------------------------------
# per-spec timeouts and cancellation
# ----------------------------------------------------------------------

@register_workload("unit-test-slow")
def _slow_workload(spec):
    import time as _time
    _time.sleep(spec.params_dict.get("sleep_s", 10.0))
    return None, {"slept": 1.0}


def slow_spec(sleep_s: float = 10.0) -> RunSpec:
    return RunSpec.make("unit-test-slow", tiny_config(),
                        sleep_s=sleep_s)


class TestSpecTimeout:
    def test_execute_spec_times_out(self):
        record = execute_spec(slow_spec(), timeout_s=0.1)
        assert not record.ok
        assert record.error_type == "SpecTimeoutError"
        assert "timeout" in record.error
        assert record.elapsed_s < 5.0

    def test_fast_spec_unaffected(self):
        record = execute_spec(slow_spec(sleep_s=0.01), timeout_s=5.0)
        assert record.ok
        assert record.metrics["slept"] == 1.0

    def test_runner_records_timeout_instead_of_hanging(self):
        """Regression: a stuck workload must land as a failed record
        rather than wedging the whole campaign (satellite #2)."""
        runner = CampaignRunner(jobs=1, spec_timeout_s=0.1)
        t0 = time.perf_counter()
        report = runner.run([slow_spec(), lock_spec()])
        elapsed = time.perf_counter() - t0
        assert elapsed < 5.0
        assert report.failed == 1
        assert report.records[0].error_type == "SpecTimeoutError"
        assert report.records[1].ok
        with pytest.raises(CampaignError, match="timeout"):
            report.raise_on_failure()

    def test_timeouts_never_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = CampaignRunner(jobs=1, cache=cache,
                                spec_timeout_s=0.1)
        runner.run([slow_spec()])
        assert cache.get(slow_spec()) is None

    def test_timeout_validation(self):
        with pytest.raises(ValueError):
            CampaignRunner(spec_timeout_s=0)
        with pytest.raises(ValueError):
            CampaignRunner(spec_timeout_s=-1)

    def test_default_is_no_timeout(self):
        record = execute_spec(slow_spec(sleep_s=0.01))
        assert record.ok


class TestCancellation:
    def test_cancel_lands_remaining_as_cancelled(self):
        specs = [lock_spec(total_acquires=8 + i) for i in range(4)]
        done = []

        def cancel():
            return len(done) >= 1

        report = CampaignRunner(jobs=1).run(
            specs, progress=lambda i, s, r: done.append(i),
            cancel=cancel)
        assert report.executed == 1
        assert report.cancelled == 3
        assert report.failed == 3       # cancelled positions are not ok
        kinds = [r.error_type for r in report.records if not r.ok]
        assert kinds == ["Cancelled"] * 3
        assert len(report.records) == 4         # fully populated
        assert not report.ok

    def test_cancelled_specs_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = [lock_spec(total_acquires=8 + i) for i in range(3)]
        CampaignRunner(jobs=1, cache=cache).run(
            specs, cancel=lambda: True)
        assert len(cache) == 0

    def test_no_cancel_runs_everything(self):
        specs = [lock_spec(total_acquires=8 + i) for i in range(3)]
        report = CampaignRunner(jobs=1).run(specs,
                                            cancel=lambda: False)
        assert report.executed == 3 and report.cancelled == 0
