"""A message the active protocol does not speak must fail loudly: the
controller raises, and (with the sanitizer on) the checker report
records an ``unhandled-message`` violation first."""

from __future__ import annotations

import pytest

from repro.config import MachineConfig, Protocol
from repro.network.messages import Message, MsgType
from repro.runtime import Machine


def _machine(**overrides) -> Machine:
    cfg = MachineConfig(num_procs=2, protocol=Protocol.WI, **overrides)
    return Machine(cfg)


def _foreign_message() -> Message:
    # UPD_PROP belongs to the update protocols; WI has no handler
    return Message(MsgType.UPD_PROP, src=1, dst=0, block=0,
                   word=0, value=7)


def test_unhandled_message_raises():
    machine = _machine(enable_sanitizer=False)
    with pytest.raises(RuntimeError, match="no handler"):
        machine.controllers[0].receive(_foreign_message())


def test_unhandled_message_recorded_by_sanitizer():
    machine = _machine(enable_sanitizer=True)
    with pytest.raises(RuntimeError, match="no handler"):
        machine.controllers[0].receive(_foreign_message())
    found = machine.checker_report.by_rule("unhandled-message")
    assert len(found) == 1, machine.checker_report.render()
    assert found[0].node == 0
    assert "UPD_PROP" in found[0].detail or "upd_prop" in found[0].detail
