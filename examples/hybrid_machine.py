#!/usr/bin/env python
"""Per-block protocol selection on a FLASH/Typhoon-style machine.

The paper's motivation is hardware that "can support multiple coherence
protocols within the same application".  This example builds a HYBRID
machine, tags each data structure of a small application with the
protocol that suits its sharing pattern, and compares against the three
fixed-protocol machines:

* per-processor stream buffers (produced whole, consumed whole by one
  neighbour)  -> write invalidate: one block fetch moves 16 words;
* the work-distribution ticket lock (hot, word-grained)  -> competitive
  update: spinners are refreshed in place, stale sharers get dropped;
* the progress flags (single writer, many spinning readers) -> pure
  update.

Run:  python examples/hybrid_machine.py
"""

from repro.config import MachineConfig, Protocol
from repro.isa.ops import Compute, Fence, Read, Write
from repro.metrics import compare_runs, render_traffic_matrix
from repro.runtime import Machine
from repro.sync import IdealBarrier, TicketLock

P = 8
EPISODES = 12
WORDS = 16


def build_and_run(protocol: Protocol):
    machine = Machine(MachineConfig(num_procs=P, protocol=protocol),
                      max_events=20_000_000)
    mm = machine.memmap

    if protocol is Protocol.HYBRID:
        # stream buffers under WI (the hybrid default here)
        stream = [mm.alloc_words(i, WORDS, f"out{i}") for i in range(P)]
        with mm.use_protocol(Protocol.CU):
            lock = TicketLock(machine)
        with mm.use_protocol(Protocol.PU):
            progress = mm.alloc_word(0, "progress")
    else:
        stream = [mm.alloc_words(i, WORDS, f"out{i}") for i in range(P)]
        lock = TicketLock(machine)
        progress = mm.alloc_word(0, "progress")

    barrier = IdealBarrier(machine)

    def program(node):
        left = (node - 1) % P
        for ep in range(EPISODES):
            # produce a block of output
            for i, addr in enumerate(stream[node]):
                yield Write(addr, ep * 1000 + node * 100 + i)
            yield Fence()
            yield from barrier.wait(node)
            # consume the left neighbour's block
            total = 0
            for addr in stream[left]:
                total += yield Read(addr)
            # grab a work token under the hot lock
            token = yield from lock.acquire(node)
            yield Compute(25)
            yield from lock.release(node, token)
            # node 0 publishes progress; everyone glances at it
            if node == 0:
                yield Write(progress, ep + 1)
                yield Fence()
            else:
                yield Read(progress)
            yield from barrier.wait(node)

    machine.spawn_all(program)
    return machine, machine.run()


def main():
    runs = {}
    machines = {}
    for protocol in (Protocol.WI, Protocol.PU, Protocol.CU,
                     Protocol.HYBRID):
        machines[protocol.value], runs[protocol.value] = \
            build_and_run(protocol)

    print(compare_runs(runs, title=f"Mixed workload, {P} processors, "
                                   f"{EPISODES} episodes"))
    print()
    best = min(runs, key=lambda k: runs[k].total_cycles)
    print(f"Winner: {best}")
    if best == "hybrid":
        print("The per-block assignment (stream=WI, lock=CU, "
              "flags=PU) beats every fixed protocol -- the paper's")
        print("conclusion: protocol AND implementation per construct.")
    print()
    print(render_traffic_matrix(runs["hybrid"], P))


if __name__ == "__main__":
    main()
