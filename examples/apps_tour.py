#!/usr/bin/env python
"""Tour of the application kernels + instrumentation.

Runs the three bundled application kernels (Jacobi stencil, parallel
histogram, self-scheduling work queue) under each protocol, prints a
comparison, and demonstrates the timeline instrumentation on a small
run: you can literally see the WI spinner stalling on memory where the
PU spinner sits on a fresh cached copy.

Run:  python examples/apps_tour.py
"""

from repro.config import ALL_PROTOCOLS, MachineConfig, Protocol
from repro.apps import run_histogram, run_jacobi, run_workqueue
from repro.isa.ops import Compute, Fence, SpinUntil, Write
from repro.metrics import format_table
from repro.metrics.timeline import Timeline
from repro.runtime import Machine

P = 8


def kernels():
    rows = []
    for proto in ALL_PROTOCOLS:
        jac = run_jacobi(MachineConfig(num_procs=P, protocol=proto),
                         iters=8, cells_per_proc=8)
        hist = run_histogram(MachineConfig(num_procs=P, protocol=proto),
                             items_per_proc=24, num_bins=4)
        wq = run_workqueue(MachineConfig(num_procs=P, protocol=proto),
                           total_items=48)
        rows.append([proto.value,
                     f"{jac.cycles_per_iter:,.0f}",
                     hist.result.total_cycles,
                     f"{wq.cycles_per_item:,.0f}",
                     f"{wq.balance:.2f}"])
    print(format_table(
        ["protocol", "jacobi cyc/iter", "histogram cycles",
         "queue cyc/item", "queue balance"],
        rows, title=f"Application kernels, {P} processors "
                    f"(all runs self-verified)"))


def timeline_demo(protocol):
    machine = Machine(MachineConfig(num_procs=2, protocol=protocol))
    tl = Timeline(machine.sim)
    flag = machine.memmap.alloc_word(0, "flag")

    def producer():
        for i in range(3):
            yield Compute(150)
            yield Write(flag, i + 1)
            yield Fence()

    def consumer():
        for i in range(3):
            yield SpinUntil(flag, lambda v, i=i: v == i + 1)
            yield Compute(60)

    machine.spawn(0, tl.instrument(0, producer()))
    machine.spawn(1, tl.instrument(1, consumer()))
    machine.run()
    print()
    print(f"[{protocol.value}] producer/consumer timeline:")
    print(tl.render(width=64))


def main():
    kernels()
    for proto in (Protocol.WI, Protocol.PU):
        timeline_demo(proto)
    print()
    print("Reading the charts: the consumer alternates spin (.) and")
    print("compute (#) on each hand-off; the producer's 'm' slots are")
    print("its write transactions (write-allocate + write-through under")
    print("PU, upgrade/invalidate under WI), and '|' marks fences.")


if __name__ == "__main__":
    main()
