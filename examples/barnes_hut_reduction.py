#!/usr/bin/env python
"""A Barnes-Hut-style simulation step: reductions inside a real loop.

The paper's parallel-reduction example "can be found in the Barnes-Hut
application from the Splash2 suite" -- each N-body step computes local
forces, reduces a global maximum (to size the next timestep), and
barriers between phases.  This example runs that skeleton on the
simulator and shows why the reduction *implementation* should follow
the *protocol*:

* under write-invalidate, use the parallel (lock-based) reduction;
* under pure/competitive update, use the sequential one.

Run:  python examples/barnes_hut_reduction.py
"""

from repro import ALL_PROTOCOLS, Compute, MachineConfig, Machine, Protocol
from repro.metrics import format_table
from repro.sync import (
    IdealBarrier, IdealLock, ParallelReduction, SequentialReduction,
)

P = 16
STEPS = 20
BODIES_PER_PROC = 12
FORCE_CYCLES = 9            # per-body "force computation"


def nbody_program(node, reduction, barrier):
    """One processor's share of the simulation loop."""
    for step in range(STEPS):
        # phase 1: compute forces for the local bodies (private work)
        yield Compute(BODIES_PER_PROC * FORCE_CYCLES)
        # deterministic pseudo "max force" of this processor this step
        local_max = step * 1000 + (node * 2654435761 >> 7) % 997
        # phase 2: global max-force reduction (sizes the timestep)
        got = yield from reduction.reduce(node, local_max)
        assert got >= local_max
        # phase 3: advance the local bodies
        yield Compute(BODIES_PER_PROC * 3)
        yield from barrier.wait(node)


def run(protocol, kind):
    cfg = MachineConfig(num_procs=P, protocol=protocol)
    machine = Machine(cfg)
    barrier = IdealBarrier(machine)
    if kind == "pr":
        red = ParallelReduction(machine, IdealLock(machine), barrier)
    else:
        red = SequentialReduction(machine, barrier)
    phase_barrier = IdealBarrier(machine)
    machine.spawn_all(
        lambda node: nbody_program(node, red, phase_barrier))
    result = machine.run()
    return result


def main():
    rows = []
    best = {}
    for protocol in ALL_PROTOCOLS:
        for kind in ("sr", "pr"):
            result = run(protocol, kind)
            per_step = result.total_cycles / STEPS
            rows.append([
                protocol.value, kind, f"{per_step:,.0f}",
                result.misses["total"], result.updates["total"],
                result.updates["useful"],
            ])
            cur = best.get(protocol.value)
            if cur is None or per_step < cur[1]:
                best[protocol.value] = (kind, per_step)

    print(format_table(
        ["protocol", "reduction", "cycles/step", "misses", "updates",
         "useful upd"],
        rows, title=f"Barnes-Hut skeleton, {P} processors, "
                    f"{STEPS} steps"))
    print()
    for proto, (kind, per_step) in best.items():
        name = ("sequential" if kind == "sr" else "parallel")
        print(f"  under {proto:>2}: use the {name} reduction "
              f"({per_step:,.0f} cycles/step)")
    print()
    print("The protocol decides the right implementation -- the paper's")
    print("central conclusion, on a real application skeleton.")


if __name__ == "__main__":
    main()
