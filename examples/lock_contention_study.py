#!/usr/bin/env python
"""Choosing a lock for your machine: a contention study.

Reproduces the practical question behind paper section 4.1: given a
machine whose coherence protocol you can pick (FLASH/Typhoon-style
protocol processors), which lock should protect a critical section at a
given contention level?

Sweeps processor counts and critical-section lengths for every
lock x protocol combination and prints the winner per scenario.

Run:  python examples/lock_contention_study.py  [--fast]
"""

import sys

from repro.config import ALL_PROTOCOLS, MachineConfig
from repro.metrics import format_table
from repro.workloads import run_lock_workload

FAST = "--fast" in sys.argv

SIZES = (2, 8, 16) if FAST else (2, 4, 8, 16, 32)
HOLDS = (20, 200)               # short vs long critical sections
TOTAL = 320 if FAST else 1600


def main():
    rows = []
    winners = {}
    for P in SIZES:
        for hold in HOLDS:
            best = None
            for kind in ("tk", "MCS", "uc"):
                for proto in ALL_PROTOCOLS:
                    cfg = MachineConfig(num_procs=P, protocol=proto)
                    res = run_lock_workload(cfg, kind,
                                            total_acquires=TOTAL,
                                            hold_cycles=hold)
                    label = f"{kind}-{proto.short}"
                    lat = res.avg_latency
                    rows.append([P, hold, label, lat,
                                 res.result.misses["total"],
                                 res.result.updates["total"]])
                    if best is None or lat < best[1]:
                        best = (label, lat)
            winners[(P, hold)] = best

    print(format_table(
        ["procs", "hold", "lock-proto", "latency", "misses", "updates"],
        rows, title="Lock x protocol x contention sweep"))
    print()
    print("Best combination per scenario:")
    for (P, hold), (label, lat) in sorted(winners.items()):
        contention = "short CS (hot)" if hold == HOLDS[0] else \
            "long CS (cooler)"
        print(f"  {P:>2} procs, {contention:<17} -> {label:>6} "
              f"({lat:,.0f} cycles/handoff)")
    print()
    print("Paper section 4.1's guidance: ticket+update up to ~4 procs,")
    print("MCS+CU beyond; protocol-conscious choice beats any fixed one.")


if __name__ == "__main__":
    main()
