#!/usr/bin/env python
"""Barrier scaling study: which barrier, on which protocol, at what size?

Regenerates the engineering guidance of paper section 4.2 as a scaling
table: the centralized barrier is fine for small machines, but
dissemination under an update-based protocol wins everywhere -- and its
advantage *grows* with machine size because its update traffic is all
useful.

Run:  python examples/barrier_scaling.py  [--fast]
"""

import sys

from repro.config import ALL_PROTOCOLS, MachineConfig
from repro.metrics import Series
from repro.workloads import run_barrier_workload

FAST = "--fast" in sys.argv
SIZES = (2, 8, 16) if FAST else (2, 4, 8, 16, 32)
EPISODES = 30 if FAST else 120


def main():
    series = Series(
        title="Barrier episode latency vs machine size",
        xlabel="procs", ylabel="cycles / episode")
    useful_frac = {}
    for kind in ("cb", "db", "tb"):
        for proto in ALL_PROTOCOLS:
            label = f"{kind}-{proto.short}"
            for P in SIZES:
                cfg = MachineConfig(num_procs=P, protocol=proto)
                res = run_barrier_workload(cfg, kind, episodes=EPISODES)
                series.add(label, P, res.avg_latency)
                if P == max(SIZES) and proto.is_update_based:
                    u = res.result.updates
                    if u["total"]:
                        useful_frac[label] = u["useful"] / u["total"]

    print(series.render())
    print()
    print(f"Useful fraction of update traffic at {max(SIZES)} procs:")
    for label, frac in sorted(useful_frac.items()):
        bar = "#" * int(frac * 40)
        print(f"  {label:>6} {frac:6.1%} |{bar}")
    print()
    top = max(SIZES)
    db_u = series.get("db-u", top)
    cb_i = series.get("cb-i", top)
    print(f"At {top} processors, dissemination+PU runs a barrier in "
          f"{db_u:,.0f} cycles -- {cb_i / db_u:.1f}x faster than the "
          f"centralized barrier under write-invalidate.")


if __name__ == "__main__":
    main()
