#!/usr/bin/env python
"""Protocol-conscious construct selection, automated.

Machines with programmable protocol processors (FLASH, Typhoon) can run
different coherence protocols for different data.  This example is a
small "advisor": it profiles each synchronization construct of an
application mix under every protocol x implementation combination and
emits a recommendation table -- the workflow the paper's conclusion
advocates ("both the protocol and implementation should be taken into
account").

Run:  python examples/protocol_advisor.py  [--procs N]
"""

import sys

from repro.config import ALL_PROTOCOLS, MachineConfig
from repro.metrics import format_table
from repro.workloads import (
    run_barrier_workload, run_lock_workload, run_reduction_workload,
)


def get_procs() -> int:
    if "--procs" in sys.argv:
        return int(sys.argv[sys.argv.index("--procs") + 1])
    return 16


def profile(P):
    """Measure every construct/implementation/protocol combination."""
    results = {}
    for kind in ("tk", "MCS", "uc"):
        for proto in ALL_PROTOCOLS:
            res = run_lock_workload(
                MachineConfig(num_procs=P, protocol=proto), kind,
                total_acquires=40 * P)
            results[("lock", kind, proto)] = res.avg_latency
    for kind in ("cb", "db", "tb"):
        for proto in ALL_PROTOCOLS:
            res = run_barrier_workload(
                MachineConfig(num_procs=P, protocol=proto), kind,
                episodes=60)
            results[("barrier", kind, proto)] = res.avg_latency
    for kind in ("sr", "pr"):
        for proto in ALL_PROTOCOLS:
            res = run_reduction_workload(
                MachineConfig(num_procs=P, protocol=proto), kind,
                iterations=60)
            results[("reduction", kind, proto)] = res.avg_latency
    return results


def main():
    P = get_procs()
    print(f"Profiling constructs on a {P}-processor machine "
          f"(this simulates {3 * 3 + 3 * 3 + 2 * 3} configurations)...")
    results = profile(P)

    rows = []
    for (construct, kind, proto), lat in sorted(
            results.items(), key=lambda kv: (kv[0][0], kv[0][1],
                                             kv[0][2].value)):
        rows.append([construct, kind, proto.value, lat])
    print()
    print(format_table(["construct", "impl", "protocol", "latency"],
                       rows, title="Full profile"))

    print()
    print("Recommendations:")
    for construct in ("lock", "barrier", "reduction"):
        combos = {(k, p): v for (c, k, p), v in results.items()
                  if c == construct}
        (kind, proto), lat = min(combos.items(), key=lambda kv: kv[1])
        # best fixed-protocol alternative if the machine cannot switch
        per_proto = {}
        for (k, p), v in combos.items():
            if v < per_proto.get(p, (None, float("inf")))[1]:
                per_proto[p] = (k, v)
        worst_fixed = max(v for _, v in per_proto.values())
        print(f"  {construct:>10}: use {kind}-{proto.value} "
              f"({lat:,.0f} cycles); a protocol-blind choice can cost "
              f"{worst_fixed / lat:.1f}x")


if __name__ == "__main__":
    main()
