#!/usr/bin/env python
"""Quickstart: build a machine, run threads, inspect the traffic.

Simulates a 8-node DASH-like multiprocessor under each coherence
protocol running a tiny producer/consumers program, and prints the
cycle count plus the classified communication traffic -- the paper's
two lenses on every experiment.

Run:  python examples/quickstart.py
"""

from repro import (
    ALL_PROTOCOLS, Compute, Fence, MachineConfig, Machine, Read,
    SpinUntil, Write,
)


def producer(machine, data, flag, n_items):
    """Writes a batch of values, then raises the flag."""
    def prog():
        for i, addr in enumerate(data):
            yield Write(addr, 100 + i)
            yield Compute(10)           # "produce" the next item
        yield Fence()                   # writes globally performed
        yield Write(flag, 1)
        yield Fence()
    return prog()


def consumer(machine, data, flag, node):
    """Waits for the flag, then reads the whole batch."""
    def prog():
        yield SpinUntil(flag, lambda v: v == 1)
        total = 0
        for addr in data:
            v = yield Read(addr)
            total += v
        expected = sum(100 + i for i in range(len(data)))
        assert total == expected, f"consumer {node} saw {total}"
    return prog()


def main():
    print(f"{'protocol':>10} {'cycles':>8} {'misses':>7} "
          f"{'useful':>7} {'updates':>8} {'useful':>7} {'msgs':>6}")
    for protocol in ALL_PROTOCOLS:
        cfg = MachineConfig(num_procs=8, protocol=protocol)
        machine = Machine(cfg)

        # shared data: one block's worth of items homed at the producer,
        # one flag
        data = [machine.memmap.alloc_word(0, pack=True, label=f"item{i}")
                for i in range(8)]
        flag = machine.memmap.alloc_word(0, label="flag")

        machine.spawn(0, producer(machine, data, flag, 8))
        for node in range(1, 8):
            machine.spawn(node, consumer(machine, data, flag, node))

        result = machine.run()
        machine.check_coherence_invariants()

        m = result.misses
        u = result.updates
        miss_useful = m["cold"] + m["true"]
        print(f"{protocol.value:>10} {result.total_cycles:>8} "
              f"{m['total']:>7} {miss_useful:>7} "
              f"{u['total']:>8} {u['useful']:>7} "
              f"{result.network.messages:>6}")

    print()
    print("Things to notice:")
    print(" * WI has no update messages; all its traffic is misses.")
    print(" * PU/CU consumers hit in their caches once the flag flips --")
    print("   the producer's writes arrived as updates.")
    print(" * the packed data block makes WI consumers fetch one block")
    print("   (spatial locality), while update protocols pushed each")
    print("   word as it was written.")


if __name__ == "__main__":
    main()
