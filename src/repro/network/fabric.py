"""The network fabric: wormhole latency model with endpoint contention.

Latency model (paper section 3.1):

* the network clock equals the processor clock;
* each switch on the route adds a 2-cycle delay to the message header;
* the datapath is 16 bits wide, so a message of ``size`` bytes serializes
  in ``ceil(size / 2)`` cycles;
* contention is modeled only at the source and destination of messages,
  as FIFO occupancy of the sending and receiving network interfaces.

A message therefore departs when the source NIC is free, occupies it for
its serialization time, propagates for ``2 * hops`` cycles, and is
delivered once the destination NIC has streamed it in (again its
serialization time, starting no earlier than both the head's arrival and
the NIC becoming free).

Node-local transactions (a processor talking to its own home memory) do
not traverse the network; they are delivered after a small fixed
``local_hop_cycles`` delay.

Performance notes: :meth:`Network.post` runs once per message and the
simulator creates millions of them, so the steady-state path is
allocation-free and flat:

* messages come from a per-:class:`~repro.network.messages.MsgType`
  free list (:class:`~repro.network.messages.MessagePool`) and are
  recycled after their handler returns (see
  :class:`~repro.protocols.base.NodeCtrl`);
* everything derivable from the config alone -- per-type sizes and flit
  counts, the all-pairs hop table -- is precomputed at construction;
* only three traffic counters are touched per message
  (``_type_counts``, ``_pair_counts``, ``_n_contention``); totals,
  byte counts and per-node send/receive counts are *derived* from them
  by the ``stats`` property (sizes are a pure function of the type, and
  the pair matrix's row/column/diagonal sums are the per-node and local
  counts);
* under a plain :class:`~repro.engine.Simulator` the delivery event is
  appended straight into the simulator's calendar bucket, skipping the
  ``sim.at`` call (the model checker's :class:`ControlledSimulator`
  keeps the public path -- and disables pooling, since its snapshots
  share message objects across branches).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.config import MachineConfig
from repro.engine import Simulator
from repro.engine.simulator import _BIT, _MASK
from repro.network.messages import (
    MSG_TYPES, Message, MessagePool, MsgType,
)
from repro.network.topology import MeshTopology


@dataclass
class NetworkStats:
    """Aggregate traffic statistics (an end-of-run / on-demand snapshot;
    the live accumulation lives on :class:`Network` as flat counters)."""

    messages: int = 0
    bytes: int = 0
    local_messages: int = 0
    by_type: Dict[MsgType, int] = field(default_factory=dict)
    bytes_by_type: Dict[MsgType, int] = field(default_factory=dict)
    #: (src, dst) -> message count (the traffic matrix)
    by_pair: Dict[tuple, int] = field(default_factory=dict)
    #: per-node sent / received message counts
    sent_by_node: Dict[int, int] = field(default_factory=dict)
    recv_by_node: Dict[int, int] = field(default_factory=dict)
    #: total cycles messages spent queued behind busy endpoint NICs
    contention_cycles: int = 0

    def count(self, msg: Message, queued: int, local: bool) -> None:
        self.messages += 1
        self.bytes += msg.size
        if local:
            self.local_messages += 1
        self.by_type[msg.mtype] = self.by_type.get(msg.mtype, 0) + 1
        self.bytes_by_type[msg.mtype] = (
            self.bytes_by_type.get(msg.mtype, 0) + msg.size)
        pair = (msg.src, msg.dst)
        self.by_pair[pair] = self.by_pair.get(pair, 0) + 1
        self.sent_by_node[msg.src] = self.sent_by_node.get(msg.src, 0) + 1
        self.recv_by_node[msg.dst] = self.recv_by_node.get(msg.dst, 0) + 1
        self.contention_cycles += queued


class Network:
    """Delivers messages between node controllers.

    Each node registers a single handler; protocol controllers multiplex
    on :class:`~repro.network.messages.MsgType`.
    """

    def __init__(self, sim: Simulator, config: MachineConfig) -> None:
        self.sim = sim
        self.config = config
        self.topology = MeshTopology(config.num_procs)
        P = config.num_procs
        self._handlers: List[Optional[Callable[[Message], None]]] = (
            [None] * P)
        # optional per-node dispatch tables (MsgType.index -> bound
        # handler); when present, send() schedules the delivery straight
        # into the protocol handler instead of routing through _deliver
        self._dispatch: List[Optional[List[
            Optional[Callable[[Message], None]]]]] = [None] * P
        # busy-until times of each node's egress / ingress NIC
        self._src_free = [0] * P
        self._dst_free = [0] * P
        self._jitter_rng = (random.Random(config.network_jitter_seed)
                            if config.network_jitter_cycles else None)
        # --- precomputed per-message-send tables -----------------------
        #: all-pairs hop counts, indexed [src][dst] (the topology owns
        #: the table; bound here to skip a method call per message)
        self._hops = self.topology._hops
        #: bytes / flits on the wire, indexed by ``MsgType.index``
        self._size_table = [self.size_of_type(mt) for mt in MSG_TYPES]
        self._flits_table = [self.flits_of(sz) for sz in self._size_table]
        #: config scalars hoisted out of the per-message path
        self._num_nodes = P
        self._local_hop = config.local_hop_cycles
        self._switch_delay = config.switch_delay_cycles
        self._jitter_cycles = config.network_jitter_cycles
        # --- traffic accumulators (three live counters; everything
        # --- else is derived by the ``stats`` property) ----------------
        self._type_counts = [0] * len(MSG_TYPES)
        self._pair_counts = [0] * (P * P)
        self._n_contention = 0
        # --- message pool / fast scheduling ----------------------------
        #: pooled + calendar-inlined only under a plain Simulator: the
        #: model checker snapshots share event tuples and message
        #: objects between branches, so its messages must stay immutable
        #: and its queue is the explicit heap behind the public API
        self._plain_sim = type(sim) is Simulator
        self.pool = MessagePool(debug=getattr(config, "pool_debug", False))
        self._pool_free = self.pool.free
        #: post()'s one-test pooling gate; cleared by freeze_pool()
        self._pool_on = self._plain_sim

    def register(self, node: int, handler: Callable[[Message], None],
                 dispatch: Optional[List[
                     Optional[Callable[[Message], None]]]] = None) -> None:
        """Register ``handler`` as node ``node``'s receive entry point.

        ``dispatch``, when given, is a live ``MsgType.index``-indexed
        list of bound handlers: deliveries of listed types bypass
        ``handler`` entirely (one scheduled callback, zero dispatch
        work at delivery time).  Types with a ``None`` slot still fall
        back to ``handler``, which owns the unhandled-message error
        path.  Callers that need to observe every delivery (tracing,
        model checking) simply register without a table.
        """
        if self._handlers[node] is not None:
            raise ValueError(f"node {node} already has a handler")
        self._handlers[node] = handler
        self._dispatch[node] = dispatch

    # ------------------------------------------------------------------

    @property
    def pooling_active(self) -> bool:
        """True when messages posted by this fabric are recycled."""
        return self._pool_on and not self.pool.frozen

    def freeze_pool(self) -> None:
        """Permanently stop message recycling (machine snapshot taken:
        snapshots share message objects by reference)."""
        self.pool.freeze()
        self._pool_on = False

    def size_of_type(self, mtype: MsgType) -> int:
        cfg = self.config
        if mtype.is_data:
            return cfg.data_msg_bytes
        if mtype.is_word:
            return cfg.word_msg_bytes
        return cfg.ctrl_msg_bytes

    def size_of(self, msg: Message) -> int:
        return self._size_table[msg.mtype.index]

    def flits_of(self, size_bytes: int) -> int:
        fb = self.config.flit_bytes
        return (size_bytes + fb - 1) // fb

    def latency(self, src: int, dst: int, size_bytes: int) -> int:
        """Contention-free latency of a message (for analysis/tests)."""
        if src == dst:
            return self.config.local_hop_cycles
        hops = self.topology.hops(src, dst)
        return (self.config.switch_delay_cycles * hops
                + 2 * self.flits_of(size_bytes))

    # ------------------------------------------------------------------

    @property
    def stats(self) -> NetworkStats:
        """The traffic statistics, materialized as a snapshot.

        Totals, byte counts and per-node counts are derived from the
        per-type and per-pair counters: a message's size is a pure
        function of its type, and the pair matrix's row sums / column
        sums / diagonal are exactly the sent / received / local counts.
        Dict shapes match the historical accumulation: only observed
        types / pairs / nodes appear as keys.
        """
        P = self._num_nodes
        pair_counts = self._pair_counts
        type_counts = self._type_counts
        sizes = self._size_table
        sent = [0] * P
        recv = [0] * P
        local = 0
        for i, n in enumerate(pair_counts):
            if n:
                src, dst = divmod(i, P)
                sent[src] += n
                recv[dst] += n
                if src == dst:
                    local += n
        return NetworkStats(
            messages=sum(type_counts),
            bytes=sum(n * sz for n, sz in zip(type_counts, sizes)),
            local_messages=local,
            by_type={mt: n for mt, n in zip(MSG_TYPES, type_counts)
                     if n},
            bytes_by_type={mt: n * sz for mt, n, sz
                           in zip(MSG_TYPES, type_counts, sizes) if n},
            by_pair={divmod(i, P): n
                     for i, n in enumerate(pair_counts) if n},
            sent_by_node={node: n for node, n in enumerate(sent) if n},
            recv_by_node={node: n for node, n in enumerate(recv) if n},
            contention_cycles=self._n_contention,
        )

    # ------------------------------------------------------------------

    def post(self, mtype: MsgType, src: int, dst: int, block: int,
             requester: int = -1, word: Optional[int] = None,
             value=None, data: Optional[dict] = None, nacks: int = 0,
             seq: int = -1, op: Optional[str] = None, operand=None,
             result=None, retain: bool = False,
             write_id: Optional[int] = None,
             mask: Optional[int] = None) -> None:
        """Build (or recycle) a message and inject it.

        The production send path: protocol controllers route every
        message through here.  Mirrors :meth:`send`'s latency model
        exactly; the difference is the pooled acquire and the inlined
        delivery scheduling.
        """
        ti = mtype.index
        free = self._pool_free[ti]
        if free and self._pool_on:
            msg = free.pop()
            msg.in_pool = False
            msg.keep = False
            msg.mtype = mtype       # identity under non-debug (per-type
            msg.src = src           # lists); un-poisons under debug
            msg.dst = dst
            msg.block = block
            msg.requester = requester
            msg.word = word
            msg.value = value
            msg.data = data
            msg.nacks = nacks
            msg.seq = seq
            msg.op = op
            msg.operand = operand
            msg.result = result
            msg.retain = retain
            msg.write_id = write_id
            msg.mask = mask
            self.pool.reused += 1
        else:
            msg = Message(mtype, src, dst, block, requester=requester,
                          word=word, value=value, data=data, nacks=nacks,
                          seq=seq, op=op, operand=operand, result=result,
                          retain=retain, write_id=write_id, mask=mask)
            msg.size = self._size_table[ti]

        sim = self.sim
        now = sim.now
        flits = self._flits_table[ti]

        depart = self._src_free[src]
        if depart < now:
            depart = now
        self._src_free[src] = depart + flits

        if src == dst:
            # node-local transaction: no mesh traversal, but the message
            # still serializes through the node's NIC/bus, so a burst of
            # outgoing messages (e.g. an update fan-out) delays it
            deliver = depart + flits + self._local_hop
            queued = depart - now
        else:
            head_arrival = (depart + flits
                            + self._switch_delay * self._hops[src][dst])
            if self._jitter_rng is not None:
                head_arrival += self._jitter_rng.randint(
                    0, self._jitter_cycles)
            # dst-side queuing is computed against the NIC's busy-until
            # time *before* this message occupies it
            dst_free = self._dst_free[dst]
            deliver = (dst_free if dst_free > head_arrival
                       else head_arrival) + flits
            self._dst_free[dst] = deliver
            queued = depart - now + (dst_free - head_arrival
                                     if head_arrival < dst_free else 0)

        self._type_counts[ti] += 1
        self._pair_counts[src * self._num_nodes + dst] += 1
        self._n_contention += queued

        target = None
        dtable = self._dispatch[dst]
        if dtable is not None:
            target = dtable[ti]
        if target is None:
            target = self._deliver
        if self._plain_sim and deliver < sim._horizon:
            # inline Simulator.at: append into the calendar bucket
            i = deliver & _MASK
            b = sim._ring[i]
            if not b:
                sim._occ |= _BIT[i]
            b.append(target)
            b.append((msg,))
        else:
            sim.at(deliver, target, msg)

    def send(self, msg: Message) -> None:
        """Inject a caller-built ``msg`` (tests / ad-hoc traffic); it is
        handed to the destination handler when fully delivered.  Same
        latency model as :meth:`post`, without pooling."""
        sim = self.sim
        now = sim.now
        src = msg.src
        dst = msg.dst
        ti = msg.mtype.index
        size = self._size_table[ti]
        flits = self._flits_table[ti]
        msg.size = size
        msg.send_time = now

        depart = self._src_free[src]
        if depart < now:
            depart = now
        self._src_free[src] = depart + flits

        if src == dst:
            deliver = depart + flits + self._local_hop
            queued = depart - now
        else:
            head_arrival = (depart + flits
                            + self._switch_delay * self._hops[src][dst])
            if self._jitter_rng is not None:
                head_arrival += self._jitter_rng.randint(
                    0, self._jitter_cycles)
            dst_free = self._dst_free[dst]
            deliver = (dst_free if dst_free > head_arrival
                       else head_arrival) + flits
            self._dst_free[dst] = deliver
            queued = depart - now + (dst_free - head_arrival
                                     if head_arrival < dst_free else 0)

        self._type_counts[ti] += 1
        self._pair_counts[src * self._num_nodes + dst] += 1
        self._n_contention += queued
        dtable = self._dispatch[dst]
        if dtable is not None:
            target = dtable[ti]
            if target is not None:
                sim.at(deliver, target, msg)
                return
        sim.at(deliver, self._deliver, msg)

    def _deliver(self, msg: Message) -> None:
        handler = self._handlers[msg.dst]
        if handler is None:
            raise RuntimeError(f"no handler registered for node {msg.dst}")
        handler(msg)

    def release(self, msg: Message) -> None:
        """Recycle a message whose lifetime has ended (delivery wrapper
        / end of a pinned home transaction).  No-op when pooling is
        inactive (model checker, frozen pool)."""
        if self._plain_sim:
            self.pool.release(msg)

    # ------------------------------------------------------------------
    # snapshot / restore
    # ------------------------------------------------------------------

    def snapshot_state(self):
        return (
            self._src_free[:], self._dst_free[:],
            self._jitter_rng.getstate() if self._jitter_rng else None,
            self._type_counts[:], self._pair_counts[:],
            self._n_contention,
        )

    def restore_state(self, snap) -> None:
        (src_free, dst_free, rng_state, type_counts, pair_counts,
         n_contention) = snap
        self._src_free[:] = src_free
        self._dst_free[:] = dst_free
        if rng_state is not None:
            self._jitter_rng.setstate(rng_state)
        self._type_counts[:] = type_counts
        self._pair_counts[:] = pair_counts
        self._n_contention = n_contention
        # pooled free lists are not part of the snapshot: drop them so
        # a restored run can never hand out a message object that some
        # pre-snapshot event or transaction still references
        self.pool.drain()
