"""The network fabric: wormhole latency model with endpoint contention.

Latency model (paper section 3.1):

* the network clock equals the processor clock;
* each switch on the route adds a 2-cycle delay to the message header;
* the datapath is 16 bits wide, so a message of ``size`` bytes serializes
  in ``ceil(size / 2)`` cycles;
* contention is modeled only at the source and destination of messages,
  as FIFO occupancy of the sending and receiving network interfaces.

A message therefore departs when the source NIC is free, occupies it for
its serialization time, propagates for ``2 * hops`` cycles, and is
delivered once the destination NIC has streamed it in (again its
serialization time, starting no earlier than both the head's arrival and
the NIC becoming free).

Node-local transactions (a processor talking to its own home memory) do
not traverse the network; they are delivered after a small fixed
``local_hop_cycles`` delay.

Performance note: :meth:`Network.send` runs once per message and the
simulator creates millions of them, so everything derivable from the
config alone -- per-:class:`MsgType` sizes and flit counts, the
all-pairs hop table -- is precomputed at construction, and the traffic
statistics accumulate into plain ints / flat lists.  ``Network.stats``
materializes the familiar :class:`NetworkStats` snapshot (identical
shapes to the historical dict-based accumulation) on access.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.config import MachineConfig
from repro.engine import Simulator
from repro.network.messages import MSG_TYPES, Message, MsgType
from repro.network.topology import MeshTopology


@dataclass
class NetworkStats:
    """Aggregate traffic statistics (an end-of-run / on-demand snapshot;
    the live accumulation lives on :class:`Network` as flat counters)."""

    messages: int = 0
    bytes: int = 0
    local_messages: int = 0
    by_type: Dict[MsgType, int] = field(default_factory=dict)
    bytes_by_type: Dict[MsgType, int] = field(default_factory=dict)
    #: (src, dst) -> message count (the traffic matrix)
    by_pair: Dict[tuple, int] = field(default_factory=dict)
    #: per-node sent / received message counts
    sent_by_node: Dict[int, int] = field(default_factory=dict)
    recv_by_node: Dict[int, int] = field(default_factory=dict)
    #: total cycles messages spent queued behind busy endpoint NICs
    contention_cycles: int = 0

    def count(self, msg: Message, queued: int, local: bool) -> None:
        self.messages += 1
        self.bytes += msg.size
        if local:
            self.local_messages += 1
        self.by_type[msg.mtype] = self.by_type.get(msg.mtype, 0) + 1
        self.bytes_by_type[msg.mtype] = (
            self.bytes_by_type.get(msg.mtype, 0) + msg.size)
        pair = (msg.src, msg.dst)
        self.by_pair[pair] = self.by_pair.get(pair, 0) + 1
        self.sent_by_node[msg.src] = self.sent_by_node.get(msg.src, 0) + 1
        self.recv_by_node[msg.dst] = self.recv_by_node.get(msg.dst, 0) + 1
        self.contention_cycles += queued


class Network:
    """Delivers messages between node controllers.

    Each node registers a single handler; protocol controllers multiplex
    on :class:`~repro.network.messages.MsgType`.
    """

    def __init__(self, sim: Simulator, config: MachineConfig) -> None:
        self.sim = sim
        self.config = config
        self.topology = MeshTopology(config.num_procs)
        P = config.num_procs
        self._handlers: List[Optional[Callable[[Message], None]]] = (
            [None] * P)
        # optional per-node dispatch tables (MsgType.index -> bound
        # handler); when present, send() schedules the delivery straight
        # into the protocol handler instead of routing through _deliver
        self._dispatch: List[Optional[List[
            Optional[Callable[[Message], None]]]]] = [None] * P
        # busy-until times of each node's egress / ingress NIC
        self._src_free = [0] * P
        self._dst_free = [0] * P
        self._jitter_rng = (random.Random(config.network_jitter_seed)
                            if config.network_jitter_cycles else None)
        # --- precomputed per-message-send tables -----------------------
        #: all-pairs hop counts, indexed [src][dst] (the topology owns
        #: the table; bound here to skip a method call per message)
        self._hops = self.topology._hops
        #: bytes / flits on the wire, indexed by ``MsgType.index``
        self._size_table = [self.size_of_type(mt) for mt in MSG_TYPES]
        self._flits_table = [self.flits_of(sz) for sz in self._size_table]
        #: config scalars hoisted out of the per-message path
        self._num_nodes = P
        self._local_hop = config.local_hop_cycles
        self._switch_delay = config.switch_delay_cycles
        self._jitter_cycles = config.network_jitter_cycles
        # --- traffic accumulators (plain ints / flat lists; folded
        # --- into a NetworkStats snapshot by the ``stats`` property) ---
        self._n_messages = 0
        self._n_bytes = 0
        self._n_local = 0
        self._n_contention = 0
        self._type_counts = [0] * len(MSG_TYPES)
        self._type_bytes = [0] * len(MSG_TYPES)
        self._pair_counts = [0] * (P * P)
        self._sent_counts = [0] * P
        self._recv_counts = [0] * P

    def register(self, node: int, handler: Callable[[Message], None],
                 dispatch: Optional[List[
                     Optional[Callable[[Message], None]]]] = None) -> None:
        """Register ``handler`` as node ``node``'s receive entry point.

        ``dispatch``, when given, is a live ``MsgType.index``-indexed
        list of bound handlers: deliveries of listed types bypass
        ``handler`` entirely (one scheduled callback, zero dispatch
        work at delivery time).  Types with a ``None`` slot still fall
        back to ``handler``, which owns the unhandled-message error
        path.  Callers that need to observe every delivery (tracing,
        model checking) simply register without a table.
        """
        if self._handlers[node] is not None:
            raise ValueError(f"node {node} already has a handler")
        self._handlers[node] = handler
        self._dispatch[node] = dispatch

    # ------------------------------------------------------------------

    def size_of_type(self, mtype: MsgType) -> int:
        cfg = self.config
        if mtype.is_data:
            return cfg.data_msg_bytes
        if mtype.is_word:
            return cfg.word_msg_bytes
        return cfg.ctrl_msg_bytes

    def size_of(self, msg: Message) -> int:
        return self._size_table[msg.mtype.index]

    def flits_of(self, size_bytes: int) -> int:
        fb = self.config.flit_bytes
        return (size_bytes + fb - 1) // fb

    def latency(self, src: int, dst: int, size_bytes: int) -> int:
        """Contention-free latency of a message (for analysis/tests)."""
        if src == dst:
            return self.config.local_hop_cycles
        hops = self.topology.hops(src, dst)
        return (self.config.switch_delay_cycles * hops
                + 2 * self.flits_of(size_bytes))

    # ------------------------------------------------------------------

    @property
    def stats(self) -> NetworkStats:
        """The traffic statistics, materialized as a snapshot.

        Dict shapes match the historical accumulation: only observed
        types / pairs / nodes appear as keys.
        """
        return NetworkStats(
            messages=self._n_messages,
            bytes=self._n_bytes,
            local_messages=self._n_local,
            by_type={mt: n for mt, n in zip(MSG_TYPES, self._type_counts)
                     if n},
            bytes_by_type={mt: b for mt, b
                           in zip(MSG_TYPES, self._type_bytes) if b},
            by_pair={(i // self.config.num_procs,
                      i % self.config.num_procs): n
                     for i, n in enumerate(self._pair_counts) if n},
            sent_by_node={node: n for node, n
                          in enumerate(self._sent_counts) if n},
            recv_by_node={node: n for node, n
                          in enumerate(self._recv_counts) if n},
            contention_cycles=self._n_contention,
        )

    # ------------------------------------------------------------------

    def send(self, msg: Message) -> None:
        """Inject ``msg``; it is handed to the destination handler when
        fully delivered."""
        sim = self.sim
        now = sim.now
        src = msg.src
        dst = msg.dst
        ti = msg.mtype.index
        size = self._size_table[ti]
        flits = self._flits_table[ti]
        msg.size = size
        msg.send_time = now

        depart = self._src_free[src]
        if depart < now:
            depart = now
        self._src_free[src] = depart + flits

        if src == dst:
            # node-local transaction: no mesh traversal, but the message
            # still serializes through the node's NIC/bus, so a burst of
            # outgoing messages (e.g. an update fan-out) delays it
            deliver = depart + flits + self._local_hop
            self._n_local += 1
            queued = depart - now
        else:
            head_arrival = (depart + flits
                            + self._switch_delay * self._hops[src][dst])
            if self._jitter_rng is not None:
                head_arrival += self._jitter_rng.randint(
                    0, self._jitter_cycles)
            # dst-side queuing is computed against the NIC's busy-until
            # time *before* this message occupies it
            dst_free = self._dst_free[dst]
            deliver = (dst_free if dst_free > head_arrival
                       else head_arrival) + flits
            self._dst_free[dst] = deliver
            queued = depart - now + (dst_free - head_arrival
                                     if head_arrival < dst_free else 0)

        self._n_messages += 1
        self._n_bytes += size
        self._type_counts[ti] += 1
        self._type_bytes[ti] += size
        self._pair_counts[src * self._num_nodes + dst] += 1
        self._sent_counts[src] += 1
        self._recv_counts[dst] += 1
        self._n_contention += queued
        dtable = self._dispatch[dst]
        if dtable is not None:
            target = dtable[ti]
            if target is not None:
                sim.at(deliver, target, msg)
                return
        sim.at(deliver, self._deliver, msg)

    def _deliver(self, msg: Message) -> None:
        handler = self._handlers[msg.dst]
        if handler is None:
            raise RuntimeError(f"no handler registered for node {msg.dst}")
        handler(msg)

    # ------------------------------------------------------------------
    # snapshot / restore
    # ------------------------------------------------------------------

    def snapshot_state(self):
        return (
            self._src_free[:], self._dst_free[:],
            self._jitter_rng.getstate() if self._jitter_rng else None,
            self._n_messages, self._n_bytes, self._n_local,
            self._n_contention, self._type_counts[:],
            self._type_bytes[:], self._pair_counts[:],
            self._sent_counts[:], self._recv_counts[:],
        )

    def restore_state(self, snap) -> None:
        (src_free, dst_free, rng_state, n_messages, n_bytes, n_local,
         n_contention, type_counts, type_bytes, pair_counts,
         sent_counts, recv_counts) = snap
        self._src_free[:] = src_free
        self._dst_free[:] = dst_free
        if rng_state is not None:
            self._jitter_rng.setstate(rng_state)
        self._n_messages = n_messages
        self._n_bytes = n_bytes
        self._n_local = n_local
        self._n_contention = n_contention
        self._type_counts[:] = type_counts
        self._type_bytes[:] = type_bytes
        self._pair_counts[:] = pair_counts
        self._sent_counts[:] = sent_counts
        self._recv_counts[:] = recv_counts
