"""The network fabric: wormhole latency model with endpoint contention.

Latency model (paper section 3.1):

* the network clock equals the processor clock;
* each switch on the route adds a 2-cycle delay to the message header;
* the datapath is 16 bits wide, so a message of ``size`` bytes serializes
  in ``ceil(size / 2)`` cycles;
* contention is modeled only at the source and destination of messages,
  as FIFO occupancy of the sending and receiving network interfaces.

A message therefore departs when the source NIC is free, occupies it for
its serialization time, propagates for ``2 * hops`` cycles, and is
delivered once the destination NIC has streamed it in (again its
serialization time, starting no earlier than both the head's arrival and
the NIC becoming free).

Node-local transactions (a processor talking to its own home memory) do
not traverse the network; they are delivered after a small fixed
``local_hop_cycles`` delay.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.config import MachineConfig
from repro.engine import Simulator
from repro.network.messages import Message, MsgType
from repro.network.topology import MeshTopology


@dataclass
class NetworkStats:
    """Aggregate traffic statistics."""

    messages: int = 0
    bytes: int = 0
    local_messages: int = 0
    by_type: Dict[MsgType, int] = field(default_factory=dict)
    bytes_by_type: Dict[MsgType, int] = field(default_factory=dict)
    #: (src, dst) -> message count (the traffic matrix)
    by_pair: Dict[tuple, int] = field(default_factory=dict)
    #: per-node sent / received message counts
    sent_by_node: Dict[int, int] = field(default_factory=dict)
    recv_by_node: Dict[int, int] = field(default_factory=dict)
    #: total cycles messages spent queued behind busy endpoint NICs
    contention_cycles: int = 0

    def count(self, msg: Message, queued: int, local: bool) -> None:
        self.messages += 1
        self.bytes += msg.size
        if local:
            self.local_messages += 1
        self.by_type[msg.mtype] = self.by_type.get(msg.mtype, 0) + 1
        self.bytes_by_type[msg.mtype] = (
            self.bytes_by_type.get(msg.mtype, 0) + msg.size)
        pair = (msg.src, msg.dst)
        self.by_pair[pair] = self.by_pair.get(pair, 0) + 1
        self.sent_by_node[msg.src] = self.sent_by_node.get(msg.src, 0) + 1
        self.recv_by_node[msg.dst] = self.recv_by_node.get(msg.dst, 0) + 1
        self.contention_cycles += queued


class Network:
    """Delivers messages between node controllers.

    Each node registers a single handler; protocol controllers multiplex
    on :class:`~repro.network.messages.MsgType`.
    """

    def __init__(self, sim: Simulator, config: MachineConfig) -> None:
        self.sim = sim
        self.config = config
        self.topology = MeshTopology(config.num_procs)
        self.stats = NetworkStats()
        self._handlers: List[Optional[Callable[[Message], None]]] = (
            [None] * config.num_procs)
        # busy-until times of each node's egress / ingress NIC
        self._src_free = [0] * config.num_procs
        self._dst_free = [0] * config.num_procs
        self._jitter_rng = (random.Random(config.network_jitter_seed)
                            if config.network_jitter_cycles else None)

    def register(self, node: int, handler: Callable[[Message], None]) -> None:
        if self._handlers[node] is not None:
            raise ValueError(f"node {node} already has a handler")
        self._handlers[node] = handler

    # ------------------------------------------------------------------

    def size_of(self, msg: Message) -> int:
        cfg = self.config
        if msg.mtype.is_data:
            return cfg.data_msg_bytes
        if msg.mtype.is_word:
            return cfg.word_msg_bytes
        return cfg.ctrl_msg_bytes

    def flits_of(self, size_bytes: int) -> int:
        fb = self.config.flit_bytes
        return (size_bytes + fb - 1) // fb

    def latency(self, src: int, dst: int, size_bytes: int) -> int:
        """Contention-free latency of a message (for analysis/tests)."""
        if src == dst:
            return self.config.local_hop_cycles
        hops = self.topology.hops(src, dst)
        return (self.config.switch_delay_cycles * hops
                + 2 * self.flits_of(size_bytes))

    # ------------------------------------------------------------------

    def send(self, msg: Message) -> None:
        """Inject ``msg``; it is handed to the destination handler when
        fully delivered."""
        cfg = self.config
        sim = self.sim
        now = sim.now
        msg.size = self.size_of(msg)
        msg.send_time = now

        if msg.src == msg.dst:
            # node-local transaction: no mesh traversal, but the message
            # still serializes through the node's NIC/bus, so a burst of
            # outgoing messages (e.g. an update fan-out) delays it
            flits = self.flits_of(msg.size)
            depart = max(now, self._src_free[msg.src])
            self._src_free[msg.src] = depart + flits
            deliver = depart + flits + cfg.local_hop_cycles
            self.stats.count(msg, depart - now, local=True)
            sim.at(deliver, self._deliver, msg)
            return

        flits = self.flits_of(msg.size)
        depart = max(now, self._src_free[msg.src])
        self._src_free[msg.src] = depart + flits
        head_arrival = (depart + flits
                        + cfg.switch_delay_cycles
                        * self.topology.hops(msg.src, msg.dst))
        if self._jitter_rng is not None:
            head_arrival += self._jitter_rng.randint(
                0, cfg.network_jitter_cycles)
        deliver = max(head_arrival, self._dst_free[msg.dst]) + flits
        self._dst_free[msg.dst] = deliver

        queued = (depart - now) + (deliver - flits - head_arrival
                                   if head_arrival < self._dst_free[msg.dst]
                                   else 0)
        self.stats.count(msg, max(0, queued), local=False)
        sim.at(deliver, self._deliver, msg)

    def _deliver(self, msg: Message) -> None:
        handler = self._handlers[msg.dst]
        if handler is None:
            raise RuntimeError(f"no handler registered for node {msg.dst}")
        handler(msg)
