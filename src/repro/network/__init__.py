"""Interconnection network (subsystem S6).

A bi-directional wormhole-routed 2-D mesh with dimension-ordered routing,
a 16-bit datapath, 2-cycle per-switch header delay, and contention
modeled at the source and destination of messages (as in the paper).
"""

from repro.network.messages import Message, MsgType
from repro.network.topology import MeshTopology
from repro.network.fabric import Network, NetworkStats

__all__ = ["Message", "MsgType", "MeshTopology", "Network", "NetworkStats"]
