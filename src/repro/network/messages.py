"""Coherence message vocabulary.

One message class is shared by all protocols; the :class:`MsgType`
enumeration spans the union of WI / PU / CU transactions.  Messages are
deliberately lightweight (``__slots__``; explicit optional fields rather
than a payload dict) because the simulator creates millions of them.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Optional


class MsgType(enum.Enum):
    # --- shared -------------------------------------------------------
    READ_REQ = "read_req"            # proc  -> home   (ctrl)
    READ_REPLY = "read_reply"        # home  -> proc   (data)

    # --- write invalidate ----------------------------------------------
    FETCH_FWD = "fetch_fwd"          # home  -> owner  (ctrl): fwd read
    OWNER_DATA = "owner_data"        # owner -> proc   (data): fwd'd read
    SHARING_WB = "sharing_wb"        # owner -> home   (data): demote M->S
    RDEX_REQ = "rdex_req"            # proc  -> home   (ctrl): read excl.
    RDEX_REPLY = "rdex_reply"        # home  -> proc   (data + ack count)
    UPGRADE_REQ = "upgrade_req"      # proc  -> home   (ctrl)
    UPGRADE_REPLY = "upgrade_reply"  # home  -> proc   (ctrl + ack count)
    INV = "inv"                      # home  -> sharer (ctrl)
    INV_ACK = "inv_ack"              # sharer-> requester (ctrl)
    FETCH_INV_FWD = "fetch_inv_fwd"  # home  -> owner  (ctrl): fwd rdex
    OWNER_DATA_EX = "owner_data_ex"  # owner -> proc   (data): ownership
    DIRTY_TRANSFER = "dirty_transfer"  # owner -> home (ctrl): completes fwd
    WRITEBACK = "writeback"          # proc  -> home   (data): evict dirty
    REPL_HINT = "repl_hint"          # proc  -> home   (ctrl): evict shared

    # --- update-based ---------------------------------------------------
    UPDATE = "update"                # writer -> home  (word data)
    UPD_PROP = "upd_prop"            # home   -> sharer (word data)
    UPD_ACK = "upd_ack"              # sharer -> writer (ctrl)
    WRITER_ACK = "writer_ack"        # home   -> writer (ctrl + ack count)
    RECALL = "recall"                # home   -> retainer (ctrl)
    RECALL_REPLY = "recall_reply"    # retainer -> home (data)
    ATOMIC_REQ = "atomic_req"        # proc   -> home  (word data)
    ATOMIC_REPLY = "atomic_reply"    # home   -> proc  (word data)
    DROP_NOTICE = "drop_notice"      # sharer -> home  (ctrl)
    FWD_NACK = "fwd_nack"            # ex-owner -> home (ctrl): fwd raced
                                     # with an in-flight writeback

    # --- MESI (synthesized; repro/protospec/mesi.py) --------------------
    EXCL_REPLY = "excl_reply"        # home  -> proc   (data): clean-
                                     # exclusive grant for a read miss on
                                     # an unowned block

    @property
    def is_data(self) -> bool:
        """True if the message carries a whole cache block."""
        return self in _BLOCK_DATA

    @property
    def is_word(self) -> bool:
        """True if the message carries a single word."""
        return self in _WORD_DATA


_BLOCK_DATA = {
    MsgType.READ_REPLY, MsgType.OWNER_DATA, MsgType.SHARING_WB,
    MsgType.RDEX_REPLY, MsgType.OWNER_DATA_EX, MsgType.WRITEBACK,
    MsgType.RECALL_REPLY, MsgType.EXCL_REPLY,
}
_WORD_DATA = {
    MsgType.UPDATE, MsgType.UPD_PROP, MsgType.ATOMIC_REQ,
    MsgType.ATOMIC_REPLY,
}

#: MsgType members in definition order; ``mt.index`` is the position,
#: so per-type tables can be plain lists (enum hashing is measurably
#: expensive on the fabric's per-message path)
MSG_TYPES = tuple(MsgType)
for _i, _mt in enumerate(MSG_TYPES):
    _mt.index = _i
del _i, _mt

_msg_ids = itertools.count()


class Message:
    """A single network message.

    Attributes
    ----------
    mtype : MsgType
    src, dst : int            node ids
    block : int               block number the transaction concerns
    size : int                bytes on the wire (set by the fabric caller)
    requester : int           original requesting node (for forwards)
    word : Optional[int]      word-aligned address for word-grain messages
    value : Any               data value carried (word messages)
    data : Optional[dict]     word -> value map (block messages)
    nacks : int               number of acks the receiver should expect
    seq : int                 home-issued transaction sequence number
    op : Optional[str]        atomic opcode
    operand : Any             atomic operand(s)
    result : Any              atomic result
    retain : bool             PU retain-private hint on WRITER_ACK
    write_id : Optional[int]  id of the originating write (ack matching)
    """

    __slots__ = ("mid", "mtype", "ti", "src", "dst", "block", "size",
                 "requester", "word", "value", "data", "nacks", "seq",
                 "op", "operand", "result", "retain", "write_id", "mask",
                 "send_time", "keep", "in_pool")

    def __init__(self, mtype: MsgType, src: int, dst: int, block: int,
                 size: int = 0, requester: int = -1,
                 word: Optional[int] = None, value: Any = None,
                 data: Optional[dict] = None, nacks: int = 0, seq: int = -1,
                 op: Optional[str] = None, operand: Any = None,
                 result: Any = None, retain: bool = False,
                 write_id: Optional[int] = None,
                 mask: Optional[int] = None) -> None:
        self.mid = next(_msg_ids)
        self.mtype = mtype
        #: ``mtype.index`` cached flat (pool free lists and the fabric's
        #: per-type tables index by it without the enum attribute chase)
        self.ti = mtype.index
        self.src = src
        self.dst = dst
        self.block = block
        self.size = size
        self.requester = requester
        self.word = word
        self.value = value
        self.data = data
        self.nacks = nacks
        self.seq = seq
        self.op = op
        self.operand = operand
        self.result = result
        self.retain = retain
        self.write_id = write_id
        self.mask = mask
        self.send_time = -1
        #: pin: the receiver keeps a reference past its handler (home
        #: transactions); the delivery path must not recycle the message
        self.keep = False
        #: True while the message sits on a :class:`MessagePool` free list
        self.in_pool = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = []
        if self.word is not None:
            extra.append(f"w={self.word:#x}")
        if self.nacks:
            extra.append(f"nacks={self.nacks}")
        if self.op:
            extra.append(f"op={self.op}")
        return (f"<{self.mtype.name} {self.src}->{self.dst} "
                f"blk={self.block} {' '.join(extra)}>")


class PoisonedField:
    """Placeholder stored into every payload slot of a released message
    when the pool runs in debug mode.  Any arithmetic, comparison,
    indexing or truth-test on it raises immediately, turning a silent
    use-after-release into a loud failure at the first touch."""

    __slots__ = ("mid",)

    def __init__(self, mid: int) -> None:
        self.mid = mid

    def _boom(self, *_a: Any, **_k: Any):
        raise RuntimeError(
            f"use-after-release: message mid={self.mid} was returned to "
            f"the pool; this field is poisoned (pool debug mode)")

    __bool__ = __int__ = __index__ = _boom
    __eq__ = __ne__ = __lt__ = __le__ = __gt__ = __ge__ = _boom
    __add__ = __radd__ = __sub__ = __rsub__ = _boom
    __and__ = __rand__ = __or__ = __ror__ = _boom
    __lshift__ = __rshift__ = __rlshift__ = __rrshift__ = _boom
    __getitem__ = __contains__ = __iter__ = __hash__ = _boom

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<poisoned field of released mid={self.mid}>"

    def __getattr__(self, name: str):
        self._boom()


#: fields a released message must drop (payload references) or that a
#: reused message must re-arm (lifecycle flags)
_RESET_FIELDS = ("requester", "word", "value", "data", "nacks", "seq",
                 "op", "operand", "result", "retain", "write_id", "mask")


class MessagePool:
    """Free-list recycler for :class:`Message` objects.

    One free list per :class:`MsgType` (indexed by ``MsgType.index``),
    so an acquired message already carries the right ``mtype`` and the
    fabric's per-type size/flit tables keep working unchanged.  The
    steady-state message cycle -- acquire in
    :meth:`~repro.network.fabric.Network.post`, deliver, release after
    the handler returns -- then allocates nothing.

    Lifecycle rules (enforced by :mod:`repro.network.fabric` and
    :class:`~repro.protocols.base.NodeCtrl`):

    * a handler that retains the message past its own return (home
      transactions parked in ``_txn``) sets ``msg.keep``; the delivery
      wrapper skips it and ``_end_txn`` releases it when the
      transaction completes;
    * :meth:`freeze` (called when a machine snapshot is taken) stops
      recycling permanently: snapshots share message objects by
      reference, so a message released after the snapshot must keep its
      contents for a later restore;
    * ``debug=True`` poisons every payload field of a released message
      (see :class:`PoisonedField`) and checks double releases, at the
      cost of the recycling win.
    """

    __slots__ = ("free", "debug", "frozen", "reused", "released",
                 "dropped")

    def __init__(self, debug: bool = False) -> None:
        #: per-``MsgType.index`` free lists
        self.free = [[] for _ in MSG_TYPES]
        self.debug = debug
        self.frozen = False
        #: messages handed out from a free list (vs freshly built)
        self.reused = 0
        #: messages returned to a free list
        self.released = 0
        #: releases discarded because the pool was frozen
        self.dropped = 0

    # -- hot path ------------------------------------------------------

    def acquire(self, mtype: MsgType) -> Optional[Message]:
        """Pop a recycled message of ``mtype``, or None when the free
        list is empty (the caller builds a fresh one).  The caller must
        overwrite every routing/payload field; ``mtype`` itself is
        already correct (per-type lists)."""
        free = self.free[mtype.index]
        if not free:
            return None
        msg = free.pop()
        msg.in_pool = False
        msg.keep = False
        self.reused += 1
        if self.debug:
            msg.mtype = mtype        # un-poison
        return msg

    def release(self, msg: Message) -> None:
        """Return ``msg`` to its free list (no-op once frozen)."""
        if self.frozen:
            self.dropped += 1
            return
        if msg.in_pool:
            raise RuntimeError(f"double release of pooled message "
                               f"mid={msg.mid}")
        msg.in_pool = True
        self.released += 1
        if self.debug:
            ti = msg.ti
            poison = PoisonedField(msg.mid)
            msg.mtype = poison
            for f in _RESET_FIELDS:
                setattr(msg, f, poison)
            self.free[ti].append(msg)
            return
        # reset-on-release: drop the reference-holding payload fields so
        # the free list never keeps data dicts (or closures hiding in
        # operands) alive between uses.  Scalar fields keep their stale
        # values -- acquire's contract is that the caller overwrites
        # every routing/payload field.
        msg.value = None
        msg.data = None
        msg.operand = None
        msg.result = None
        self.free[msg.ti].append(msg)

    # -- lifecycle -----------------------------------------------------

    def freeze(self) -> None:
        """Permanently stop recycling (machine snapshot taken): further
        releases are dropped and the free lists are cleared."""
        self.frozen = True
        for lst in self.free:
            lst.clear()

    def drain(self) -> None:
        """Empty every free list (machine restore: the pool is rebuilt
        from scratch by subsequent traffic)."""
        for lst in self.free:
            lst.clear()

    def stats(self) -> dict:
        """Counters + current free-list occupancy (``--profile``)."""
        return {
            "reused": self.reused,
            "released": self.released,
            "dropped_frozen": self.dropped,
            "free": sum(len(lst) for lst in self.free),
            "frozen": self.frozen,
            "debug": self.debug,
        }


#: process-wide pool accounting, fed by ``Machine.finish`` after each
#: simulation; surfaced by the experiments CLI under ``--profile``
#: (like cProfile it only sees this process, not ``--jobs`` workers)
POOL_TOTALS = {"machines": 0, "reused": 0, "released": 0,
               "dropped_frozen": 0}


def account_pool(stats: dict) -> None:
    """Fold one :meth:`MessagePool.stats` snapshot into the
    process-wide :data:`POOL_TOTALS`."""
    POOL_TOTALS["machines"] += 1
    POOL_TOTALS["reused"] += stats["reused"]
    POOL_TOTALS["released"] += stats["released"]
    POOL_TOTALS["dropped_frozen"] += stats["dropped_frozen"]
