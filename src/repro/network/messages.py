"""Coherence message vocabulary.

One message class is shared by all protocols; the :class:`MsgType`
enumeration spans the union of WI / PU / CU transactions.  Messages are
deliberately lightweight (``__slots__``; explicit optional fields rather
than a payload dict) because the simulator creates millions of them.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Optional


class MsgType(enum.Enum):
    # --- shared -------------------------------------------------------
    READ_REQ = "read_req"            # proc  -> home   (ctrl)
    READ_REPLY = "read_reply"        # home  -> proc   (data)

    # --- write invalidate ----------------------------------------------
    FETCH_FWD = "fetch_fwd"          # home  -> owner  (ctrl): fwd read
    OWNER_DATA = "owner_data"        # owner -> proc   (data): fwd'd read
    SHARING_WB = "sharing_wb"        # owner -> home   (data): demote M->S
    RDEX_REQ = "rdex_req"            # proc  -> home   (ctrl): read excl.
    RDEX_REPLY = "rdex_reply"        # home  -> proc   (data + ack count)
    UPGRADE_REQ = "upgrade_req"      # proc  -> home   (ctrl)
    UPGRADE_REPLY = "upgrade_reply"  # home  -> proc   (ctrl + ack count)
    INV = "inv"                      # home  -> sharer (ctrl)
    INV_ACK = "inv_ack"              # sharer-> requester (ctrl)
    FETCH_INV_FWD = "fetch_inv_fwd"  # home  -> owner  (ctrl): fwd rdex
    OWNER_DATA_EX = "owner_data_ex"  # owner -> proc   (data): ownership
    DIRTY_TRANSFER = "dirty_transfer"  # owner -> home (ctrl): completes fwd
    WRITEBACK = "writeback"          # proc  -> home   (data): evict dirty
    REPL_HINT = "repl_hint"          # proc  -> home   (ctrl): evict shared

    # --- update-based ---------------------------------------------------
    UPDATE = "update"                # writer -> home  (word data)
    UPD_PROP = "upd_prop"            # home   -> sharer (word data)
    UPD_ACK = "upd_ack"              # sharer -> writer (ctrl)
    WRITER_ACK = "writer_ack"        # home   -> writer (ctrl + ack count)
    RECALL = "recall"                # home   -> retainer (ctrl)
    RECALL_REPLY = "recall_reply"    # retainer -> home (data)
    ATOMIC_REQ = "atomic_req"        # proc   -> home  (word data)
    ATOMIC_REPLY = "atomic_reply"    # home   -> proc  (word data)
    DROP_NOTICE = "drop_notice"      # sharer -> home  (ctrl)
    FWD_NACK = "fwd_nack"            # ex-owner -> home (ctrl): fwd raced
                                     # with an in-flight writeback

    @property
    def is_data(self) -> bool:
        """True if the message carries a whole cache block."""
        return self in _BLOCK_DATA

    @property
    def is_word(self) -> bool:
        """True if the message carries a single word."""
        return self in _WORD_DATA


_BLOCK_DATA = {
    MsgType.READ_REPLY, MsgType.OWNER_DATA, MsgType.SHARING_WB,
    MsgType.RDEX_REPLY, MsgType.OWNER_DATA_EX, MsgType.WRITEBACK,
    MsgType.RECALL_REPLY,
}
_WORD_DATA = {
    MsgType.UPDATE, MsgType.UPD_PROP, MsgType.ATOMIC_REQ,
    MsgType.ATOMIC_REPLY,
}

#: MsgType members in definition order; ``mt.index`` is the position,
#: so per-type tables can be plain lists (enum hashing is measurably
#: expensive on the fabric's per-message path)
MSG_TYPES = tuple(MsgType)
for _i, _mt in enumerate(MSG_TYPES):
    _mt.index = _i
del _i, _mt

_msg_ids = itertools.count()


class Message:
    """A single network message.

    Attributes
    ----------
    mtype : MsgType
    src, dst : int            node ids
    block : int               block number the transaction concerns
    size : int                bytes on the wire (set by the fabric caller)
    requester : int           original requesting node (for forwards)
    word : Optional[int]      word-aligned address for word-grain messages
    value : Any               data value carried (word messages)
    data : Optional[dict]     word -> value map (block messages)
    nacks : int               number of acks the receiver should expect
    seq : int                 home-issued transaction sequence number
    op : Optional[str]        atomic opcode
    operand : Any             atomic operand(s)
    result : Any              atomic result
    retain : bool             PU retain-private hint on WRITER_ACK
    write_id : Optional[int]  id of the originating write (ack matching)
    """

    __slots__ = ("mid", "mtype", "src", "dst", "block", "size", "requester",
                 "word", "value", "data", "nacks", "seq", "op", "operand",
                 "result", "retain", "write_id", "mask", "send_time")

    def __init__(self, mtype: MsgType, src: int, dst: int, block: int,
                 size: int = 0, requester: int = -1,
                 word: Optional[int] = None, value: Any = None,
                 data: Optional[dict] = None, nacks: int = 0, seq: int = -1,
                 op: Optional[str] = None, operand: Any = None,
                 result: Any = None, retain: bool = False,
                 write_id: Optional[int] = None,
                 mask: Optional[int] = None) -> None:
        self.mid = next(_msg_ids)
        self.mtype = mtype
        self.src = src
        self.dst = dst
        self.block = block
        self.size = size
        self.requester = requester
        self.word = word
        self.value = value
        self.data = data
        self.nacks = nacks
        self.seq = seq
        self.op = op
        self.operand = operand
        self.result = result
        self.retain = retain
        self.write_id = write_id
        self.mask = mask
        self.send_time = -1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = []
        if self.word is not None:
            extra.append(f"w={self.word:#x}")
        if self.nacks:
            extra.append(f"nacks={self.nacks}")
        if self.op:
            extra.append(f"op={self.op}")
        return (f"<{self.mtype.name} {self.src}->{self.dst} "
                f"blk={self.block} {' '.join(extra)}>")
