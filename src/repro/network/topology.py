"""Mesh topology and dimension-ordered routing.

The machine is a bi-directional 2-D mesh.  Dimension-ordered (X-then-Y)
routing makes the path between two nodes unique; because the paper models
contention only at source and destination, the topology's job is to
provide hop counts and (for tests and visualization) explicit routes.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.config import mesh_shape


class MeshTopology:
    """A ``width x height`` bi-directional mesh with X-then-Y routing."""

    def __init__(self, num_nodes: int) -> None:
        self.num_nodes = num_nodes
        self.width, self.height = mesh_shape(num_nodes)
        if self.width * self.height != num_nodes:
            raise ValueError(
                f"mesh {self.width}x{self.height} cannot host {num_nodes}")
        # precomputed hop-count table; num_nodes <= 64 so this is tiny
        self._hops = [
            [self._hop_count(a, b) for b in range(num_nodes)]
            for a in range(num_nodes)
        ]

    # ------------------------------------------------------------------

    def coords(self, node: int) -> Tuple[int, int]:
        """(x, y) coordinates of ``node`` in row-major order."""
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} out of range")
        return node % self.width, node // self.width

    def node_at(self, x: int, y: int) -> int:
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError(f"({x},{y}) outside {self.width}x{self.height}")
        return y * self.width + x

    def _hop_count(self, a: int, b: int) -> int:
        ax, ay = a % self.width, a // self.width
        bx, by = b % self.width, b // self.width
        return abs(ax - bx) + abs(ay - by)

    def hops(self, src: int, dst: int) -> int:
        """Number of switch-to-switch hops on the unique X-then-Y route."""
        return self._hops[src][dst]

    def route(self, src: int, dst: int) -> List[int]:
        """The full node sequence of the dimension-ordered route."""
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        path = [src]
        x, y = sx, sy
        step = 1 if dx > sx else -1
        while x != dx:
            x += step
            path.append(self.node_at(x, y))
        step = 1 if dy > sy else -1
        while y != dy:
            y += step
            path.append(self.node_at(x, y))
        return path

    @property
    def diameter(self) -> int:
        return (self.width - 1) + (self.height - 1)

    def __repr__(self) -> str:  # pragma: no cover
        return f"MeshTopology({self.width}x{self.height})"
