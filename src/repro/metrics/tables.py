"""Plain-text rendering of the paper's figures.

Line figures (8, 11, 14) become one row per machine size with one
column per algorithm/protocol combination; bar figures (9, 10, 12, 13,
15, 16) become one row per combination with one column per traffic
category, plus a text bar chart for quick visual comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Simple fixed-width table."""
    cols = [[str(h)] for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            if isinstance(cell, float):
                cols[i].append(f"{cell:,.1f}")
            else:
                cols[i].append(str(cell))
    widths = [max(len(c) for c in col) for col in cols]
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    header = "  ".join(h.rjust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-" * len(header))
    nrows = len(rows)
    for r in range(nrows):
        lines.append("  ".join(
            cols[i][r + 1].rjust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


@dataclass
class Series:
    """A line-figure dataset: metric vs machine size, one line per
    algorithm/protocol combination."""

    title: str
    xlabel: str
    ylabel: str
    xs: List[int] = field(default_factory=list)
    #: combination label -> list of y values aligned with ``xs``
    lines: Dict[str, List[Optional[float]]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._points: Dict[str, Dict[int, float]] = {}

    def add(self, label: str, x: int, y: float) -> None:
        if x not in self.xs:
            self.xs.append(x)
            self.xs.sort()
        self._points.setdefault(label, {})[x] = y
        self._rebuild()

    def _rebuild(self) -> None:
        self.lines = {
            label: [pts.get(x) for x in self.xs]
            for label, pts in self._points.items()
        }

    def get(self, label: str, x: int) -> Optional[float]:
        return self._points.get(label, {}).get(x)

    def as_rows(self) -> List[List]:
        rows = []
        for i, x in enumerate(self.xs):
            row: List = [x]
            for label in self.lines:
                v = self.lines[label][i]
                row.append("-" if v is None else v)
            rows.append(row)
        return rows

    def render(self) -> str:
        headers = [self.xlabel] + list(self.lines.keys())
        return format_table(headers, self.as_rows(),
                            f"{self.title}  [{self.ylabel}]")


@dataclass
class StackedBars:
    """A bar-figure dataset: per-combination stacked category counts."""

    title: str
    categories: List[str]
    #: combination label -> {category -> count}
    bars: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def add(self, label: str, counts: Dict[str, int]) -> None:
        self.bars[label] = {c: counts.get(c, 0) for c in self.categories}

    def total(self, label: str) -> int:
        return sum(self.bars[label].values())

    def as_rows(self) -> List[List]:
        rows = []
        for label, counts in self.bars.items():
            row: List = [label]
            row.extend(counts[c] for c in self.categories)
            row.append(sum(counts.values()))
            rows.append(row)
        return rows

    def render(self, bar_width: int = 44) -> str:
        headers = ["combo"] + self.categories + ["total"]
        out = [format_table(headers, self.as_rows(), self.title)]
        maxtot = max((self.total(lbl) for lbl in self.bars), default=0)
        if maxtot > 0:
            out.append("")
            glyphs = "#%*=+:~."
            for label, counts in self.bars.items():
                bar = ""
                for i, c in enumerate(self.categories):
                    n = counts[c]
                    width = round(n / maxtot * bar_width)
                    bar += glyphs[i % len(glyphs)] * width
                out.append(f"  {label:>8} |{bar}")
            legend = "  ".join(f"{glyphs[i % len(glyphs)]}={c}"
                               for i, c in enumerate(self.categories))
            out.append(f"  legend: {legend}")
        return "\n".join(out)


def format_series(series: Series) -> str:
    return series.render()


def format_stacked(bars: StackedBars) -> str:
    return bars.render()
