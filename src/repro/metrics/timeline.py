"""Processor-state timeline: what was each CPU doing, when?

Opt-in instrumentation for debugging and teaching: wrap thread programs
with :func:`instrument`, run, then render an ASCII Gantt chart of
processor states (computing / memory-stalled / spinning / syncing).

The wrapper classifies each yielded operation and records state
intervals at the Python level -- zero cost when not used, and no
changes to the simulator itself.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.isa.ops import (
    CallHook, Compute, Fence, Flush, FlushCache, Fork, Join, Op, Read,
    SpinUntil, Write, _AtomicOp,
)


class CpuState(enum.Enum):
    COMPUTE = "compute"
    MEMORY = "memory"       # reads/writes/atomics/flushes
    SPIN = "spin"
    SYNC = "sync"           # fences, hooks, fork/join
    DONE = "done"

    @property
    def glyph(self) -> str:
        return {"compute": "#", "memory": "m", "spin": ".",
                "sync": "|", "done": " "}[self.value]


def _classify(op: Op) -> CpuState:
    if isinstance(op, Compute):
        return CpuState.COMPUTE
    if isinstance(op, SpinUntil):
        return CpuState.SPIN
    if isinstance(op, (Fence, CallHook, Fork, Join)):
        return CpuState.SYNC
    if isinstance(op, (Read, Write, _AtomicOp, Flush, FlushCache)):
        return CpuState.MEMORY
    return CpuState.SYNC


@dataclass
class Interval:
    start: int
    end: int
    state: CpuState

    def to_jsonable(self) -> Dict[str, object]:
        return {"start": self.start, "end": self.end,
                "state": self.state.value}


class Timeline:
    """Collects per-processor state intervals."""

    def __init__(self, sim) -> None:
        self.sim = sim
        self._intervals: Dict[int, List[Interval]] = {}
        self._open: Dict[int, Tuple[int, CpuState]] = {}

    # ------------------------------------------------------------------

    def instrument(self, node: int, program):
        """Wrap ``program`` so its states land on this timeline."""
        self._intervals.setdefault(node, [])

        def wrapped():
            gen = program
            value = None
            while True:
                try:
                    op = gen.send(value)
                except StopIteration:
                    self._close(node)
                    return
                self._enter(node, _classify(op))
                value = yield op

        return wrapped()

    def _enter(self, node: int, state: CpuState) -> None:
        now = self.sim.now
        open_ = self._open.get(node)
        if open_ is not None:
            start, prev = open_
            if prev is state:
                return
            if now > start:
                self._intervals[node].append(Interval(start, now, prev))
        self._open[node] = (now, state)

    def _close(self, node: int) -> None:
        open_ = self._open.pop(node, None)
        if open_ is not None:
            start, prev = open_
            if self.sim.now > start:
                self._intervals[node].append(
                    Interval(start, self.sim.now, prev))

    # ------------------------------------------------------------------

    def intervals(self, node: int) -> List[Interval]:
        self._flush_open(node)
        return list(self._intervals.get(node, []))

    def _flush_open(self, node: int) -> None:
        if node in self._open:
            start, prev = self._open[node]
            if self.sim.now > start:
                self._intervals[node].append(
                    Interval(start, self.sim.now, prev))
                self._open[node] = (self.sim.now, prev)

    def state_fractions(self, node: int) -> Dict[CpuState, float]:
        """Fraction of the node's active time in each state."""
        ivs = self.intervals(node)
        total = sum(iv.end - iv.start for iv in ivs)
        out: Dict[CpuState, float] = {}
        if not total:
            return out
        for iv in ivs:
            out[iv.state] = out.get(iv.state, 0.0) + \
                (iv.end - iv.start) / total
        return out

    def to_jsonable(self, until: Optional[int] = None
                    ) -> Dict[str, object]:
        """JSON-ready timeline: per-node intervals + state fractions.

        Node keys are strings (strict JSON); interval ``state`` values
        are the :class:`CpuState` enum values.  This is the shape the
        service streams over NDJSON, so it is covered by shape tests.
        """
        horizon = until if until is not None else self.sim.now
        procs: Dict[str, object] = {}
        for node in sorted(self._intervals):
            procs[str(node)] = {
                "intervals": [iv.to_jsonable()
                              for iv in self.intervals(node)],
                "fractions": {
                    state.value: frac for state, frac in sorted(
                        self.state_fractions(node).items(),
                        key=lambda kv: kv[0].value)},
            }
        return {"horizon": horizon, "procs": procs}

    def render(self, width: int = 72, until: Optional[int] = None) -> str:
        """ASCII Gantt chart: one row per instrumented processor."""
        horizon = until if until is not None else self.sim.now
        if horizon <= 0:
            return "(empty timeline)"
        lines = [f"processor timeline, 0..{horizon} cycles "
                 f"({horizon / width:.0f} cycles/char)"]
        for node in sorted(self._intervals):
            row = [" "] * width
            for iv in self.intervals(node):
                lo = min(width - 1, iv.start * width // horizon)
                hi = min(width - 1, max(lo, (iv.end - 1) * width
                                        // horizon))
                for x in range(lo, hi + 1):
                    row[x] = iv.state.glyph
            lines.append(f"p{node:<3}|{''.join(row)}|")
        legend = "  ".join(f"{s.glyph}={s.value}" for s in CpuState
                           if s is not CpuState.DONE)
        lines.append(f"     {legend}")
        return "\n".join(lines)
