"""SVG rendering of the paper's figures (no dependencies).

Produces self-contained SVG documents for the two figure shapes the
paper uses: latency-vs-machine-size line charts (figures 8, 11, 14) and
stacked traffic bars (figures 9, 10, 12, 13, 15, 16).  The experiments
CLI writes them with ``--svg DIR``.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple
from xml.sax.saxutils import escape

from repro.metrics.tables import Series, StackedBars

#: a colorblind-reasonable categorical palette
PALETTE = [
    "#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee",
    "#aa3377", "#bbbbbb", "#000000", "#997700",
]

WIDTH, HEIGHT = 720, 440
MARGIN = dict(left=78, right=180, top=48, bottom=56)


def _fmt(v: float) -> str:
    if v >= 1_000_000:
        return f"{v / 1_000_000:.1f}M"
    if v >= 10_000:
        return f"{v / 1000:.0f}k"
    if v >= 1000:
        return f"{v / 1000:.1f}k"
    if v == int(v):
        return f"{int(v)}"
    return f"{v:.1f}"


def _axis_ticks(vmax: float, n: int = 5) -> List[float]:
    if vmax <= 0:
        return [0.0]
    step = vmax / n
    mag = 10 ** math.floor(math.log10(step))
    for mult in (1, 2, 2.5, 5, 10):
        if mag * mult >= step:
            step = mag * mult
            break
    return [i * step for i in range(int(vmax / step) + 2)]


def _doc(body: List[str], title: str) -> str:
    head = (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" '
        f'height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" '
        f'font-family="Helvetica, Arial, sans-serif">'
        f'<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>'
        f'<text x="{WIDTH / 2}" y="24" text-anchor="middle" '
        f'font-size="15" font-weight="bold">{escape(title)}</text>'
    )
    return head + "".join(body) + "</svg>"


def series_to_svg(series: Series, log_y: bool = False) -> str:
    """A line chart of a latency Series (one line per combination)."""
    left, right = MARGIN["left"], WIDTH - MARGIN["right"]
    top, bottom = MARGIN["top"], HEIGHT - MARGIN["bottom"]
    xs = series.xs
    if not xs:
        return _doc(["<text x='20' y='60'>no data</text>"], series.title)
    all_vals = [v for line in series.lines.values()
                for v in line if v is not None]
    vmax = max(all_vals) if all_vals else 1.0
    vmin = min(all_vals) if all_vals else 0.0

    def x_at(i: int) -> float:
        if len(xs) == 1:
            return (left + right) / 2
        return left + i * (right - left) / (len(xs) - 1)

    if log_y:
        lo = math.log10(max(vmin, 1e-9))
        hi = math.log10(max(vmax, 1e-9))
        span = (hi - lo) or 1.0

        def y_at(v: float) -> float:
            return bottom - (math.log10(max(v, 1e-9)) - lo) \
                / span * (bottom - top)
        ticks = [10 ** e for e in range(math.floor(lo),
                                        math.ceil(hi) + 1)]
    else:
        def y_at(v: float) -> float:
            return bottom - (v / vmax) * (bottom - top) if vmax else bottom
        ticks = _axis_ticks(vmax)

    body: List[str] = []
    # axes + gridlines
    body.append(f'<line x1="{left}" y1="{bottom}" x2="{right}" '
                f'y2="{bottom}" stroke="#333"/>')
    body.append(f'<line x1="{left}" y1="{top}" x2="{left}" '
                f'y2="{bottom}" stroke="#333"/>')
    for t in ticks:
        if t > vmax * 1.15 and not log_y:
            continue
        y = y_at(t)
        if y < top - 1:
            continue
        body.append(f'<line x1="{left}" y1="{y:.1f}" x2="{right}" '
                    f'y2="{y:.1f}" stroke="#e5e5e5"/>')
        body.append(f'<text x="{left - 6}" y="{y + 4:.1f}" '
                    f'text-anchor="end" font-size="11">{_fmt(t)}</text>')
    for i, xv in enumerate(xs):
        x = x_at(i)
        body.append(f'<text x="{x:.1f}" y="{bottom + 18}" '
                    f'text-anchor="middle" font-size="11">{xv}</text>')
    body.append(f'<text x="{(left + right) / 2}" y="{bottom + 38}" '
                f'text-anchor="middle" font-size="12">'
                f'{escape(series.xlabel)}</text>')
    body.append(f'<text x="20" y="{(top + bottom) / 2}" font-size="12" '
                f'transform="rotate(-90 20 {(top + bottom) / 2})" '
                f'text-anchor="middle">{escape(series.ylabel)}</text>')

    # lines + legend
    for li, (label, values) in enumerate(series.lines.items()):
        color = PALETTE[li % len(PALETTE)]
        pts = [(x_at(i), y_at(v)) for i, v in enumerate(values)
               if v is not None]
        if pts:
            path = " ".join(f"{x:.1f},{y:.1f}" for x, y in pts)
            body.append(f'<polyline points="{path}" fill="none" '
                        f'stroke="{color}" stroke-width="2"/>')
            for x, y in pts:
                body.append(f'<circle cx="{x:.1f}" cy="{y:.1f}" r="3" '
                            f'fill="{color}"/>')
        ly = top + 4 + li * 18
        body.append(f'<line x1="{right + 14}" y1="{ly}" '
                    f'x2="{right + 38}" y2="{ly}" stroke="{color}" '
                    f'stroke-width="2"/>')
        body.append(f'<text x="{right + 44}" y="{ly + 4}" '
                    f'font-size="12">{escape(label)}</text>')
    return _doc(body, series.title)


def stacked_to_svg(bars: StackedBars) -> str:
    """A stacked bar chart of a traffic StackedBars dataset."""
    left, right = MARGIN["left"], WIDTH - MARGIN["right"]
    top, bottom = MARGIN["top"], HEIGHT - MARGIN["bottom"]
    labels = list(bars.bars.keys())
    if not labels:
        return _doc(["<text x='20' y='60'>no data</text>"], bars.title)
    vmax = max(bars.total(lbl) for lbl in labels) or 1

    def y_at(v: float) -> float:
        return bottom - (v / vmax) * (bottom - top)

    body: List[str] = []
    body.append(f'<line x1="{left}" y1="{bottom}" x2="{right}" '
                f'y2="{bottom}" stroke="#333"/>')
    body.append(f'<line x1="{left}" y1="{top}" x2="{left}" '
                f'y2="{bottom}" stroke="#333"/>')
    for t in _axis_ticks(vmax):
        if t > vmax * 1.15:
            continue
        y = y_at(t)
        body.append(f'<line x1="{left}" y1="{y:.1f}" x2="{right}" '
                    f'y2="{y:.1f}" stroke="#e5e5e5"/>')
        body.append(f'<text x="{left - 6}" y="{y + 4:.1f}" '
                    f'text-anchor="end" font-size="11">{_fmt(t)}</text>')

    slot = (right - left) / len(labels)
    bw = slot * 0.62
    for bi, label in enumerate(labels):
        x = left + bi * slot + (slot - bw) / 2
        acc = 0
        for ci, cat in enumerate(bars.categories):
            n = bars.bars[label][cat]
            if n <= 0:
                continue
            y1 = y_at(acc + n)
            h = y_at(acc) - y1
            color = PALETTE[ci % len(PALETTE)]
            body.append(f'<rect x="{x:.1f}" y="{y1:.1f}" '
                        f'width="{bw:.1f}" height="{max(h, 0.5):.1f}" '
                        f'fill="{color}"/>')
            acc += n
        body.append(f'<text x="{x + bw / 2:.1f}" y="{bottom + 16}" '
                    f'text-anchor="middle" font-size="11">'
                    f'{escape(label)}</text>')
        total = bars.total(label)
        body.append(f'<text x="{x + bw / 2:.1f}" '
                    f'y="{y_at(total) - 5:.1f}" text-anchor="middle" '
                    f'font-size="9" fill="#555">{_fmt(total)}</text>')

    for ci, cat in enumerate(bars.categories):
        color = PALETTE[ci % len(PALETTE)]
        ly = top + 4 + ci * 18
        body.append(f'<rect x="{right + 14}" y="{ly - 8}" width="12" '
                    f'height="12" fill="{color}"/>')
        body.append(f'<text x="{right + 32}" y="{ly + 2}" '
                    f'font-size="12">{escape(cat)}</text>')
    return _doc(body, bars.title)


def to_svg(data) -> str:
    """Dispatch on the dataset type."""
    if isinstance(data, Series):
        return series_to_svg(data)
    if isinstance(data, StackedBars):
        return stacked_to_svg(data)
    raise TypeError(f"cannot render {type(data).__name__} as SVG")
