"""Post-run analysis: utilization, traffic breakdowns, comparisons.

Everything here is computed from a finished :class:`Machine` /
:class:`RunResult` pair -- no instrumentation overhead during the
simulation itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.metrics.tables import format_table


@dataclass
class NodeUtilization:
    """Resource usage of one node over a run."""

    node: int
    #: fraction of the run the memory module was busy
    memory_busy: float
    #: cycles requests waited for the memory module
    memory_wait_cycles: int
    memory_accesses: int
    messages_sent: int
    messages_received: int
    cache_blocks_resident: int


def node_utilization(machine, result) -> List[NodeUtilization]:
    """Per-node resource summary."""
    total = max(1, result.total_cycles)
    out = []
    for ctrl in machine.controllers:
        busy = min(ctrl.mem.busy_until, result.total_cycles)
        # approximate busy time by completed occupancy: accesses are
        # back-to-back FIFO, so busy_until bounds total occupancy
        out.append(NodeUtilization(
            node=ctrl.node,
            memory_busy=min(1.0, busy / total if total else 0.0),
            memory_wait_cycles=ctrl.mem.wait_cycles,
            memory_accesses=ctrl.mem.accesses,
            messages_sent=result.network.sent_by_node.get(ctrl.node, 0),
            messages_received=result.network.recv_by_node.get(
                ctrl.node, 0),
            cache_blocks_resident=ctrl.cache.occupancy(),
        ))
    return out


def hottest_memories(machine, result, top: int = 5
                     ) -> List[Tuple[int, int]]:
    """Nodes whose memory modules served the most accesses."""
    counts = [(c.node, c.mem.accesses) for c in machine.controllers]
    counts.sort(key=lambda t: -t[1])
    return counts[:top]


def traffic_matrix(result, num_procs: int) -> List[List[int]]:
    """Message counts as a (src x dst) matrix."""
    mat = [[0] * num_procs for _ in range(num_procs)]
    for (src, dst), n in result.network.by_pair.items():
        mat[src][dst] = n
    return mat


def render_traffic_matrix(result, num_procs: int,
                          cell_width: int = 5) -> str:
    """ASCII traffic matrix (rows = senders, columns = receivers)."""
    mat = traffic_matrix(result, num_procs)
    header = " " * 4 + "".join(f"{d:>{cell_width}}"
                               for d in range(num_procs))
    lines = ["traffic matrix (messages, src rows -> dst cols)", header]
    for src in range(num_procs):
        row = "".join(f"{mat[src][dst]:>{cell_width}}"
                      for dst in range(num_procs))
        lines.append(f"{src:>3} {row}")
    return "\n".join(lines)


@dataclass
class TrafficSummary:
    """The paper's two traffic lenses plus raw volume, in one record."""

    total_cycles: int
    misses: Dict[str, int]
    updates: Dict[str, int]
    messages: int
    bytes: int
    shared_refs: int

    @property
    def useful_miss_fraction(self) -> float:
        total = self.misses.get("total", 0)
        if not total:
            return 1.0
        return (self.misses.get("cold", 0)
                + self.misses.get("true", 0)) / total

    @property
    def useful_update_fraction(self) -> float:
        total = self.updates.get("total", 0)
        if not total:
            return 1.0
        return self.updates.get("useful", 0) / total

    @property
    def bytes_per_ref(self) -> float:
        return self.bytes / max(1, self.shared_refs)


def summarize(result) -> TrafficSummary:
    return TrafficSummary(
        total_cycles=result.total_cycles,
        misses=dict(result.misses),
        updates=dict(result.updates),
        messages=result.network.messages,
        bytes=result.network.bytes,
        shared_refs=result.shared_refs,
    )


def compare_runs(named_results: Dict[str, "RunResult"],
                 title: str = "protocol comparison") -> str:
    """Side-by-side table of runs (e.g. one per protocol)."""
    rows = []
    for name, result in named_results.items():
        s = summarize(result)
        rows.append([
            name,
            s.total_cycles,
            s.misses.get("total", 0),
            f"{s.useful_miss_fraction:.0%}",
            s.updates.get("total", 0),
            f"{s.useful_update_fraction:.0%}",
            s.messages,
            s.bytes,
        ])
    return format_table(
        ["run", "cycles", "misses", "useful", "updates", "useful",
         "msgs", "bytes"],
        rows, title=title)


def markdown_report(named_results: Dict[str, "RunResult"],
                    title: str = "Run comparison") -> str:
    """A small markdown report (for notebooks / docs)."""
    lines = [f"# {title}", ""]
    lines.append("| run | cycles | misses (useful) | updates (useful) "
                 "| messages | bytes |")
    lines.append("|---|---|---|---|---|---|")
    for name, result in named_results.items():
        s = summarize(result)
        lines.append(
            f"| {name} | {s.total_cycles:,} "
            f"| {s.misses.get('total', 0):,} "
            f"({s.useful_miss_fraction:.0%}) "
            f"| {s.updates.get('total', 0):,} "
            f"({s.useful_update_fraction:.0%}) "
            f"| {s.messages:,} | {s.bytes:,} |")
    best = min(named_results, key=lambda k: named_results[k].total_cycles)
    lines.append("")
    lines.append(f"Fastest: **{best}** "
                 f"({named_results[best].total_cycles:,} cycles).")
    return "\n".join(lines)
