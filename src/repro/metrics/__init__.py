"""Result aggregation and presentation for the experiment harness."""

from repro.metrics.tables import (
    format_table, format_series, format_stacked, Series, StackedBars,
)
from repro.metrics.phases import PhaseTracker, PhaseDelta
from repro.metrics.analysis import (
    NodeUtilization, TrafficSummary, compare_runs, hottest_memories,
    markdown_report, node_utilization, render_traffic_matrix, summarize,
    traffic_matrix,
)

__all__ = [
    "format_table", "format_series", "format_stacked",
    "Series", "StackedBars",
    "NodeUtilization", "TrafficSummary", "compare_runs",
    "hottest_memories", "markdown_report", "node_utilization",
    "render_traffic_matrix", "summarize", "traffic_matrix",
    "PhaseTracker", "PhaseDelta",
]
