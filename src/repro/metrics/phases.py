"""Per-phase traffic accounting.

The paper measures whole synthetic programs; real applications want to
know *which phase* generated the traffic.  A :class:`PhaseTracker`
snapshots the machine's counters at marks a designated thread drops
(typically right after a barrier) and reports per-phase deltas of
cycles, misses, updates and messages.

Note: update messages are classified at end-of-lifetime, so an update
received in phase k but overwritten in phase k+1 is *categorized* in
k+1; the per-phase totals are exact for cycles/messages and
lifetime-attributed for the categories (documented behaviour of the
paper's own algorithm).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List

from repro.isa.ops import CallHook
from repro.metrics.tables import format_table


@dataclass
class PhaseDelta:
    label: str
    cycles: int
    misses: Dict[str, int]
    updates: Dict[str, int]
    messages: int
    bytes: int


class PhaseTracker:
    """Snapshots machine counters at program-dropped marks."""

    def __init__(self, machine) -> None:
        self.machine = machine
        self._snapshots: List[tuple] = []
        self._snap("<start>")

    def _snap(self, label: str) -> None:
        m = self.machine
        self._snapshots.append((
            label,
            m.sim.now,
            dict(m.miss_classifier.as_dict()),
            dict(m.update_classifier.as_dict()),
            m.net.stats.messages,
            m.net.stats.bytes,
        ))

    def mark(self, label: str) -> Generator:
        """Yield-from-able phase boundary (drop from ONE thread only,
        at a point where the phases are globally separated -- right
        after a barrier)."""
        def hook(proc, resume):
            self._snap(label)
            resume(None)
        yield CallHook(hook)

    # ------------------------------------------------------------------

    def phases(self) -> List[PhaseDelta]:
        """Deltas between consecutive marks (final partial phase ends at
        the last mark; call after the run)."""
        out = []
        for (l0, t0, m0, u0, msg0, b0), (l1, t1, m1, u1, msg1, b1) in zip(
                self._snapshots, self._snapshots[1:]):
            out.append(PhaseDelta(
                label=l1,
                cycles=t1 - t0,
                misses={k: m1[k] - m0.get(k, 0) for k in m1},
                updates={k: u1[k] - u0.get(k, 0) for k in u1},
                messages=msg1 - msg0,
                bytes=b1 - b0,
            ))
        return out

    def render(self) -> str:
        rows = []
        for ph in self.phases():
            rows.append([
                ph.label, ph.cycles, ph.misses.get("total", 0),
                ph.updates.get("total", 0), ph.messages, ph.bytes,
            ])
        return format_table(
            ["phase", "cycles", "misses", "updates", "msgs", "bytes"],
            rows, title="per-phase traffic")
