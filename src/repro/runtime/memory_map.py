"""Shared-memory layout control (subsystem S13).

The paper maps shared data "to the processors that use them most
frequently".  Block-level interleaving assigns block ``b`` to home
``b % P``; this allocator hands out addresses whose block numbers encode
the requested home, giving workloads precise placement control (MCS
queue nodes at their owner's node, dissemination flags at the spinning
processor, reduction slots at their writer, ...).

Placement also controls *block sharing*: by default every allocation
starts a fresh cache block (no accidental false sharing between
unrelated variables); ``pack=True`` co-locates an allocation into the
home's currently open packed block, which the layout-ablation benchmark
uses to measure the cost of careless layout.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

from repro.config import MachineConfig, Protocol


@dataclass
class SharedAlloc:
    """One named allocation (for debugging and tests)."""

    label: str
    addr: int
    nbytes: int
    home: int


class MemoryMap:
    """Home-aware shared-memory allocator."""

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        #: next fresh block index (multiplied out per home)
        self._next_block_round = 0
        #: home -> (open packed block base, bytes used)
        self._packed: Dict[int, Tuple[int, int]] = {}
        self.allocations: List[SharedAlloc] = []
        #: initial values to install in home memories before the run
        self.initial_values: Dict[int, int] = {}
        #: block -> managing protocol, for HYBRID machines
        self.block_policy: Dict[int, Protocol] = {}
        self._current_protocol: Optional[Protocol] = None
        #: words used as synchronization objects (lock/barrier state);
        #: the race detector exempts them from the data-race check
        self.sync_words: Set[int] = set()
        #: release words: a store here is a lock handoff and must find
        #: the storing node quiescent (fenced).  Maps word -> optional
        #: predicate over the stored value selecting which stores are
        #: releases (e.g. MCS ``locked`` words release only on 0).
        self.release_words: Dict[int, Optional[Callable[[int], bool]]] = {}

    # ------------------------------------------------------------------
    # synchronization-word registry (checkers)
    # ------------------------------------------------------------------

    def mark_sync(self, addr: int) -> None:
        """Register ``addr``'s word as a synchronization object."""
        self.sync_words.add(self.config.word_of(addr))

    def mark_release(self, addr: int,
                     predicate: Optional[Callable[[int], bool]] = None
                     ) -> None:
        """Register ``addr``'s word as a release (lock-handoff) word.

        ``predicate`` selects which stored values constitute a release;
        ``None`` means every store does.  Implies :meth:`mark_sync`.
        """
        word = self.config.word_of(addr)
        self.sync_words.add(word)
        self.release_words[word] = predicate

    # ------------------------------------------------------------------
    # per-allocation protocol tagging (HYBRID machines)
    # ------------------------------------------------------------------

    @contextlib.contextmanager
    def use_protocol(self, protocol: Protocol) -> Iterator[None]:
        """Tag every block allocated inside the context with
        ``protocol``.  On a :attr:`~repro.config.Protocol.HYBRID`
        machine those blocks are then managed by that protocol::

            with machine.memmap.use_protocol(Protocol.CU):
                lock = MCSLock(machine)      # lock data under CU
            with machine.memmap.use_protocol(Protocol.PU):
                barrier = DisseminationBarrier(machine)

        Nesting is allowed; the innermost tag wins.  On single-protocol
        machines the tags are recorded but have no effect.
        """
        if protocol is Protocol.HYBRID:
            raise ValueError("tag allocations with a concrete protocol")
        prev = self._current_protocol
        self._current_protocol = protocol
        try:
            yield
        finally:
            self._current_protocol = prev

    def protocol_of_block(self, block: int) -> Protocol:
        """The protocol managing ``block`` on a HYBRID machine."""
        return self.block_policy.get(block, self.config.hybrid_default)

    # ------------------------------------------------------------------

    def _fresh_block(self, home: int) -> int:
        """Base address of a fresh block homed at ``home``."""
        if not 0 <= home < self.config.num_procs:
            raise ValueError(f"home {home} out of range")
        block = self._next_block_round * self.config.num_procs + home
        self._next_block_round += 1
        if self._current_protocol is not None:
            self.block_policy[block] = self._current_protocol
        return block * self.config.block_size_bytes

    def alloc_block(self, home: int, label: str = "") -> int:
        """A whole fresh cache block homed at ``home``."""
        base = self._fresh_block(home)
        self.allocations.append(
            SharedAlloc(label, base, self.config.block_size_bytes, home))
        return base

    def alloc_word(self, home: int, label: str = "", init: int = 0,
                   pack: bool = False) -> int:
        """One word homed at ``home``.

        With ``pack=False`` (default) the word gets a block of its own;
        with ``pack=True`` it shares the home's open packed block.
        """
        cfg = self.config
        if pack:
            base, used = self._packed.get(home, (None, cfg.block_size_bytes))
            if base is None or used + cfg.word_size_bytes > cfg.block_size_bytes:
                base, used = self._fresh_block(home), 0
            addr = base + used
            self._packed[home] = (base, used + cfg.word_size_bytes)
        else:
            addr = self._fresh_block(home)
        self.allocations.append(
            SharedAlloc(label, addr, cfg.word_size_bytes, home))
        if init:
            self.initial_values[cfg.word_of(addr)] = init
        return addr

    def alloc_words(self, home: int, n: int, label: str = "",
                    init: int = 0) -> List[int]:
        """``n`` words homed at ``home``, packed together into as few
        blocks as possible (contiguous addresses within each block)."""
        cfg = self.config
        per_block = cfg.words_per_block
        out: List[int] = []
        for start in range(0, n, per_block):
            base = self._fresh_block(home)
            count = min(per_block, n - start)
            for i in range(count):
                addr = base + i * cfg.word_size_bytes
                out.append(addr)
                if init:
                    self.initial_values[addr] = init
            self.allocations.append(
                SharedAlloc(f"{label}[{start}:{start + count}]", base,
                            count * cfg.word_size_bytes, home))
        return out

    def alloc_struct(self, home: int, fields: List[str], label: str = "",
                     pad_to_block: bool = True) -> Dict[str, int]:
        """A small record (<= one block) homed at ``home``.

        Returns field name -> word address.  ``pad_to_block`` keeps the
        record alone in its block (the usual padding discipline for
        per-processor synchronization records such as MCS queue nodes).
        """
        cfg = self.config
        if len(fields) > cfg.words_per_block:
            raise ValueError(
                f"struct {label!r} with {len(fields)} fields does not fit "
                f"in one {cfg.block_size_bytes}-byte block")
        base = self._fresh_block(home) if pad_to_block else \
            self.alloc_word(home, pack=True)
        out = {}
        for i, name in enumerate(fields):
            out[name] = base + i * cfg.word_size_bytes
        self.allocations.append(
            SharedAlloc(label, base, len(fields) * cfg.word_size_bytes,
                        home))
        return out

    def alloc_region(self, nbytes: int, label: str = "") -> int:
        """A contiguous region spanning whole blocks.

        Consecutive blocks interleave across the machine's homes in
        block-number order -- exactly the paper's "shared data are
        interleaved across the memories at the block level" default.
        Used for plain shared arrays such as the sequential reduction's
        ``local_max[0..P-1]``.
        """
        cfg = self.config
        nblocks = (nbytes + cfg.block_size_bytes - 1) // cfg.block_size_bytes
        if nblocks < 1:
            raise ValueError("region must span at least one block")
        # start on a fresh interleave round so homes run 0,1,2,... P-1
        first_block = self._next_block_round * cfg.num_procs
        self._next_block_round += (
            (nblocks + cfg.num_procs - 1) // cfg.num_procs)
        if self._current_protocol is not None:
            for b in range(first_block, first_block + nblocks):
                self.block_policy[b] = self._current_protocol
        base = first_block * cfg.block_size_bytes
        self.allocations.append(
            SharedAlloc(label, base, nblocks * cfg.block_size_bytes,
                        first_block % cfg.num_procs))
        return base

    # ------------------------------------------------------------------

    def set_initial(self, addr: int, value: int) -> None:
        """Set a pre-run initial value (installed directly in memory)."""
        self.initial_values[self.config.word_of(addr)] = value

    def home_of(self, addr: int) -> int:
        return self.config.home_of_block(self.config.block_of(addr))

    def find(self, label: str) -> Optional[SharedAlloc]:
        for alloc in self.allocations:
            if alloc.label == label:
                return alloc
        return None
