"""The processor front-end: drives one thread generator per node.

A *thread program* is a Python generator that yields
:mod:`repro.isa.ops` operations; the processor executes each against the
node's cache controller and resumes the generator with the result.  The
processor is blocking (single outstanding read, as in the paper) and
charges 1 cycle per instruction.

The spin-wait fast path lives here: a :class:`~repro.isa.ops.SpinUntil`
issues a fully-modeled (classified, possibly missing) read per re-check,
but between re-checks the processor parks on the cache's block-watcher
instead of burning simulated cycles on local hits that can generate no
traffic and no state change.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.isa.ops import (
    CallHook, Compute, CompareSwap, Fence, FetchAdd, FetchStore, Flush,
    FlushCache, Fork, Join, Op, Read, SpinUntil, Write, _AtomicOp,
)

#: A thread program: generator yielding Ops, resumed with each result.
ThreadProgram = Generator[Op, Any, None]


class Processor:
    """Executes one thread program on one node."""

    __slots__ = ("sim", "node", "ctrl", "machine", "_gen", "done",
                 "done_time", "instructions", "spin_wakeups", "started",
                 "failure", "_current_op", "_done_callbacks", "_race",
                 "_cont_none", "_spin_attempt_cb", "_spin_check_cb",
                 "_spin_wake_cb", "_spin_addr", "_spin_word",
                 "_spin_block", "_spin_pred")

    def __init__(self, sim, node: int, ctrl, program: ThreadProgram,
                 machine=None) -> None:
        self.sim = sim
        self.node = node
        self.ctrl = ctrl
        #: back-reference for dynamic thread creation (Fork)
        self.machine = machine
        #: happens-before race detector, or None (cached: one attribute
        #: test per dispatched op)
        self._race = getattr(machine, "race_detector", None)
        self._gen = program
        self.done = False
        self.done_time: Optional[int] = None
        self.instructions = 0
        self.spin_wakeups = 0
        self.started = False
        self.failure: Optional[BaseException] = None
        self._current_op: Optional[Op] = None
        self._done_callbacks: list = []
        # continuations bound once per processor, not once per
        # instruction: the processor is blocking (single outstanding
        # op), so one zero-arg resume and one set of spin-loop
        # callbacks can be reused for the thread's whole life
        self._cont_none = self._continue_none
        self._spin_attempt_cb = self._spin_attempt
        self._spin_check_cb = self._spin_check
        self._spin_wake_cb = self._spin_wake
        self._spin_addr = 0
        self._spin_word = 0
        self._spin_block = 0
        self._spin_pred: Optional[Callable[[Any], bool]] = None

    @property
    def current_op(self) -> Optional[Op]:
        """The operation the thread last dispatched (None before the
        first instruction).  While the thread is blocked this is the
        operation it is blocked on -- deadlock reports attribute stuck
        threads with it."""
        return self._current_op

    def on_done(self, cb) -> None:
        """Run ``cb()`` when this thread finishes (Join support)."""
        if self.done:
            cb()
        else:
            self._done_callbacks.append(cb)

    # ------------------------------------------------------------------

    def start(self) -> None:
        if self.started:
            raise RuntimeError("processor already started")
        self.started = True
        self.sim.schedule(0, self._resume, None)

    def _finish(self) -> None:
        self.done = True
        self.done_time = self.sim.now
        self._gen = None
        callbacks, self._done_callbacks = self._done_callbacks, []
        for cb in callbacks:
            cb()

    def _resume(self, value: Any) -> None:
        """Advance the thread program and dispatch its next operation."""
        try:
            op = self._gen.send(value)
        except StopIteration:
            self._finish()
            return
        except BaseException as exc:  # surface program bugs loudly
            self.failure = exc
            self._finish()
            raise
        self._current_op = op
        self.instructions += 1
        self._dispatch(op)

    def _continue_none(self) -> None:
        """Zero-arg continuation (Fence / Flush / Join completions)."""
        self._resume(None)

    # ------------------------------------------------------------------

    def _dispatch(self, op: Op) -> None:
        cls = op.__class__
        race = self._race
        if cls is Read:
            if race is not None:
                race.on_read(self.node, op.addr)
            self.ctrl.read(op.addr, self._resume)
        elif cls is Write:
            if race is not None:
                race.on_write(self.node, op.addr, op.value, op.mask)
            self.ctrl.write(op.addr, op.value, self._resume,
                            mask=op.mask)
        elif cls is Compute:
            self.sim.schedule(op.cycles, self._resume, None)
        elif cls is SpinUntil:
            if race is not None:
                race.on_spin_start(self.node, op.addr)
            self._spin(op.addr, op.predicate)
        elif isinstance(op, _AtomicOp):
            if race is not None:
                addr = op.addr
                race.on_atomic_issue(self.node, addr)

                def atomic_done(result) -> None:
                    race.on_atomic_complete(self.node, addr)
                    self._resume(result)

                self.ctrl.atomic(op.opname, addr, op.operand, atomic_done)
            else:
                self.ctrl.atomic(op.opname, op.addr, op.operand,
                                 self._resume)
        elif cls is Fence:
            if race is not None:
                race.on_fence(self.node)
            self.ctrl.fence(self._cont_none)
        elif cls is CallHook:
            op.fn(self, self._resume)
        elif cls is Fork:
            if self.machine is None:
                raise RuntimeError("Fork requires a machine-backed "
                                   "processor")
            self.machine.fork(self, op.node, op.program, self._resume)
        elif cls is Join:
            if race is not None:
                handle = op.handle

                def joined() -> None:
                    race.on_join(self.node, handle.node)
                    self._resume(None)

                handle.on_done(joined)
            else:
                op.handle.on_done(self._cont_none)
        elif cls is Flush:
            self.ctrl.flush_block(op.addr, self._cont_none)
        elif cls is FlushCache:
            self.ctrl.flush_all(self._cont_none)
        else:
            raise TypeError(f"thread yielded a non-Op: {op!r}")

    # ------------------------------------------------------------------
    # spin-wait fast path
    # ------------------------------------------------------------------

    def _spin(self, addr: int, pred: Callable[[Any], bool]) -> None:
        # the processor is blocking, so at most one spin is active and
        # its state can live on pre-bound slots instead of per-op
        # closures (this loop runs once per lock hand-off / barrier
        # episode re-check -- the hottest control path in the package)
        cfg = self.ctrl.config
        self._spin_addr = addr
        self._spin_pred = pred
        self._spin_word = cfg.word_of(addr)
        self._spin_block = cfg.block_of(addr)
        self._spin_attempt()

    def _spin_attempt(self) -> None:
        # a fully modeled read: classification, CU counter reset,
        # possible miss + fill
        self.ctrl.read(self._spin_addr, self._spin_check_cb)

    def _spin_check(self, value: Any) -> None:
        # Re-sample the freshest locally visible value: the read's
        # return value was captured at issue time and an update may
        # have landed during the 1-cycle hit latency.
        ctrl = self.ctrl
        block = self._spin_block
        hit, fresh = ctrl.local_view(block, self._spin_word)
        if hit:
            value = fresh
        if self._spin_pred(value):
            if self._race is not None:
                # a successful spin is an acquire on the word
                self._race.on_spin_success(self.node, self._spin_word)
            self._spin_pred = None
            self._resume(value)
            return
        if ctrl.cache.contains(block):
            # park until the local copy changes (update arrives,
            # invalidation, or a new fill)
            ctrl.cache.watch(block, self._spin_wake_cb)
        else:
            # copy vanished between fill and check; re-read (miss)
            self.sim.schedule(1, self._spin_attempt_cb)

    def _spin_wake(self) -> None:
        self.spin_wakeups += 1
        # one spin-loop iteration to notice the change
        self.sim.schedule(1, self._spin_attempt_cb)
