"""Runtime: processors, shared-memory layout, and the machine builder."""

from repro.runtime.processor import Processor, ThreadProgram
from repro.runtime.memory_map import SharedAlloc, MemoryMap
from repro.runtime.machine import Machine, RunResult

__all__ = [
    "Processor", "ThreadProgram",
    "SharedAlloc", "MemoryMap",
    "Machine", "RunResult",
]
