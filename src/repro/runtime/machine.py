"""The simulated multiprocessor: nodes + network + classifiers.

Typical use::

    from repro.config import MachineConfig, Protocol
    from repro.runtime import Machine

    machine = Machine(MachineConfig(num_procs=8, protocol=Protocol.CU))
    flag = machine.memmap.alloc_word(home=0, label="flag")

    def writer(node):
        yield Write(flag, 1)
        yield Fence()

    def reader(node):
        yield SpinUntil(flag, lambda v: v == 1)

    machine.spawn(0, writer(0))
    machine.spawn(1, reader(1))
    result = machine.run()
    print(result.total_cycles, result.misses, result.updates)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.classify import MissClassifier, UpdateClassifier
from repro.config import MachineConfig
from repro.engine import DeadlockError, NullTracer, Simulator, StuckThread
from repro.network import Network, NetworkStats
from repro.network.messages import account_pool
from repro.runtime.memory_map import MemoryMap
from repro.runtime.processor import Processor, ThreadProgram


class _RecordingGen:
    """Wraps a thread generator, recording every value sent into it.

    Python generators cannot be copied, so :meth:`Machine.snapshot`
    instead saves the *history* of values a generator has consumed;
    :meth:`Machine.restore` rebuilds a fresh generator from the
    program's factory and replays the history into it (thread programs
    are deterministic functions of the values they receive, so replay
    reconstructs the generator's hidden state exactly).
    """

    __slots__ = ("gen", "history")

    def __init__(self, gen, history) -> None:
        self.gen = gen
        self.history = history

    def send(self, value):
        self.history.append(value)
        return self.gen.send(value)

    def close(self) -> None:
        self.gen.close()


@dataclass
class RunResult:
    """Everything the experiment harness needs from one simulation."""

    total_cycles: int
    events: int
    misses: Dict[str, int]
    updates: Dict[str, int]
    shared_refs: int
    network: NetworkStats
    proc_done_times: List[int] = field(default_factory=list)
    proc_instructions: List[int] = field(default_factory=list)
    proc_spin_wakeups: List[int] = field(default_factory=list)

    @property
    def total_misses(self) -> int:
        return self.misses.get("total", 0)

    @property
    def total_update_messages(self) -> int:
        return self.updates.get("total", 0)


class Machine:
    """A P-node DASH-like multiprocessor running one coherence protocol."""

    def __init__(self, config: MachineConfig, tracer=None,
                 max_events: Optional[int] = None,
                 sim: Optional[Simulator] = None) -> None:
        # local import to avoid a cycle (protocols build on runtime types)
        from repro.protocols import make_controller

        self.config = config
        # an injected simulator (e.g. the model checker's
        # ControlledSimulator) carries its own max_events budget
        self.sim = sim if sim is not None else Simulator(
            max_events=max_events)
        self.tracer = tracer if tracer is not None else NullTracer()
        self.miss_classifier = MissClassifier()
        self.update_classifier = UpdateClassifier()
        self.net = Network(self.sim, config)
        self.memmap = MemoryMap(config)
        # checkers must exist before the controllers, which cache a
        # reference to the sanitizer at construction time
        self.checker_report = None
        self.sanitizer = None
        self.race_detector = None
        if config.enable_sanitizer or config.enable_race_detector:
            from repro.checkers import (
                CheckerReport, CoherenceSanitizer, RaceDetector,
            )
            self.checker_report = CheckerReport()
            if config.enable_sanitizer:
                self.sanitizer = CoherenceSanitizer(self,
                                                    self.checker_report)
            if config.enable_race_detector:
                self.race_detector = RaceDetector(config, self.memmap,
                                                  self.checker_report)
        self.controllers = [make_controller(self, n)
                            for n in range(config.num_procs)]
        self.processors: List[Processor] = []
        #: per-processor program factories (parallel to ``processors``);
        #: required to rebuild generators on :meth:`restore`
        self._factories: List[Any] = []
        #: node -> recorded send-history (see :meth:`record_histories`)
        self._histories: Dict[int, list] = {}
        #: mutable containers (dicts/lists) captured by thread programs
        #: that snapshot/restore must save alongside generator state
        self.snapshot_containers: List[Any] = []
        self._ran = False

    # ------------------------------------------------------------------

    def spawn(self, node: int, program: ThreadProgram,
              factory=None) -> Processor:
        """Create the thread that will run on ``node``.

        ``factory`` (a zero-argument callable returning a fresh,
        equivalent generator) enables :meth:`snapshot` /
        :meth:`restore` for this thread; without it the machine can
        still snapshot, but only while the thread is finished.
        """
        if not 0 <= node < self.config.num_procs:
            raise ValueError(f"node {node} out of range")
        if any(p.node == node and not p.done for p in self.processors):
            raise ValueError(f"node {node} already has a thread")
        proc = Processor(self.sim, node, self.controllers[node], program,
                         machine=self)
        self.processors.append(proc)
        self._factories.append(factory)
        return proc

    def fork(self, parent: Processor, node: int, program: ThreadProgram,
             resume) -> None:
        """Start ``program`` on ``node`` mid-run (the Fork op).

        Under the update-based protocols the parent's cache is flushed
        first (the paper's PU optimization 2), removing the parent from
        the sharer lists of everything it touched pre-fork; the parent
        resumes -- with the child's join handle -- once the flush
        completes.
        """
        child = self.spawn(node, program)
        if self.race_detector is not None:
            self.race_detector.on_fork(parent.node, node)

        def start() -> None:
            child.start()
            resume(child)

        if (self.config.protocol.is_update_based
                or self.config.protocol.value == "hybrid") \
                and self.config.fork_flush:
            parent.ctrl.flush_all(start)
        else:
            self.sim.schedule(1, start)

    def spawn_all(self, program_factory) -> None:
        """``program_factory(node) -> generator`` for every node."""
        for node in range(self.config.num_procs):
            self.spawn(node, program_factory(node))

    # ------------------------------------------------------------------

    def _install_initial_values(self) -> None:
        for addr, value in self.memmap.initial_values.items():
            home = self.memmap.home_of(addr)
            self.controllers[home].mem.write_word(
                self.config.word_of(addr), value)

    def prepare(self) -> None:
        """First half of :meth:`run`: install initial memory values and
        start every thread, without draining the event queue.  Callers
        that drive the simulator manually (the model checker steps one
        event at a time, checking invariants between events) use
        ``prepare()`` / ``finish()`` around their own event loop."""
        if self._ran:
            raise RuntimeError("machine already ran; build a fresh one")
        self._ran = True
        if not self.processors:
            raise RuntimeError("no threads spawned")
        self._install_initial_values()
        for proc in self.processors:
            proc.start()

    def run(self, until: Optional[int] = None) -> RunResult:
        """Run the simulation to completion and collect the results."""
        self.prepare()
        self.sim.run(until=until)
        return self.finish(until=until)

    def finish(self, until: Optional[int] = None) -> RunResult:
        """Second half of :meth:`run`: deadlock attribution, checker
        finalization and result collection, after the caller has drained
        the event queue (directly or via ``self.sim.run``)."""
        stuck = [p for p in self.processors if not p.done]
        if stuck and until is None:
            attribution = [StuckThread(p.node, repr(p.current_op))
                           for p in stuck]
            details = ", ".join(str(s) for s in attribution)
            raise DeadlockError(
                f"{len(stuck)} thread(s) never finished: {details}",
                stuck=attribution)

        if self.sanitizer is not None and until is None:
            self.sanitizer.finalize()
        if (self.checker_report is not None
                and not self.checker_report.clean
                and self.config.checkers_strict):
            from repro.checkers import CheckerError
            raise CheckerError(self.checker_report)

        self.miss_classifier.finalize()
        self.update_classifier.finalize()
        account_pool(self.net.pool.stats())
        return RunResult(
            total_cycles=self.sim.now,
            events=self.sim.events_processed,
            misses=self.miss_classifier.as_dict(),
            updates=self.update_classifier.as_dict(),
            shared_refs=self.miss_classifier.shared_refs,
            network=self.net.stats,
            proc_done_times=[p.done_time or self.sim.now
                             for p in self.processors],
            proc_instructions=[p.instructions for p in self.processors],
            proc_spin_wakeups=[p.spin_wakeups for p in self.processors],
        )

    # ------------------------------------------------------------------
    # snapshot / restore
    # ------------------------------------------------------------------

    def record_histories(self) -> Dict[int, list]:
        """Wrap every spawned generator in a :class:`_RecordingGen`.

        Must be called after spawning and before :meth:`prepare` for
        :meth:`snapshot` to capture live threads.  Returns the
        ``node -> history`` map (also kept on the machine); the lists
        are live -- they grow as the simulation resumes threads -- and
        :meth:`restore` rewinds them in place, so references held by
        callers (e.g. the model checker's canonical encoder) stay
        valid across restores.
        """
        for proc in self.processors:
            if isinstance(proc._gen, _RecordingGen):
                continue
            hist: list = []
            self._histories[proc.node] = hist
            proc._gen = _RecordingGen(proc._gen, hist)
        return self._histories

    def snapshot(self):
        """O(state) copy of the entire machine mid-run.

        Event tuples, messages, pending writes and thread ops are
        immutable after creation, so the snapshot shares them by
        reference; everything mutable is copied.  Global id counters
        (write ids, message ids, event seq) are deliberately *not*
        rewound -- consumers that need canonical state (the model
        checker) rank-compress them.

        Taking a snapshot permanently freezes the network's message
        pool: recycling mutates messages in place, which would corrupt
        the by-reference sharing above.
        """
        self.net.freeze_pool()
        procs = []
        for p in self.processors:
            gen = p._gen
            hist = (list(gen.history)
                    if isinstance(gen, _RecordingGen) else None)
            procs.append((p.started, p.done, p.done_time,
                          p.instructions, p.spin_wakeups, p.failure,
                          p._current_op, tuple(p._done_callbacks),
                          p._spin_addr, p._spin_word, p._spin_block,
                          p._spin_pred, hist))
        return (
            self.sim.snapshot(),
            [c.snapshot_state() for c in self.controllers],
            self.net.snapshot_state(),
            self.miss_classifier.snapshot_state(),
            self.update_classifier.snapshot_state(),
            (self.sanitizer.snapshot_state()
             if self.sanitizer is not None else None),
            (self.checker_report.snapshot_state()
             if self.checker_report is not None else None),
            procs,
            [dict(c) if isinstance(c, dict) else list(c)
             for c in self.snapshot_containers],
            self._ran,
        )

    def restore(self, snap) -> None:
        """Rewind the machine to a :meth:`snapshot`, in place.

        Components are restored into the *existing* objects so that
        callbacks and closures captured before the snapshot (pending
        fills, spin watchers, scheduled events) remain valid.  Live
        generators are rebuilt from their spawn factory by replaying
        the recorded send-history (programs must be deterministic).
        The snapshot itself is never mutated, so one snapshot can seed
        any number of restores.
        """
        (sim_snap, ctrl_snaps, net_snap, miss_snap, upd_snap, san_snap,
         report_snap, procs, containers, ran) = snap
        self.sim.restore(sim_snap)
        for ctrl, csnap in zip(self.controllers, ctrl_snaps):
            ctrl.restore_state(csnap)
        self.net.restore_state(net_snap)
        self.miss_classifier.restore_state(miss_snap)
        self.update_classifier.restore_state(upd_snap)
        if san_snap is not None:
            self.sanitizer.restore_state(san_snap)
        if report_snap is not None:
            self.checker_report.restore_state(report_snap)

        # drop processors forked after the snapshot
        del self.processors[len(procs):]
        del self._factories[len(procs):]
        for idx, (p, fields) in enumerate(zip(self.processors, procs)):
            (p.started, p.done, p.done_time, p.instructions,
             p.spin_wakeups, p.failure, p._current_op, done_cbs,
             p._spin_addr, p._spin_word, p._spin_block, p._spin_pred,
             hist) = fields
            p._done_callbacks = list(done_cbs)
            if p.done:
                p._gen = None
                continue
            if hist is None:
                raise RuntimeError(
                    f"cannot restore node {p.node}: generator history "
                    f"was not recorded (call record_histories() before "
                    f"snapshot())")
            factory = self._factories[idx]
            if factory is None:
                raise RuntimeError(
                    f"cannot restore node {p.node}: no program factory "
                    f"(pass factory= to spawn())")
            gen = factory()
            for value in hist:
                gen.send(value)
            hist_list = self._histories.get(p.node)
            if hist_list is None:
                hist_list = self._histories[p.node] = []
            hist_list[:] = hist
            p._gen = _RecordingGen(gen, hist_list)
        # containers last: generator replay re-executes their writes,
        # which the saved copies then overwrite with snapshot values
        for cont, saved in zip(self.snapshot_containers, containers):
            if isinstance(cont, dict):
                cont.clear()
                cont.update(saved)
            else:
                cont[:] = saved
        self._ran = ran

    # ------------------------------------------------------------------
    # debugging / invariants (used heavily by the test suite)
    # ------------------------------------------------------------------

    def quiesced(self) -> bool:
        return all(c.quiesced() for c in self.controllers)

    def check_coherence_invariants(self) -> None:
        """Assert directory/cache agreement (call when quiesced)."""
        from repro.memsys.cache import CacheState
        from repro.memsys.directory import DirState

        for ctrl in self.controllers:
            for block, ent in ctrl.directory.entries().items():
                holders = [c.node for c in self.controllers
                           if c.cache.contains(block)]
                dirty = [c.node for c in self.controllers
                         if (ln := c.cache.lookup(block)) is not None
                         and ln.state in (CacheState.MODIFIED,
                                          CacheState.RETAINED,
                                          CacheState.EXCLUSIVE)]
                if len(dirty) > 1:
                    raise AssertionError(
                        f"blk {block}: multiple dirty copies at {dirty}")
                if ent.state is DirState.DIRTY:
                    if dirty != [ent.owner]:
                        raise AssertionError(
                            f"blk {block}: directory says dirty at "
                            f"{ent.owner}, caches say {dirty}")
                else:
                    if dirty:
                        raise AssertionError(
                            f"blk {block}: directory {ent.state} but "
                            f"dirty copy at {dirty}")
                    # every holder must be a known sharer (the reverse
                    # need not hold under WI's silent S-evictions)
                    missing = set(holders) - ent.sharers
                    if missing:
                        raise AssertionError(
                            f"blk {block}: cached at {sorted(missing)} "
                            f"unknown to the directory "
                            f"(sharers={sorted(ent.sharers)})")
