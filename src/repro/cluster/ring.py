"""Consistent-hash ownership ring for the sharded cluster.

Every canonical :class:`~repro.campaign.RunSpec` key (a sha256 hex
digest) is owned by exactly one shard.  Ownership is decided on a
consistent-hash ring: each shard contributes ``vnodes`` virtual points
(sha256 of ``"<shard>\\x00vnode:<i>"``), a key hashes to a point, and
the owner is the first shard point at or clockwise after it.  The
properties the cluster relies on:

* **stable across processes** -- points come from sha256 of strings,
  never from ``hash()``, so the router and every shard agree on
  ownership regardless of ``PYTHONHASHSEED`` or interpreter;
* **order-independent** -- adding shards in any order yields the same
  ring (ties between equal points, astronomically unlikely, break by
  shard id);
* **bounded movement** -- when a shard joins, the only keys that change
  owner are those the new shard takes (~1/N of the key space); when a
  shard leaves, only its own keys move, to their ring successors.

The ring deliberately knows nothing about networking: it maps key
strings to shard-id strings.  The router keeps one ring of *live*
shards (membership changes on mark-down / recovery), and each shard
keeps a ring of the configured peer set for the ownership check behind
``repro_misrouted_requests_total``.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, List, Tuple

#: virtual points per shard; 64 keeps the per-shard share of the key
#: space within a few percent of 1/N while membership changes stay fast
DEFAULT_VNODES = 64


class EmptyRingError(LookupError):
    """Ownership was asked of a ring with no shards."""


def _point(text: str) -> int:
    """A ring position: the first 8 bytes of sha256, as an integer."""
    return int.from_bytes(
        hashlib.sha256(text.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """Consistent-hash ring mapping key strings to shard ids."""

    def __init__(self, shards: Iterable[str] = (),
                 vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._shards: set = set()
        #: sorted (point, shard_id) pairs; the shard id tie-break makes
        #: the ring independent of insertion order even on collisions
        self._ring: List[Tuple[int, str]] = []
        for shard in shards:
            self.add(shard)

    # -- membership -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard_id: str) -> bool:
        return shard_id in self._shards

    @property
    def shards(self) -> frozenset:
        return frozenset(self._shards)

    def add(self, shard_id: str) -> None:
        """Idempotent; inserts the shard's virtual points."""
        if not shard_id:
            raise ValueError("shard id must be a non-empty string")
        if shard_id in self._shards:
            return
        self._shards.add(shard_id)
        for i in range(self.vnodes):
            bisect.insort(self._ring,
                          (_point(f"{shard_id}\x00vnode:{i}"), shard_id))

    def remove(self, shard_id: str) -> None:
        """Idempotent; drops the shard's virtual points."""
        if shard_id not in self._shards:
            return
        self._shards.discard(shard_id)
        self._ring = [entry for entry in self._ring
                      if entry[1] != shard_id]

    # -- ownership ------------------------------------------------------

    def owner(self, key: str) -> str:
        """The shard owning ``key`` (its clockwise successor point)."""
        if not self._ring:
            raise EmptyRingError("no shards in the ring")
        idx = bisect.bisect_left(self._ring, (_point("key\x00" + key), ""))
        return self._ring[idx % len(self._ring)][1]

    def preference(self, key: str, n: int = None) -> List[str]:
        """Up to ``n`` distinct shards in ring order from the owner.

        The failover order: the owner first, then the shards that would
        take over if it (and each successive shard) were removed.
        """
        if not self._ring:
            raise EmptyRingError("no shards in the ring")
        if n is None:
            n = len(self._shards)
        start = bisect.bisect_left(self._ring,
                                   (_point("key\x00" + key), ""))
        out: List[str] = []
        for step in range(len(self._ring)):
            shard = self._ring[(start + step) % len(self._ring)][1]
            if shard not in out:
                out.append(shard)
                if len(out) >= n:
                    break
        return out
