"""The cluster router: one tiny asyncio load-balancer over N shards.

The router is the cluster's only client-facing process.  It owns a
consistent-hash :class:`~repro.cluster.ring.HashRing` of the *live*
shard set and speaks the same HTTP surface as a single gateway, so
every existing client (``loadgen``, curl scripts, the CI smoke jobs)
points at the router port unchanged:

* ``POST /v1/run``     -- validated at the edge, then proxied to the
  key's owner shard with bounded retry + backoff; on connection
  failure the shard is marked down, the ring rehashes, and the request
  fails over to the key's successor -- in-flight client requests
  survive a replica being killed.
* ``POST /v1/sweep``   -- the sweep planner splits the body into
  per-shard batches by key ownership (duplicate keys collapse:
  cross-shard single-flight), streams the per-shard NDJSON responses
  concurrently, and merges them back in deterministic global spec
  order, bit-identical in content to a single-gateway sweep.
* ``GET /v1/result/<key>`` -- owner first, then every other live shard
  (misrouted-key fallback), preferring 200 over 202 over 404.
* ``GET /healthz`` / ``GET /readyz`` -- router liveness; ready iff at
  least one shard is live.
* ``GET /metrics``     -- the router's own series plus every live
  shard's ``/metrics`` merged into one exposition (shard series are
  distinguishable by their ``shard_id`` label).

A background prober hits each shard's ``/readyz``; consecutive
failures mark the shard down (ring rehash), a success marks it back
up.  See ``docs/cluster.md``.
"""

from __future__ import annotations

import asyncio
import json
import sys
import time
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.campaign import RunRecord
from repro.cluster.client import (
    HttpPool, close_writer, open_stream, read_content,
)
from repro.cluster.planner import OrderedMerge, plan_sweep
from repro.cluster.ring import DEFAULT_VNODES, EmptyRingError, HashRing
from repro.service import api
from repro.service.httpio import (
    METRICS_TYPE, HttpError, Request, json_response, ndjson_line,
    read_request, response, stream_head,
)
from repro.service.metrics import MetricsRegistry

#: request header stamped on every proxied call; shards count it in
#: ``repro_forwarded_requests_total``
FORWARDED_HEADER = "X-Repro-Forwarded-By"

#: route label for unmatched paths
_OTHER = "other"

#: shard statuses worth failing over for (a drained/broken shard);
#: 429/4xx pass through to the client untouched
_RETRYABLE_STATUSES = frozenset({500, 502, 503})

_CONN_ERRORS = (ConnectionError, OSError, asyncio.TimeoutError,
                asyncio.IncompleteReadError)


@dataclass(frozen=True)
class ShardEndpoint:
    """Where one gateway replica listens."""

    id: str
    host: str
    port: int


@dataclass(frozen=True)
class RouterConfig:
    """Everything the router needs to run."""

    shards: Tuple[ShardEndpoint, ...]
    host: str = "127.0.0.1"
    port: int = 0
    vnodes: int = DEFAULT_VNODES
    probe_interval_s: float = 0.5
    probe_timeout_s: float = 2.0
    fail_threshold: int = 2
    retries: int = 4
    backoff_s: float = 0.05
    connect_timeout_s: float = 5.0
    sweep_replans: int = 3
    max_body_bytes: int = 8 << 20
    drain_grace_s: float = 30.0
    quiet: bool = False

    def __post_init__(self) -> None:
        if not self.shards:
            raise ValueError("router needs at least one shard")
        ids = [s.id for s in self.shards]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate shard ids: {ids}")
        if self.retries < 1:
            raise ValueError("retries must be >= 1")
        if self.fail_threshold < 1:
            raise ValueError("fail_threshold must be >= 1")


@dataclass
class ShardState:
    """Live view of one shard: health + its connection pool."""

    endpoint: ShardEndpoint
    pool: HttpPool
    up: bool = True
    fails: int = 0


class Router:
    """The load-balancer process (see module docstring)."""

    def __init__(self, config: RouterConfig,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.config = config
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self._states: Dict[str, ShardState] = {
            ep.id: ShardState(ep, HttpPool(
                ep.host, ep.port,
                connect_timeout_s=config.connect_timeout_s))
            for ep in config.shards}
        #: ring of live shards only; mutated on mark-down / recovery
        self._live_ring = HashRing((ep.id for ep in config.shards),
                                   vnodes=config.vnodes)

        reg = self.registry
        self.m_requests = reg.counter(
            "repro_router_requests_total",
            "Client HTTP requests by route and status", ("route", "code"))
        self.m_latency = reg.histogram(
            "repro_router_request_latency_seconds",
            "Wall-clock seconds per client request", ("route",))
        self.m_proxied = reg.counter(
            "repro_router_proxied_total",
            "Requests proxied to a shard", ("shard_id", "route"))
        self.m_retries = reg.counter(
            "repro_router_retries_total",
            "Proxy attempts retried, by reason", ("reason",))
        self.m_dedup = reg.counter(
            "repro_router_sweep_dedup_total",
            "Duplicate sweep keys collapsed by the planner "
            "(cross-shard single-flight)")
        self.m_probe_failures = reg.counter(
            "repro_router_probe_failures_total",
            "Failed shard health probes", ("shard_id",))
        self.m_markdowns = reg.counter(
            "repro_router_shard_markdowns_total",
            "Times a shard was marked down", ("shard_id",))
        self.m_shard_up = reg.gauge(
            "repro_router_shard_up",
            "1 while the shard is in the live ring", ("shard_id",))
        self.m_draining = reg.gauge(
            "repro_router_draining", "1 while the router is draining")
        for ep in config.shards:
            self.m_shard_up.set(1, shard_id=ep.id)

        self._server: Optional[asyncio.AbstractServer] = None
        self._stopped: Optional[asyncio.Event] = None
        self._probe_task: Optional[asyncio.Task] = None
        self._draining = False
        self._active_requests = 0
        self._started = time.monotonic()
        self.port: Optional[int] = None

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        self._stopped = asyncio.Event()
        self._started = time.monotonic()
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._probe_task = asyncio.get_running_loop().create_task(
            self._probe_loop())
        self._log(f"routing {len(self._states)} shard(s) on "
                  f"http://{self.config.host}:{self.port}")

    @property
    def draining(self) -> bool:
        return self._draining

    def live_shards(self) -> List[str]:
        return sorted(sid for sid, st in self._states.items() if st.up)

    def begin_drain(self) -> None:
        if self._draining:
            return
        self._draining = True
        self.m_draining.set(1)
        self._log("drain requested; finishing in-flight requests")
        asyncio.get_event_loop().create_task(self._drain())

    async def _drain(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        deadline = time.monotonic() + self.config.drain_grace_s
        while self._active_requests > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        if self._probe_task is not None:
            self._probe_task.cancel()
        for state in self._states.values():
            await state.pool.close()
        self._log("drain complete")
        if self._stopped is not None:
            self._stopped.set()

    async def wait_stopped(self) -> None:
        assert self._stopped is not None, "start() first"
        await self._stopped.wait()

    async def stop(self) -> None:
        self.begin_drain()
        await self.wait_stopped()

    def _log(self, message: str) -> None:
        if not self.config.quiet:
            print(f"[repro.cluster] {message}", file=sys.stderr,
                  flush=True)

    # -- shard health ---------------------------------------------------

    def _mark_down(self, state: ShardState, reason: str) -> None:
        if not state.up:
            return
        state.up = False
        self._live_ring.remove(state.endpoint.id)
        self.m_shard_up.set(0, shard_id=state.endpoint.id)
        self.m_markdowns.inc(shard_id=state.endpoint.id)
        self._log(f"shard {state.endpoint.id} marked down ({reason}); "
                  f"{len(self._live_ring)} shard(s) in the ring")

    def _mark_up(self, state: ShardState) -> None:
        if state.up:
            return
        state.up = True
        state.fails = 0
        self._live_ring.add(state.endpoint.id)
        self.m_shard_up.set(1, shard_id=state.endpoint.id)
        self._log(f"shard {state.endpoint.id} recovered; "
                  f"{len(self._live_ring)} shard(s) in the ring")

    def _note_conn_failure(self, state: ShardState) -> None:
        """A request-path connection failure is decisive: mark down
        immediately so in-flight requests fail over, and let the
        prober bring the shard back when it answers again."""
        state.fails += 1
        self._mark_down(state, "request connection failure")

    async def _probe_loop(self) -> None:
        try:
            while True:
                await asyncio.sleep(self.config.probe_interval_s)
                await asyncio.gather(*(self._probe(state)
                                       for state in
                                       self._states.values()))
        except asyncio.CancelledError:
            pass

    async def _probe(self, state: ShardState) -> None:
        try:
            status, _headers, _body = await state.pool.request(
                "GET", "/readyz", timeout_s=self.config.probe_timeout_s)
        except _CONN_ERRORS:
            status = None
        if status == 200:
            state.fails = 0
            self._mark_up(state)
            return
        state.fails += 1
        self.m_probe_failures.inc(shard_id=state.endpoint.id)
        if state.up and state.fails >= self.config.fail_threshold:
            self._mark_down(state, "probe failure"
                            if status is None else f"probe {status}")

    # -- connection handling --------------------------------------------

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    req = await read_request(
                        reader, self.config.max_body_bytes)
                except HttpError as exc:
                    writer.write(json_response(
                        exc.status, {"error": exc.message},
                        headers=exc.headers, keep_alive=False))
                    await writer.drain()
                    break
                if req is None:
                    break
                keep = await self._dispatch(req, writer)
                try:
                    await writer.drain()
                except ConnectionError:
                    break
                if not keep:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            await close_writer(writer)

    async def _dispatch(self, req: Request,
                        writer: asyncio.StreamWriter) -> bool:
        route, handler = self._route(req)
        keep = req.keep_alive and not self._draining
        t0 = time.monotonic()
        self._active_requests += 1
        code = 499    # stays if the handler is cancelled mid-flight
        try:
            code, keep = await handler(req, writer, keep)
        except HttpError as exc:
            code = exc.status
            writer.write(json_response(
                code, {"error": exc.message}, headers=exc.headers,
                keep_alive=keep))
        except (ConnectionError, asyncio.IncompleteReadError):
            code, keep = 499, False
        except Exception:
            code, keep = 500, False
            self._log("internal error:\n" + traceback.format_exc())
            try:
                writer.write(json_response(
                    500, {"error": "internal server error"},
                    keep_alive=False))
            except ConnectionError:
                pass
        finally:
            self._active_requests -= 1
            self.m_requests.inc(route=route, code=str(code))
            self.m_latency.observe(time.monotonic() - t0, route=route)
        return keep

    def _route(self, req: Request):
        path, method = req.path, req.method
        if path == "/healthz":
            return "healthz", self._require(method, "GET",
                                            self._h_health)
        if path == "/readyz":
            return "readyz", self._require(method, "GET", self._h_ready)
        if path == "/metrics":
            return "metrics", self._require(method, "GET",
                                            self._h_metrics)
        if path == "/v1/run":
            return "run", self._require(method, "POST", self._h_run,
                                        guard=True)
        if path == "/v1/sweep":
            return "sweep", self._require(method, "POST",
                                          self._h_sweep, guard=True)
        if path.startswith("/v1/result/"):
            return "result", self._require(method, "GET",
                                           self._h_result)
        return _OTHER, self._h_not_found

    def _require(self, method: str, expected: str, handler,
                 guard: bool = False):
        async def wrapped(req, writer, keep):
            if method != expected:
                raise HttpError(405, f"use {expected}",
                                {"Allow": expected})
            if guard and self._draining:
                raise HttpError(503, "draining; not accepting new work",
                                {"Retry-After": "30"})
            return await handler(req, writer, keep)
        return wrapped

    async def _h_not_found(self, req, writer, keep):
        raise HttpError(404, f"no route for {req.path!r}")

    # -- proxying -------------------------------------------------------

    def _preference(self, key: str) -> List[ShardState]:
        """Live shards in failover order for ``key``."""
        try:
            return [self._states[sid]
                    for sid in self._live_ring.preference(key)]
        except EmptyRingError:
            return []

    async def _call_with_failover(self, method: str, path: str,
                                  body: Optional[bytes], key: str,
                                  route: str
                                  ) -> Tuple[int, Dict[str, str], bytes]:
        """Proxy one request to the key's owner, failing over along
        the ring with bounded retry + exponential backoff."""
        delay = self.config.backoff_s
        last_error: Optional[str] = None
        for attempt in range(self.config.retries):
            if attempt:
                await asyncio.sleep(delay)
                delay *= 2
            order = self._preference(key)
            if not order:
                last_error = "no live shards"
                continue
            state = order[attempt % len(order)]
            try:
                status, headers, data = await state.pool.request(
                    method, path, body,
                    headers={FORWARDED_HEADER: "repro-router"})
            except _CONN_ERRORS as exc:
                self._note_conn_failure(state)
                self.m_retries.inc(reason="conn")
                last_error = f"{state.endpoint.id}: {exc!r}"
                continue
            if (status in _RETRYABLE_STATUSES
                    and attempt + 1 < self.config.retries):
                self.m_retries.inc(reason=str(status))
                last_error = f"{state.endpoint.id}: HTTP {status}"
                continue
            self.m_proxied.inc(shard_id=state.endpoint.id, route=route)
            return status, headers, data
        raise HttpError(502, f"no shard could serve the request "
                             f"({last_error})", {"Retry-After": "1"})

    @staticmethod
    def _passthrough_headers(headers: Dict[str, str]) -> Dict[str, str]:
        out = {}
        if "retry-after" in headers:
            out["Retry-After"] = headers["retry-after"]
        return out

    # -- endpoints ------------------------------------------------------

    async def _h_health(self, req, writer, keep) -> Tuple[int, bool]:
        code = 503 if self._draining else 200
        body = {
            "status": "draining" if self._draining else "ok",
            "uptime_s": round(time.monotonic() - self._started, 3),
            "ring_shards": len(self._live_ring),
            "shards": {
                sid: {"host": st.endpoint.host, "port": st.endpoint.port,
                      "up": st.up}
                for sid, st in sorted(self._states.items())},
        }
        writer.write(json_response(code, body, keep_alive=keep))
        return code, keep

    async def _h_ready(self, req, writer, keep) -> Tuple[int, bool]:
        live = self.live_shards()
        ready = bool(live) and not self._draining
        code = 200 if ready else 503
        body = {"status": "ready" if ready else
                ("draining" if self._draining else "no live shards"),
                "live_shards": live}
        writer.write(json_response(
            code, body, keep_alive=keep,
            headers=None if ready else {"Retry-After": "1"}))
        return code, keep

    async def _h_metrics(self, req, writer, keep) -> Tuple[int, bool]:
        texts = [self.registry.render()]

        async def fetch(state: ShardState) -> Optional[str]:
            try:
                status, _headers, data = await state.pool.request(
                    "GET", "/metrics",
                    timeout_s=self.config.probe_timeout_s * 2)
            except _CONN_ERRORS:
                return None
            if status != 200:
                return None
            return data.decode("utf-8", "replace")

        fetched = await asyncio.gather(
            *(fetch(st) for _sid, st in sorted(self._states.items())
              if st.up))
        texts.extend(t for t in fetched if t)
        body = merge_metrics_texts(texts).encode("utf-8")
        writer.write(response(200, body, content_type=METRICS_TYPE,
                              keep_alive=keep))
        return 200, keep

    async def _h_run(self, req, writer, keep) -> Tuple[int, bool]:
        # validate at the edge: bad requests get a 400 with the usual
        # did-you-mean without touching any shard
        point, _deadline = api.run_from_request(req.json(), None)
        status, headers, data = await self._call_with_failover(
            "POST", "/v1/run", req.body, point.spec.key, route="run")
        writer.write(response(
            status, data,
            content_type=headers.get("content-type", "application/json"),
            headers=self._passthrough_headers(headers),
            keep_alive=keep))
        return status, keep

    async def _h_result(self, req, writer, keep) -> Tuple[int, bool]:
        key = req.path.rsplit("/", 1)[-1].lower()
        if not (len(key) == 64
                and all(c in "0123456789abcdef" for c in key)):
            raise HttpError(400, "result key must be a 64-char spec "
                            "hash (see the 'key' field of run/sweep "
                            "responses)")
        # owner first, then every other live shard: a key cached on the
        # "wrong" shard (stale ring at write time) is still found
        inflight: Optional[Tuple[int, Dict[str, str], bytes]] = None
        for state in self._preference(key):
            try:
                status, headers, data = await state.pool.request(
                    "GET", req.path,
                    headers={FORWARDED_HEADER: "repro-router"})
            except _CONN_ERRORS:
                self._note_conn_failure(state)
                continue
            if status == 200:
                self.m_proxied.inc(shard_id=state.endpoint.id,
                                   route="result")
                writer.write(response(
                    status, data,
                    content_type=headers.get("content-type",
                                             "application/json"),
                    keep_alive=keep))
                return status, keep
            if status == 202 and inflight is None:
                inflight = (status, headers, data)
        if inflight is not None:
            status, headers, data = inflight
            writer.write(response(
                status, data,
                content_type=headers.get("content-type",
                                         "application/json"),
                headers=self._passthrough_headers(headers),
                keep_alive=keep))
            return status, keep
        raise HttpError(404, f"no cached result for {key} on any shard")

    # -- the sweep planner ----------------------------------------------

    async def _h_sweep(self, req, writer, keep) -> Tuple[int, bool]:
        data = req.json()
        fid, points, deadline_s = api.sweep_from_request(data, None)
        want_records = bool(data.get("full_records", False))
        try:
            plan = plan_sweep(points, self._live_ring)
        except EmptyRingError:
            raise HttpError(503, "no live shards",
                            {"Retry-After": "5"}) from None
        if plan.duplicates:
            self.m_dedup.inc(plan.duplicates)

        # headers committed: close-delimited NDJSON from here on
        writer.write(stream_head())
        t0 = time.monotonic()
        writer.write(ndjson_line({
            "event": "start", "figure": fid, "count": len(points)}))
        writer.write(ndjson_line({
            "event": "plan", "unique": plan.unique,
            "duplicates": plan.duplicates,
            "shards": {sid: len(ix)
                       for sid, ix in sorted(plan.batches.items())}}))
        await writer.drain()

        # primary index -> shard event; every global index of a key is
        # emitted from its primary's event (duplicates share records,
        # exactly like the single gateway's shared in-flight task)
        results: Dict[int, dict] = {}
        globals_of: Dict[int, List[int]] = {}
        for i, p in enumerate(plan.primary):
            globals_of.setdefault(p, []).append(i)

        tallies = {"executed": 0, "cached": 0, "failed": 0,
                   "deadline": 0, "unresolved": 0}

        def emit(global_i: int, event: dict) -> None:
            point = points[global_i]
            etype = event.get("event")
            if etype == "spec":
                out = {"event": "spec", "index": global_i,
                       "label": point.label, "x": point.x,
                       "key": point.spec.key, "ok": event.get("ok"),
                       "cached": event.get("cached"),
                       "error_type": event.get("error_type"),
                       "metrics": event.get("metrics", {})}
                if want_records and "record" in event:
                    out["record"] = event["record"]
                if event.get("cached"):
                    tallies["cached"] += 1
                else:
                    tallies["executed"] += 1
                if not event.get("ok"):
                    tallies["failed"] += 1
            elif etype == "deadline":
                out = {"event": "deadline", "index": global_i,
                       "label": point.label, "x": point.x,
                       "key": point.spec.key}
                tallies["deadline"] += 1
            else:
                out = {"event": "error", "index": global_i,
                       "label": point.label, "x": point.x,
                       "key": point.spec.key,
                       "error": event.get("error", "unavailable")}
                tallies["unresolved"] += 1
            writer.write(ndjson_line(out))

        merge = OrderedMerge(len(points), emit)

        async def resolve(primary_i: int, event: dict) -> None:
            results[primary_i] = event
            flushed = 0
            for gi in globals_of[primary_i]:
                flushed += merge.put(gi, event)
            if flushed:
                await writer.drain()

        # run batches, replanning unresolved keys over the (possibly
        # shrunken) live ring after shard failures
        pending: List[int] = sorted(
            i for batch in plan.batches.values() for i in batch)
        for round_no in range(self.config.sweep_replans + 1):
            if not pending:
                break
            if round_no:
                self.m_retries.inc(reason="sweep-replan",
                                   amount=len(pending))
                await asyncio.sleep(self.config.backoff_s * round_no)
            assignment: Dict[str, List[int]] = {}
            try:
                for i in pending:
                    owner = self._live_ring.owner(points[i].spec.key)
                    assignment.setdefault(owner, []).append(i)
            except EmptyRingError:
                break
            unresolved = await asyncio.gather(
                *(self._consume_sweep_batch(sid, indices, points,
                                            deadline_s, resolve)
                  for sid, indices in sorted(assignment.items())))
            pending = sorted(i for batch in unresolved for i in batch)

        for primary_i in pending:
            await resolve(primary_i, {"event": "error",
                                      "error": "no shard available"})

        ok = (tallies["failed"] == 0 and tallies["deadline"] == 0
              and tallies["unresolved"] == 0)
        if fid is not None and ok:
            from repro.experiments.figures import figure_table

            records = [RunRecord.from_jsonable(
                results[plan.primary[i]]["record"])
                for i in range(len(points))]
            table = figure_table(fid, points, records)
            writer.write(ndjson_line({
                "event": "table", "figure": fid,
                "text": table.render()}))
        writer.write(ndjson_line({
            "event": "done", "ok": ok, "count": len(points),
            "executed": tallies["executed"], "cached": tallies["cached"],
            "failed": tallies["failed"],
            "deadline_exceeded": tallies["deadline"],
            "unresolved": tallies["unresolved"],
            "elapsed_s": round(time.monotonic() - t0, 6)}))
        return 200, False

    async def _consume_sweep_batch(self, shard_id: str,
                                   indices: List[int], points,
                                   deadline_s: Optional[float],
                                   resolve) -> List[int]:
        """Stream one per-shard batch; returns unresolved primary
        indices (connection failure / non-200) for replanning."""
        state = self._states[shard_id]
        specs = []
        for i in indices:
            body = points[i].spec.to_jsonable()
            body["label"] = points[i].label
            specs.append(body)
        payload: Dict[str, object] = {"specs": specs,
                                      "full_records": True}
        if deadline_s is not None:
            payload["deadline_s"] = deadline_s
        raw = json.dumps(payload).encode("utf-8")

        try:
            status, headers, reader, swriter = await open_stream(
                state.endpoint.host, state.endpoint.port,
                "POST", "/v1/sweep", raw,
                headers={FORWARDED_HEADER: "repro-router"},
                connect_timeout_s=self.config.connect_timeout_s)
        except _CONN_ERRORS:
            self._note_conn_failure(state)
            self.m_retries.inc(reason="conn")
            return list(indices)

        remaining: Dict[int, int] = dict(enumerate(indices))
        try:
            if status != 200:
                # 429 queue-full / 503 draining: the whole batch goes
                # back to the planner for the next round
                try:
                    await asyncio.wait_for(
                        read_content(reader, headers),
                        self.config.probe_timeout_s)
                except _CONN_ERRORS:
                    pass
                self.m_retries.inc(reason=f"sweep-{status}")
                return list(indices)
            self.m_proxied.inc(shard_id=shard_id, route="sweep")
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    event = json.loads(line)
                except ValueError:
                    continue
                if event.get("event") in ("spec", "deadline"):
                    primary = remaining.pop(event.get("index"), None)
                    if primary is not None:
                        await resolve(primary, event)
        except _CONN_ERRORS:
            self._note_conn_failure(state)
        finally:
            await close_writer(swriter)
        return sorted(remaining.values())


# ----------------------------------------------------------------------
# /metrics aggregation
# ----------------------------------------------------------------------

def merge_metrics_texts(texts: List[str]) -> str:
    """Merge Prometheus expositions into one (HELP/TYPE stated once).

    Series from different shards stay distinguishable because shard
    registries stamp a ``shard_id`` label on every sample.
    """
    order: List[str] = []
    merged: Dict[str, Dict[str, object]] = {}

    def entry(name: str) -> Dict[str, object]:
        if name not in merged:
            merged[name] = {"help": None, "type": None, "samples": []}
            order.append(name)
        return merged[name]

    for text in texts:
        current: Optional[str] = None
        for line in text.splitlines():
            if not line:
                continue
            if line.startswith("# HELP "):
                name = line.split(None, 3)[2]
                ent = entry(name)
                if ent["help"] is None:
                    ent["help"] = line
                current = name
            elif line.startswith("# TYPE "):
                name = line.split(None, 3)[2]
                ent = entry(name)
                if ent["type"] is None:
                    ent["type"] = line
                current = name
            elif line.startswith("#"):
                continue
            elif current is not None:
                merged[current]["samples"].append(line)
    lines: List[str] = []
    for name in order:
        ent = merged[name]
        if ent["help"]:
            lines.append(ent["help"])
        if ent["type"]:
            lines.append(ent["type"])
        lines.extend(ent["samples"])
    return "\n".join(lines) + "\n"
