"""Asyncio HTTP/1.1 client plumbing for router -> shard calls.

The router talks to shards over the same minimal HTTP the gateway
speaks (:mod:`repro.service.httpio`): Content-Length framed JSON for
``/v1/run`` / ``/v1/result`` / probes, and close-delimited NDJSON
streams for ``/v1/sweep``.  Two entry points:

* :class:`HttpPool` -- keep-alive connection pool for one shard
  endpoint; a request grabs an idle connection (retrying once on a
  stale one the shard closed), and returns it to the pool when the
  response allows keep-alive.
* :func:`open_stream` -- a fresh connection for one streaming sweep;
  the caller reads NDJSON lines off the returned reader until EOF.

Connection errors surface as ``ConnectionError``/``OSError`` (plus
``asyncio.TimeoutError`` under a timeout) so the router's failover
path can catch one exception family.
"""

from __future__ import annotations

import asyncio
from typing import Dict, Optional, Tuple

#: stream buffer limit: one NDJSON line can carry a full RunRecord
#: (network matrices included), so allow tens of MB
STREAM_LIMIT = 32 << 20


def request_bytes(method: str, path: str, host: str, port: int,
                  body: Optional[bytes] = None,
                  headers: Optional[Dict[str, str]] = None) -> bytes:
    """Serialize one HTTP/1.1 request."""
    head = [f"{method} {path} HTTP/1.1",
            f"Host: {host}:{port}",
            "Accept: */*"]
    for name, value in (headers or {}).items():
        head.append(f"{name}: {value}")
    if body is not None:
        head.append("Content-Type: application/json")
        head.append(f"Content-Length: {len(body)}")
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") \
        + (body or b"")


async def read_head(reader: asyncio.StreamReader
                    ) -> Tuple[int, Dict[str, str]]:
    """Parse a status line + headers; raises ConnectionError on EOF."""
    status_line = await reader.readline()
    if not status_line:
        raise ConnectionError("peer closed the connection")
    parts = status_line.decode("latin-1").split(None, 2)
    if len(parts) < 2 or not parts[1].isdigit():
        raise ConnectionError(f"bad status line {status_line!r}")
    headers: Dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, sep, value = raw.decode("latin-1").partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    return int(parts[1]), headers


async def read_content(reader: asyncio.StreamReader,
                       headers: Dict[str, str]) -> bytes:
    """The response body: length-framed, or read-to-EOF."""
    if "content-length" in headers:
        return await reader.readexactly(int(headers["content-length"]))
    return await reader.read(-1)


async def open_connection(host: str, port: int,
                          connect_timeout_s: float = 5.0):
    return await asyncio.wait_for(
        asyncio.open_connection(host, port, limit=STREAM_LIMIT),
        connect_timeout_s)


async def open_stream(host: str, port: int, method: str, path: str,
                      body: Optional[bytes] = None,
                      headers: Optional[Dict[str, str]] = None,
                      connect_timeout_s: float = 5.0,
                      head_timeout_s: float = 30.0):
    """One streaming request on a fresh connection.

    Returns ``(status, headers, reader, writer)``; the caller consumes
    the close-delimited body from ``reader`` and closes ``writer``.
    """
    reader, writer = await open_connection(host, port, connect_timeout_s)
    try:
        writer.write(request_bytes(method, path, host, port, body,
                                   headers))
        await writer.drain()
        status, resp_headers = await asyncio.wait_for(
            read_head(reader), head_timeout_s)
    except BaseException:
        writer.close()
        raise
    return status, resp_headers, reader, writer


async def close_writer(writer: Optional[asyncio.StreamWriter]) -> None:
    if writer is None:
        return
    try:
        writer.close()
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass


class HttpPool:
    """Keep-alive connections to one (host, port), reused in LIFO order."""

    def __init__(self, host: str, port: int,
                 connect_timeout_s: float = 5.0,
                 max_idle: int = 32) -> None:
        self.host = host
        self.port = port
        self.connect_timeout_s = connect_timeout_s
        self.max_idle = max_idle
        self._idle: list = []

    async def request(self, method: str, path: str,
                      body: Optional[bytes] = None,
                      headers: Optional[Dict[str, str]] = None,
                      timeout_s: Optional[float] = None
                      ) -> Tuple[int, Dict[str, str], bytes]:
        """One request; returns (status, headers, body bytes).

        An idle pooled connection may have been closed by the peer
        since its last use; that first failure is retried once on a
        fresh connection before errors propagate.
        """
        attempts = 2 if self._idle else 1
        for attempt in range(attempts):
            # the retry (attempt 1) always dials fresh, even if more
            # possibly-stale idle connections remain pooled
            reused = bool(self._idle) and attempt == 0
            if reused:
                reader, writer = self._idle.pop()
            else:
                reader, writer = await open_connection(
                    self.host, self.port, self.connect_timeout_s)
            try:
                writer.write(request_bytes(method, path, self.host,
                                           self.port, body, headers))
                await writer.drain()
                if timeout_s is None:
                    status, resp_headers = await read_head(reader)
                    data = await read_content(reader, resp_headers)
                else:
                    status, resp_headers = await asyncio.wait_for(
                        read_head(reader), timeout_s)
                    data = await asyncio.wait_for(
                        read_content(reader, resp_headers), timeout_s)
            except (ConnectionError, OSError, asyncio.TimeoutError,
                    asyncio.IncompleteReadError):
                await close_writer(writer)
                if reused and attempt + 1 < attempts:
                    continue          # stale pooled connection: retry
                raise
            if (resp_headers.get("connection", "").lower() == "close"
                    or "content-length" not in resp_headers):
                await close_writer(writer)
            elif len(self._idle) < self.max_idle:
                self._idle.append((reader, writer))
            else:
                await close_writer(writer)
            return status, resp_headers, data
        raise ConnectionError("unreachable")     # pragma: no cover

    async def close(self) -> None:
        while self._idle:
            _reader, writer = self._idle.pop()
            await close_writer(writer)
