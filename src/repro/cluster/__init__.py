"""repro.cluster: sharded simulation-serving (see docs/cluster.md).

A consistent-hash ring partitions the content-addressed result-cache
key space across N gateway replicas; one router process fronts them,
planning sweeps into per-shard batches and merging the streams back in
deterministic spec order.  Stdlib-only, like :mod:`repro.service`.
"""

from repro.cluster.planner import OrderedMerge, SweepPlan, plan_sweep
from repro.cluster.ring import DEFAULT_VNODES, EmptyRingError, HashRing
from repro.cluster.router import (
    Router, RouterConfig, ShardEndpoint, merge_metrics_texts,
)

__all__ = [
    "DEFAULT_VNODES", "EmptyRingError", "HashRing",
    "OrderedMerge", "SweepPlan", "plan_sweep",
    "Router", "RouterConfig", "ShardEndpoint", "merge_metrics_texts",
]
