"""The ``cluster`` subcommand: N shard subprocesses + one router.

``python -m repro.experiments cluster --shards 3`` spawns three
shard-aware gateways (``repro.experiments serve --shard-id shard-i
--shard-peers shard-0,shard-1,shard-2``) on free ports, reads their
boot lines, and runs the router in-process in front of them.  One boot
line goes to stdout with the router port and every shard's
``{id, host, port, pid}`` (the pids let chaos tests kill a replica
mid-load).

SIGTERM/SIGINT drain the router first -- in-flight proxied requests
need the shards alive -- then SIGTERM the shards and wait.  A shard
that already died (crashed, or killed by a chaos test) is an
operational event the router handled via mark-down, not a supervisor
failure: the exit code reflects the router's drain alone.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import queue
import signal
import subprocess
import sys
import threading
from typing import List, Optional, Tuple

from repro.cluster.ring import DEFAULT_VNODES
from repro.cluster.router import Router, RouterConfig, ShardEndpoint

#: seconds to wait for one shard's boot line (workers fork at boot)
BOOT_TIMEOUT_S = 120.0

#: seconds to wait for a shard to exit after SIGTERM
SHUTDOWN_TIMEOUT_S = 40.0


def _shard_env() -> dict:
    """Child env with this repro package importable."""
    env = dict(os.environ)
    src_root = os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src_root + (
        os.pathsep + existing if existing else "")
    return env


def _read_boot_line(proc: subprocess.Popen, timeout_s: float) -> dict:
    """The shard's one-line boot JSON, read with a timeout.

    ``readline`` has no timeout of its own, so a daemon thread does
    the blocking read; an unresponsive child is left to the caller's
    teardown path.
    """
    out: "queue.Queue" = queue.Queue()
    thread = threading.Thread(
        target=lambda: out.put(proc.stdout.readline()), daemon=True)
    thread.start()
    try:
        line = out.get(timeout=timeout_s)
    except queue.Empty:
        raise RuntimeError(
            f"shard did not print a boot line within {timeout_s:.0f}s"
        ) from None
    if not line:
        raise RuntimeError(
            f"shard exited during boot (rc={proc.poll()})")
    try:
        return json.loads(line)
    except ValueError:
        raise RuntimeError(f"bad shard boot line {line!r}") from None


def spawn_shards(args: argparse.Namespace
                 ) -> Tuple[List[subprocess.Popen],
                            List[ShardEndpoint]]:
    """Start every shard; on any failure, tear down what started."""
    ids = [f"shard-{i}" for i in range(args.shards)]
    peers = ",".join(ids)
    procs: List[subprocess.Popen] = []
    endpoints: List[ShardEndpoint] = []
    try:
        for shard_id in ids:
            cmd = [sys.executable, "-m", "repro.experiments", "serve",
                   "--host", "127.0.0.1", "--port", "0",
                   "--jobs", str(args.jobs),
                   "--max-queue", str(args.max_queue),
                   "--deadline", str(args.deadline),
                   "--spec-timeout", str(args.spec_timeout),
                   "--drain-grace", str(args.drain_grace),
                   "--shard-id", shard_id,
                   "--shard-peers", peers,
                   "--ring-vnodes", str(args.vnodes)]
            if args.no_cache:
                cmd.append("--no-cache")
            else:
                cmd += ["--cache-dir",
                        os.path.join(args.cache_dir, shard_id)]
            if args.quiet:
                cmd.append("--quiet")
            proc = subprocess.Popen(
                cmd, stdout=subprocess.PIPE, env=_shard_env(),
                text=True)
            procs.append(proc)
            boot = _read_boot_line(proc, BOOT_TIMEOUT_S)
            endpoints.append(ShardEndpoint(
                shard_id, boot["host"], int(boot["port"])))
    except Exception:
        terminate_shards(procs)
        raise
    return procs, endpoints


def terminate_shards(procs: List[subprocess.Popen]) -> None:
    for proc in procs:
        if proc.poll() is None:
            try:
                proc.terminate()
            except OSError:
                pass
    for proc in procs:
        try:
            proc.wait(timeout=SHUTDOWN_TIMEOUT_S)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-cluster",
        description="Run a sharded simulation-serving cluster: N "
                    "gateway replicas behind a consistent-hash router "
                    "(see docs/cluster.md).")
    p.add_argument("--shards", type=int, default=3, metavar="N",
                   help="gateway replicas to spawn (default 3)")
    p.add_argument("--host", default="127.0.0.1",
                   help="router listen address")
    p.add_argument("--port", type=int, default=0,
                   help="router TCP port (default 0: pick a free port "
                        "and print it)")
    p.add_argument("--jobs", type=int, default=2, metavar="N",
                   help="simulation workers per shard (default 2)")
    p.add_argument("--cache-dir", default=".repro-cache", metavar="DIR",
                   help="cache root; each shard caches under "
                        "DIR/<shard-id> (default .repro-cache)")
    p.add_argument("--no-cache", action="store_true",
                   help="run every shard without a result cache")
    p.add_argument("--max-queue", type=int, default=64, metavar="N",
                   help="per-shard admission bound (default 64)")
    p.add_argument("--deadline", type=float, default=300.0,
                   metavar="SECONDS",
                   help="per-shard default request deadline "
                        "(default 300; 0 disables)")
    p.add_argument("--spec-timeout", type=float, default=0.0,
                   metavar="SECONDS",
                   help="per-simulation timeout inside shard workers "
                        "(default off)")
    p.add_argument("--vnodes", type=int, default=DEFAULT_VNODES,
                   metavar="N",
                   help="virtual ring points per shard "
                        f"(default {DEFAULT_VNODES})")
    p.add_argument("--probe-interval", type=float, default=0.5,
                   metavar="SECONDS",
                   help="shard health-probe period (default 0.5)")
    p.add_argument("--fail-threshold", type=int, default=2, metavar="N",
                   help="consecutive probe failures before mark-down "
                        "(default 2)")
    p.add_argument("--retries", type=int, default=4, metavar="N",
                   help="proxy attempts per request (default 4)")
    p.add_argument("--drain-grace", type=float, default=30.0,
                   metavar="SECONDS",
                   help="drain grace for router and shards "
                        "(default 30)")
    p.add_argument("--quiet", action="store_true",
                   help="suppress log lines on stderr")
    return p


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.shards < 1:
        print("need at least one shard", file=sys.stderr)
        return 2

    try:
        procs, endpoints = spawn_shards(args)
    except (RuntimeError, OSError) as exc:
        print(f"cluster boot failed: {exc}", file=sys.stderr)
        return 1

    config = RouterConfig(
        shards=tuple(endpoints), host=args.host, port=args.port,
        vnodes=args.vnodes, probe_interval_s=args.probe_interval,
        fail_threshold=args.fail_threshold, retries=args.retries,
        drain_grace_s=args.drain_grace, quiet=args.quiet)
    router = Router(config)

    async def run() -> None:
        await router.start()
        boot = {"service": "repro-cluster", "host": args.host,
                "port": router.port,
                "shards": [{"id": ep.id, "host": ep.host,
                            "port": ep.port, "pid": proc.pid}
                           for ep, proc in zip(endpoints, procs)]}
        print(json.dumps(boot), flush=True)
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, router.begin_drain)
            except (NotImplementedError, RuntimeError):
                pass
        await router.wait_stopped()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    finally:
        terminate_shards(procs)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
