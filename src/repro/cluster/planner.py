"""The sweep planner: split a sweep across shards, merge it back.

A ``POST /v1/sweep`` arriving at the router is one logical campaign
over N spec points.  The planner partitions it by cache ownership
(McKenney's partitioning principle: shards never contend on the same
key):

* duplicate keys inside the sweep collapse onto their first occurrence
  (**cross-shard single-flight**: a spec appearing twice is planned --
  and therefore executed -- at most once cluster-wide, on its owner);
* each unique key lands in exactly one per-shard batch, in spec order,
  decided by the consistent-hash ring over *live* shards;
* the per-shard NDJSON streams come back concurrently and out of
  order; :class:`OrderedMerge` re-emits them to the client in global
  spec order, releasing index ``i`` the moment every index ``<= i``
  has resolved -- so the merged stream is deterministic and
  bit-identical in content to a single-gateway sweep of the same
  points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

from repro.cluster.ring import HashRing


@dataclass(frozen=True)
class SweepPlan:
    """How one sweep maps onto the cluster.

    ``batches`` maps shard id -> global point indices (unique keys
    only, in spec order); ``primary[i]`` is the index of the first
    point sharing point ``i``'s key (``primary[i] == i`` for unique
    points); ``duplicates`` counts the collapsed points.
    """

    batches: Dict[str, List[int]]
    primary: List[int]
    unique: int
    duplicates: int

    def shard_of(self, index: int) -> str:
        for shard, indices in self.batches.items():
            if index in indices:
                return shard
        raise KeyError(index)


def plan_sweep(points: Sequence, ring: HashRing) -> SweepPlan:
    """Partition sweep points by key ownership.

    ``points`` is any sequence whose items expose ``.spec.key`` (the
    service's :class:`~repro.service.api.SweepPoint`).  Raises
    :class:`~repro.cluster.ring.EmptyRingError` when no shard is live.
    """
    first_index: Dict[str, int] = {}
    primary: List[int] = []
    batches: Dict[str, List[int]] = {}
    duplicates = 0
    for i, point in enumerate(points):
        key = point.spec.key
        seen = first_index.get(key)
        if seen is not None:
            primary.append(seen)
            duplicates += 1
            continue
        first_index[key] = i
        primary.append(i)
        batches.setdefault(ring.owner(key), []).append(i)
    return SweepPlan(batches=batches, primary=primary,
                     unique=len(first_index), duplicates=duplicates)


@dataclass
class OrderedMerge:
    """Re-emit out-of-order per-index payloads in index order.

    ``put(i, payload)`` buffers until every index below ``i`` has been
    emitted, then flushes the contiguous prefix through ``emit``.
    Exactly one ``put`` per index; the buffer never exceeds the length
    of the longest stalled gap.
    """

    total: int
    emit: Callable[[int, object], None]
    _next: int = 0
    _buffer: Dict[int, object] = field(default_factory=dict)

    @property
    def emitted(self) -> int:
        return self._next

    @property
    def complete(self) -> bool:
        return self._next >= self.total

    def put(self, index: int, payload: object) -> int:
        """Buffer one payload; returns how many entries were flushed."""
        if not (0 <= index < self.total):
            raise IndexError(index)
        if index < self._next or index in self._buffer:
            raise ValueError(f"index {index} already emitted")
        self._buffer[index] = payload
        flushed = 0
        while self._next in self._buffer:
            self.emit(self._next, self._buffer.pop(self._next))
            self._next += 1
            flushed += 1
        return flushed
