"""Reduction operations: parallel and sequential (paper figures 6, 7).

A *max* reduction, as in the paper's example (itself modeled on the
Barnes-Hut code from Splash-2):

* **parallel** -- every processor compares-and-maybe-writes the global
  ``max`` inside a critical section, then a barrier, then everyone uses
  the result, then a barrier;
* **sequential** -- every processor publishes its value to
  ``local_max[pid]``, a barrier, processor 0 computes the global max
  alone, a barrier, then everyone uses the result.

Both take the lock/barrier objects to use; the paper's experiments pass
the *ideal* (zero-traffic) primitives so only reduction traffic shows.

``local_max`` follows the paper's placement discipline ("shared data
are mapped to the processors that use them most frequently"): each slot
lives in its own cache block homed at its writer (``padded=True``, the
default).  ``padded=False`` lays the array out contiguously with
block-level interleaving instead -- the careless layout whose false
sharing the layout-ablation benchmark quantifies.
"""

from __future__ import annotations

from typing import Any, Generator, List

from repro.isa.ops import Compute, Read, Write


class ParallelReduction:
    """Lock-based parallel max reduction (paper figure 6)."""

    name = "pr"

    def __init__(self, machine, lock, barrier, home: int = 0,
                 label: str = "pr") -> None:
        self.machine = machine
        self.lock = lock
        self.barrier = barrier
        self.max_addr = machine.memmap.alloc_word(home, f"{label}.max")

    def reduce(self, node: int, local_value: int) -> Generator:
        """One full reduction episode; returns the global max."""
        token = yield from self.lock.acquire(node)
        current = yield Read(self.max_addr)
        yield Compute(1)                      # the comparison
        if current < local_value:
            yield Write(self.max_addr, local_value)
        yield from self.lock.release(node, token)
        yield from self.barrier.wait(node)
        result = yield Read(self.max_addr)    # code that uses max
        yield from self.barrier.wait(node)
        return result


class SequentialReduction:
    """Master-computes sequential max reduction (paper figure 7)."""

    name = "sr"

    def __init__(self, machine, barrier, home: int = 0,
                 padded: bool = True, label: str = "sr") -> None:
        self.machine = machine
        self.barrier = barrier
        mm = machine.memmap
        cfg = machine.config
        self.P = cfg.num_procs
        self.max_addr = mm.alloc_word(home, f"{label}.max")
        if padded:
            self.slots: List[int] = [
                mm.alloc_word(i, f"{label}.local_max{i}")
                for i in range(self.P)
            ]
        else:
            base = mm.alloc_region(self.P * cfg.word_size_bytes,
                                   f"{label}.local_max")
            self.slots = [base + i * cfg.word_size_bytes
                          for i in range(self.P)]

    def reduce(self, node: int, local_value: int) -> Generator:
        """One full reduction episode; returns the global max."""
        yield Write(self.slots[node], local_value)
        yield from self.barrier.wait(node)
        if node == 0:
            for i in range(self.P):
                v = yield Read(self.slots[i])
                current = yield Read(self.max_addr)
                yield Compute(2)              # compare + loop overhead
                if current < v:
                    yield Write(self.max_addr, v)
        yield from self.barrier.wait(node)
        result = yield Read(self.max_addr)    # code that uses max
        return result


REDUCTION_KINDS = ("sr", "pr")


def make_reduction(kind: str, machine, lock=None, barrier=None, **kw):
    """Factory keyed by the paper's bar labels: sr / pr."""
    k = kind.lower()
    if k in ("pr", "parallel"):
        if lock is None or barrier is None:
            raise ValueError("parallel reduction needs a lock and barrier")
        return ParallelReduction(machine, lock, barrier, **kw)
    if k in ("sr", "sequential"):
        if barrier is None:
            raise ValueError("sequential reduction needs a barrier")
        return SequentialReduction(machine, barrier, **kw)
    raise ValueError(f"unknown reduction kind {kind!r}")
