"""Barriers: sense-reversing centralized, dissemination, and tree.

Pseudo-code sources: paper figures 3, 4 and 5 (the Mellor-Crummey &
Scott algorithms).  "Processor private" variables of the pseudo-code
(local sense, parity) are plain Python per-node state -- they never
touch shared memory.
"""

from __future__ import annotations

import math
from typing import Generator, List

from repro.isa.ops import FetchAdd, Read, SpinUntil, Write


class Barrier:
    """Interface shared by all barrier implementations."""

    #: short name used in experiment labels ("cb", "db", "tb")
    name = ""

    def wait(self, node: int) -> Generator:
        raise NotImplementedError


class CentralBarrier(Barrier):
    """Sense-reversing centralized barrier (paper figure 3).

    Each arrival decrements a shared counter with fetch_and_decrement;
    the last arrival resets the counter and toggles the global sense
    flag on which everyone else spins.  ``count`` and ``sense`` form a
    single barrier record in one cache block (``colocate=True``, the
    default) -- the layout under which every arrival's counter change
    lands in the spinners' cached block, producing the mostly-useless
    update traffic of figure 13 and the WI advantage at large machine
    sizes the paper reports.  ``colocate=False`` pads them into
    separate blocks for the layout ablation.
    """

    name = "cb"

    def __init__(self, machine, home: int = 0, colocate: bool = True,
                 label: str = "cb") -> None:
        mm = machine.memmap
        self.P = machine.config.num_procs
        if colocate:
            fields = mm.alloc_struct(home, ["count", "sense"], label=label)
            self.count = fields["count"]
            self.sense = fields["sense"]
        else:
            self.count = mm.alloc_word(home, f"{label}.count")
            self.sense = mm.alloc_word(home, f"{label}.sense")
        mm.set_initial(self.count, self.P)
        mm.set_initial(self.sense, 1)        # shared sense := true
        # sync words only -- barrier arrival stores are NOT release
        # points (data-carrying programs must fence before wait())
        mm.mark_sync(self.count)
        mm.mark_sync(self.sense)
        self._local_sense = [1] * self.P     # private local_sense := true

    def wait(self, node: int) -> Generator:
        # each processor toggles its own sense
        local_sense = 1 - self._local_sense[node]
        self._local_sense[node] = local_sense
        old = yield FetchAdd(self.count, -1)
        if old == 1:                          # last processor
            yield Write(self.count, self.P)
            # toggle global sense; write ordering through the write
            # buffer makes the count reset visible no later than this
            yield Write(self.sense, local_sense)
        else:
            yield SpinUntil(self.sense, lambda v, s=local_sense: v == s)


class DisseminationBarrier(Barrier):
    """Dissemination barrier (paper figure 4).

    ceil(log2 P) rounds; in round k processor i signals processor
    (i + 2^k) mod P.  Alternating parities plus sense reversal keep
    consecutive episodes from interfering.  Each flag word lives in its
    own cache block homed at the *spinning* processor (``pad=True``,
    the "mapped to the processor that uses it most" discipline);
    ``pad=False`` packs each processor's flags into one block for the
    layout ablation.
    """

    name = "db"

    def __init__(self, machine, pad: bool = True, label: str = "db") -> None:
        mm = machine.memmap
        self.P = machine.config.num_procs
        self.rounds = max(0, math.ceil(math.log2(self.P))) if self.P > 1 \
            else 0
        # flags[i][parity][k]: written by (i - 2^k) mod P, read by i
        self.flags: List[List[List[int]]] = []
        for i in range(self.P):
            if pad:
                per_node = [
                    [mm.alloc_word(i, f"{label}.f{i}.{r}.{k}")
                     for k in range(self.rounds)]
                    for r in range(2)
                ]
            else:
                names = [f"p{r}k{k}" for r in range(2)
                         for k in range(self.rounds)]
                fields = mm.alloc_struct(i, names or ["unused"],
                                         label=f"{label}.flags{i}")
                per_node = [
                    [fields[f"p{r}k{k}"] for k in range(self.rounds)]
                    for r in range(2)
                ]
            self.flags.append(per_node)
            for r in range(2):
                for addr in per_node[r]:
                    mm.mark_sync(addr)
        self._parity = [0] * self.P
        self._sense = [1] * self.P

    def wait(self, node: int) -> Generator:
        parity = self._parity[node]
        sense = self._sense[node]
        for k in range(self.rounds):
            partner = (node + (1 << k)) % self.P
            yield Write(self.flags[partner][parity][k], sense)
            yield SpinUntil(self.flags[node][parity][k],
                            lambda v, s=sense: v == s)
        if parity == 1:
            self._sense[node] = 1 - sense
        self._parity[node] = 1 - parity


class TreeBarrier(Barrier):
    """4-ary arrival-tree barrier with a global wake-up flag
    (paper figure 5).

    As in the original algorithm, processor i's four ``childnotready``
    flags are byte flags packed into a *single word* of a block homed at
    i: the parent spins comparing the whole word against
    ``{false,false,false,false}`` (== 0) and resets it with one store;
    each child clears its own byte with a sub-word store.  The root
    toggles a single global sense flag to release everyone.
    """

    name = "tb"

    def __init__(self, machine, home: int = 0, label: str = "tb") -> None:
        mm = machine.memmap
        self.P = machine.config.num_procs
        #: word address of nodes[i].childnotready
        self.cnr: List[int] = []
        self.havechild: List[List[bool]] = []
        #: value of havechild as a packed byte mask (the reset value)
        self.havechild_word: List[int] = []
        for i in range(self.P):
            addr = mm.alloc_word(i, label=f"{label}.node{i}")
            self.cnr.append(addr)
            kids = [4 * i + j + 1 < self.P for j in range(4)]
            self.havechild.append(kids)
            word = 0
            for j in range(4):
                if kids[j]:
                    word |= 0xFF << (8 * j)
            self.havechild_word.append(word)
            # initially childnotready = havechild
            if word:
                mm.set_initial(addr, word)
            mm.mark_sync(addr)
        self.globalsense = mm.alloc_word(home, f"{label}.globalsense")
        mm.mark_sync(self.globalsense)
        # on every processor, sense is initially true; globalsense false
        self._sense = [1] * self.P
        self.dummy = mm.alloc_word(home, f"{label}.dummy")

    @staticmethod
    def _byte_mask(slot: int) -> int:
        return 0xFF << (8 * slot)

    def wait(self, node: int) -> Generator:
        # repeat until childnotready = {false, false, false, false}
        if self.havechild_word[node]:
            yield SpinUntil(self.cnr[node], lambda v: v == 0)
        # childnotready := havechild (prepare for next barrier)
        yield Write(self.cnr[node], self.havechild_word[node])
        sense = self._sense[node]
        if node != 0:
            parent = (node - 1) // 4
            slot = (node - 1) % 4
            # let parent know I'm ready (byte store into its flags word)
            yield Write(self.cnr[parent], 0, mask=self._byte_mask(slot))
            # wait until my parent signals wake-up
            yield SpinUntil(self.globalsense,
                            lambda v, s=sense: v == s)
        else:
            # root: parentpointer points at the pseudo-data dummy
            yield Write(self.dummy, 0)
            yield Write(self.globalsense, sense)
        self._sense[node] = 1 - sense


BARRIER_KINDS = ("cb", "db", "tb")


def make_barrier(kind: str, machine, **kw) -> Barrier:
    """Factory keyed by the paper's bar labels: cb / db / tb."""
    table = {
        "cb": CentralBarrier,
        "central": CentralBarrier,
        "db": DisseminationBarrier,
        "dissemination": DisseminationBarrier,
        "tb": TreeBarrier,
        "tree": TreeBarrier,
    }
    try:
        cls = table[kind.lower()]
    except KeyError:
        raise ValueError(f"unknown barrier kind {kind!r}") from None
    return cls(machine, **kw)
