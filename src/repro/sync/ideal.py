"""Ideal (zero-traffic) synchronization.

The paper's reduction experiments "simulated locks and barriers that
synchronize without generating any communication traffic" (section 4.3)
to isolate the reductions' own traffic.  These primitives serialize
processors purely inside the simulation kernel: no shared-memory
references, no messages -- only a fixed instruction-cost charge.

The cycle charges approximate the paper's gcc -O2 analysis of lock
manipulation overhead (section 2.3): they are what makes the sum of P
parallel-reduction critical sections longer than the sequential
reduction's master loop.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, List

from repro.isa.ops import CallHook, Compute, Fence

#: default instruction-cost charges (processor cycles)
IDEAL_LOCK_ACQUIRE_CYCLES = 12
IDEAL_LOCK_RELEASE_CYCLES = 8
IDEAL_BARRIER_CYCLES = 10


class IdealLock:
    """A mutual-exclusion lock with no communication traffic."""

    name = "ideal-lock"

    def __init__(self, machine,
                 acquire_cycles: int = IDEAL_LOCK_ACQUIRE_CYCLES,
                 release_cycles: int = IDEAL_LOCK_RELEASE_CYCLES) -> None:
        self.acquire_cycles = acquire_cycles
        self.release_cycles = release_cycles
        self._race = getattr(machine, "race_detector", None)
        self._held = False
        self._queue: Deque = deque()
        #: acquisition order, for fairness assertions in tests
        self.grant_log: List[int] = []

    def _grant(self, node: int) -> None:
        self.grant_log.append(node)
        if self._race is not None:
            # happens-before edge from the last release to this grant
            self._race.ideal_acquire(node, id(self))

    def acquire(self, node: int) -> Generator:
        yield Compute(self.acquire_cycles)

        def hook(proc, resume):
            if not self._held:
                self._held = True
                self._grant(proc.node)
                resume(None)
            else:
                self._queue.append((proc, resume))

        yield CallHook(hook)
        return None

    def release(self, node: int, token: Any = None) -> Generator:
        # release point: the critical section's writes must have
        # performed (this stall is *reduction* traffic, not lock traffic,
        # so it is correctly charged even with an ideal lock)
        yield Fence()
        yield Compute(self.release_cycles)

        def hook(proc, resume):
            if not self._held:
                raise RuntimeError("release of an unheld ideal lock")
            if self._race is not None:
                self._race.ideal_release(proc.node, id(self))
            if self._queue:
                nxt_proc, nxt_resume = self._queue.popleft()
                self._grant(nxt_proc.node)
                proc.sim.schedule(0, nxt_resume, None)
            else:
                self._held = False
            resume(None)

        yield CallHook(hook)


class IdealBarrier:
    """A barrier with no communication traffic."""

    name = "ideal-barrier"

    def __init__(self, machine, participants: int = 0,
                 latency: int = IDEAL_BARRIER_CYCLES) -> None:
        self.participants = participants or machine.config.num_procs
        self.latency = latency
        self._race = getattr(machine, "race_detector", None)
        self._waiting: List = []
        self.episodes = 0

    def wait(self, node: int) -> Generator:
        # barriers imply release semantics: writes before the barrier
        # are visible to every processor after it
        yield Fence()
        yield Compute(self.latency)

        def hook(proc, resume):
            self._waiting.append((proc.node, resume))
            if len(self._waiting) == self.participants:
                self.episodes += 1
                waiters, self._waiting = self._waiting, []
                if self._race is not None:
                    # all-to-all happens-before edges for the episode
                    self._race.ideal_barrier([n for n, _ in waiters])
                for _, w in waiters:
                    proc.sim.schedule(0, w, None)
            elif len(self._waiting) > self.participants:
                raise RuntimeError("too many threads at ideal barrier")

        yield CallHook(hook)
