"""Synchronization library (subsystem S14).

The algorithms of paper section 2, written against the simulator's
operation vocabulary so that their shared-reference streams match the
paper's pseudo-code line for line:

* locks: centralized ticket, MCS list-based queue lock, and the paper's
  update-conscious MCS variant (queue-node flushes);
* barriers: sense-reversing centralized, dissemination, and the 4-ary
  arrival-tree barrier of Mellor-Crummey & Scott;
* reductions: parallel (lock-based) and sequential (master-computes);
* ideal (zero-traffic) lock and barrier used by the reduction
  experiments to isolate reduction traffic (paper section 4.3).
"""

from repro.sync.locks import (
    NIL, SpinLock, TicketLock, MCSLock, UpdateConsciousMCSLock,
    TestAndSetLock, make_lock, LOCK_KINDS, ALL_LOCK_KINDS,
)
from repro.sync.barriers import (
    Barrier, CentralBarrier, DisseminationBarrier, TreeBarrier,
    make_barrier, BARRIER_KINDS,
)
from repro.sync.reductions import (
    ParallelReduction, SequentialReduction, make_reduction,
    REDUCTION_KINDS,
)
from repro.sync.ideal import IdealLock, IdealBarrier

__all__ = [
    "NIL", "SpinLock", "TicketLock", "MCSLock", "UpdateConsciousMCSLock",
    "TestAndSetLock", "make_lock", "LOCK_KINDS", "ALL_LOCK_KINDS",
    "Barrier", "CentralBarrier", "DisseminationBarrier", "TreeBarrier",
    "make_barrier", "BARRIER_KINDS",
    "ParallelReduction", "SequentialReduction", "make_reduction",
    "REDUCTION_KINDS",
    "IdealLock", "IdealBarrier",
]
