"""Spin locks: centralized ticket, MCS, and update-conscious MCS.

All three follow the pseudo-code of the paper's figures 1 and 2 (which
are the algorithms of Mellor-Crummey & Scott).  A lock's methods are
generator functions to be driven with ``yield from`` inside a thread
program::

    token = yield from lock.acquire(node)
    ...critical section...
    yield from lock.release(node, token)

Data placement (paper: "shared data are mapped to the processors that
use them most frequently"): the global lock word(s) live at a designated
home; each processor's MCS queue node lives in its own padded cache
block homed at that processor.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.isa.ops import (
    CompareSwap, Compute, Fence, FetchAdd, FetchStore, Flush, Read,
    SpinUntil, Write,
)

#: null "pointer" (uninitialized shared memory reads as 0, so queue-node
#: pointers are encoded as node+1)
NIL = 0


class SpinLock:
    """Interface shared by all lock implementations."""

    #: short name used in experiment labels ("tk", "MCS", "uc")
    name = ""

    def acquire(self, node: int) -> Generator:
        raise NotImplementedError

    def release(self, node: int, token: Any = None) -> Generator:
        raise NotImplementedError


class TicketLock(SpinLock):
    """The centralized ticket lock (paper figure 1).

    Two global counters: ``next_ticket`` hands out tickets with
    fetch_and_add; ``now_serving`` says whose turn it is.  By default
    both live in the same cache block (a single lock record, as in the
    Mellor-Crummey & Scott code); ``colocate=False`` pads them into
    separate blocks for the layout ablation.
    """

    name = "tk"

    def __init__(self, machine, home: int = 0, colocate: bool = True,
                 label: str = "ticket") -> None:
        mm = machine.memmap
        if colocate:
            fields = mm.alloc_struct(home, ["next_ticket", "now_serving"],
                                     label=label)
            self.next_ticket = fields["next_ticket"]
            self.now_serving = fields["now_serving"]
        else:
            self.next_ticket = mm.alloc_word(home, f"{label}.next_ticket")
            self.now_serving = mm.alloc_word(home, f"{label}.now_serving")
        # checker registry: ticket counters are sync words; a store to
        # now_serving is the lock handoff
        mm.mark_sync(self.next_ticket)
        mm.mark_release(self.now_serving)

    def acquire(self, node: int) -> Generator:
        my_ticket = yield FetchAdd(self.next_ticket, 1)
        yield SpinUntil(self.now_serving,
                        lambda v, t=my_ticket: v == t)
        return my_ticket

    def release(self, node: int, token: Any = None) -> Generator:
        # release point: prior writes must have performed
        yield Fence()
        now = yield Read(self.now_serving)
        yield Write(self.now_serving, now + 1)


class MCSLock(SpinLock):
    """The MCS list-based queuing lock (paper figure 2).

    Waiters chain into a list through per-processor queue nodes; each
    spins on its own ``locked`` flag; the releaser hands the lock to its
    successor directly.  Queue nodes are padded blocks homed at their
    owning processor.
    """

    name = "MCS"
    update_conscious = False

    def __init__(self, machine, home: int = 0, label: str = "mcs") -> None:
        mm = machine.memmap
        P = machine.config.num_procs
        #: flush the predecessor's queue node after linking behind it /
        #: the successor's after handing over (independently selectable
        #: for the flush-policy ablation; the paper's ucMCS sets both)
        self.flush_pred = self.update_conscious
        self.flush_succ = self.update_conscious
        self.tail = mm.alloc_word(home, f"{label}.tail")  # 0 == nil
        self.qnode_next = []
        self.qnode_locked = []
        mm.mark_sync(self.tail)
        for i in range(P):
            fields = mm.alloc_struct(i, ["next", "locked"],
                                     label=f"{label}.qnode{i}")
            self.qnode_next.append(fields["next"])
            self.qnode_locked.append(fields["locked"])
            mm.mark_sync(fields["next"])
            # only the 0-store (handoff to the spinning successor) is a
            # release; the acquirer's own `locked := 1` is not
            mm.mark_release(fields["locked"], predicate=lambda v: v == 0)

    @staticmethod
    def _ptr(node: int) -> int:
        return node + 1

    def acquire(self, node: int) -> Generator:
        my_next = self.qnode_next[node]
        my_locked = self.qnode_locked[node]
        yield Write(my_next, NIL)                     # I->next := nil
        pred_ptr = yield FetchStore(self.tail, self._ptr(node))
        if pred_ptr != NIL:
            pred = pred_ptr - 1
            yield Write(my_locked, 1)                 # I->locked := true
            yield Write(self.qnode_next[pred], self._ptr(node))
            if self.flush_pred:
                # stop receiving updates for the predecessor's queue node
                yield Flush(self.qnode_next[pred])
            yield SpinUntil(my_locked, lambda v: v == 0)
        return None

    def release(self, node: int, token: Any = None) -> Generator:
        my_next = self.qnode_next[node]
        succ_ptr = yield Read(my_next)
        if succ_ptr == NIL:                           # no known successor
            yield Fence()                             # release point
            swapped = yield CompareSwap(self.tail, self._ptr(node), NIL)
            if swapped:
                return
            succ_ptr = yield SpinUntil(my_next, lambda v: v != NIL)
        succ = succ_ptr - 1
        yield Fence()                                 # release point
        yield Write(self.qnode_locked[succ], 0)
        if self.flush_succ:
            # stop receiving updates for the successor's queue node
            yield Flush(self.qnode_locked[succ])


class UpdateConsciousMCSLock(MCSLock):
    """The paper's proposed MCS modification (section 2.1): flush the
    predecessor's and successor's queue nodes after touching them, so a
    pure-update protocol stops sending this processor updates for queue
    nodes it will never look at again."""

    name = "uc"
    update_conscious = True


class TestAndSetLock(SpinLock):
    """Test-and-test-and-set lock with bounded exponential backoff.

    Not one of the paper's three study subjects, but the classic
    baseline its lock discussion (via Mellor-Crummey & Scott) assumes;
    included as a library extension for comparisons.  The lock word is
    polled with ordinary reads (test) and grabbed with fetch_and_store
    (set); losers back off exponentially up to ``max_backoff`` cycles.
    """

    name = "tas"

    def __init__(self, machine, home: int = 0, min_backoff: int = 8,
                 max_backoff: int = 1024, label: str = "tas") -> None:
        self.word = machine.memmap.alloc_word(home, f"{label}.lock")
        # only the 0-store (unlock) is a release; FetchStore(word, 1)
        # retries are not
        machine.memmap.mark_release(self.word,
                                    predicate=lambda v: v == 0)
        self.min_backoff = min_backoff
        self.max_backoff = max_backoff

    def acquire(self, node: int) -> Generator:
        backoff = self.min_backoff
        while True:
            # test: spin on an ordinary read until the lock looks free
            yield SpinUntil(self.word, lambda v: v == 0)
            # set: try to grab it
            old = yield FetchStore(self.word, 1)
            if old == 0:
                return None
            yield Compute(backoff)
            backoff = min(backoff * 2, self.max_backoff)

    def release(self, node: int, token: Any = None) -> Generator:
        yield Fence()                                 # release point
        yield Write(self.word, 0)


LOCK_KINDS = ("tk", "MCS", "uc")

#: all lock implementations, including extensions beyond the paper's set
ALL_LOCK_KINDS = ("tas", "tk", "MCS", "uc")


def make_lock(kind: str, machine, home: int = 0, **kw) -> SpinLock:
    """Factory keyed by the paper's bar labels: tk / MCS / uc."""
    table = {
        "tk": TicketLock,
        "ticket": TicketLock,
        "mcs": MCSLock,
        "uc": UpdateConsciousMCSLock,
        "ucmcs": UpdateConsciousMCSLock,
        "tas": TestAndSetLock,
        "test-and-set": TestAndSetLock,
    }
    try:
        cls = table[kind.lower() if kind != "MCS" else "mcs"]
    except KeyError:
        raise ValueError(f"unknown lock kind {kind!r}") from None
    return cls(machine, home=home, **kw)
