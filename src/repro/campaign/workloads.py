"""The campaign workload registry.

A workload is a named function from a :class:`RunSpec` to
``(RunResult, metrics)``: it builds a machine from ``spec.config``,
runs the program described by ``spec.params``, and returns the raw
simulation result plus the workload's headline metrics (the numbers the
figure tables plot, e.g. ``avg_latency``).

The three synthetic programs of the paper's section 4 are registered
here; other modules add their own with :func:`register_workload` (the
checker suite registers its litmus programs in
``repro.experiments.check``, see ``docs/extending.md``).  Lookup
lazily imports those provider modules so that cache-miss execution in a
freshly spawned worker process still finds every workload.
"""

from __future__ import annotations

import difflib
import importlib
from typing import Callable, Dict, List, Tuple

from repro.runtime import RunResult
from repro.campaign.spec import RunSpec

#: a workload body: spec -> (simulation result, headline metrics)
WorkloadFn = Callable[[RunSpec], Tuple[RunResult, Dict[str, float]]]

_REGISTRY: Dict[str, WorkloadFn] = {}

#: modules that register additional workloads as an import side effect
_PROVIDERS = ("repro.experiments.check", "repro.experiments.modelcheck")


def register_workload(name: str) -> Callable[[WorkloadFn], WorkloadFn]:
    """Decorator: add ``fn`` to the registry under ``name``."""
    def deco(fn: WorkloadFn) -> WorkloadFn:
        _REGISTRY[name] = fn
        return fn
    return deco


def known_workloads() -> List[str]:
    """Every registered workload name (providers imported first)."""
    for module in _PROVIDERS:
        importlib.import_module(module)
    return sorted(_REGISTRY)


def suggest_names(name: str, options) -> str:
    """'; did you mean X, Y?' suffix for an unknown-name error, or ''."""
    close = difflib.get_close_matches(name, list(options), n=3,
                                      cutoff=0.4)
    if not close:
        return ""
    return f"; did you mean {', '.join(close)}?"


def get_workload(name: str) -> WorkloadFn:
    if name not in _REGISTRY:
        for module in _PROVIDERS:
            importlib.import_module(module)
        if name not in _REGISTRY:
            raise KeyError(
                f"unknown workload {name!r}"
                f"{suggest_names(name, _REGISTRY)}; registered: "
                f"{', '.join(sorted(_REGISTRY))}")
    return _REGISTRY[name]


def run_workload(spec: RunSpec) -> Tuple[RunResult, Dict[str, float]]:
    """Execute ``spec`` and return (simulation result, metrics)."""
    return get_workload(spec.workload)(spec)


# ----------------------------------------------------------------------
# the paper's synthetic programs (section 4)
# ----------------------------------------------------------------------

@register_workload("lock")
def _lock_workload(spec: RunSpec):
    from repro.workloads import run_lock_workload

    params = spec.params_dict
    kind = params.pop("kind")
    res = run_lock_workload(spec.config, kind, **params)
    return res.result, {
        "avg_latency": res.avg_latency,
        "total_acquires": res.total_acquires,
        "hold_cycles": res.hold_cycles,
    }


@register_workload("barrier")
def _barrier_workload(spec: RunSpec):
    from repro.workloads import run_barrier_workload

    params = spec.params_dict
    kind = params.pop("kind")
    res = run_barrier_workload(spec.config, kind, **params)
    return res.result, {
        "avg_latency": res.avg_latency,
        "episodes": res.episodes,
    }


@register_workload("reduction")
def _reduction_workload(spec: RunSpec):
    from repro.workloads import run_reduction_workload

    params = spec.params_dict
    kind = params.pop("kind")
    res = run_reduction_workload(spec.config, kind, **params)
    return res.result, {
        "avg_latency": res.avg_latency,
        "iterations": res.iterations,
    }


# ----------------------------------------------------------------------
# the applications (handy for app-level sweeps and the checker suite)
# ----------------------------------------------------------------------

@register_workload("histogram")
def _histogram_workload(spec: RunSpec):
    from repro.apps.histogram import run_histogram

    res = run_histogram(spec.config, **spec.params_dict)
    return res.result, {"cycles_per_item": res.cycles_per_item}


@register_workload("workqueue")
def _workqueue_workload(spec: RunSpec):
    from repro.apps.workqueue import run_workqueue

    res = run_workqueue(spec.config, **spec.params_dict)
    return res.result, {"cycles_per_item": res.cycles_per_item,
                        "balance": res.balance}
