"""Campaign execution: cache lookup, fan-out, deterministic collection.

``CampaignRunner.run`` takes a list of specs and returns one
:class:`RunRecord` per spec, **in spec order**, no matter how many
worker processes executed them or in which order they finished --
parallel campaigns are bit-identical to serial ones because the
simulator itself is deterministic and the collection step only fills a
pre-sized slot table.

Duplicate specs (same hash) are executed once and fanned back to every
position.  A spec whose workload raises is captured as a failed record
(traceback text, exception type) instead of aborting the campaign;
failures are never written to the cache.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.campaign.cache import ResultCache
from repro.campaign.result import RunRecord
from repro.campaign.spec import RunSpec

#: progress callback: (spec index, spec, its record)
ProgressFn = Callable[[int, RunSpec, RunRecord], None]


class CampaignError(RuntimeError):
    """One or more specs of a campaign failed.

    ``failures`` holds the failed records (with captured tracebacks).
    """

    def __init__(self, failures: Sequence[RunRecord]) -> None:
        lines = [f"{len(failures)} campaign run(s) failed:"]
        for rec in failures:
            head = (rec.error or "").strip().rsplit("\n", 1)[-1]
            lines.append(f"  {rec.workload} [{rec.key[:12]}]: {head}")
        super().__init__("\n".join(lines))
        self.failures: List[RunRecord] = list(failures)


def execute_spec(spec: RunSpec) -> RunRecord:
    """Run one spec to a record, capturing any failure in-band."""
    from repro.campaign.workloads import run_workload

    t0 = time.perf_counter()
    try:
        sim, metrics = run_workload(spec)
    except Exception as exc:
        return RunRecord(
            key=spec.key, workload=spec.workload, ok=False,
            error=traceback.format_exc(), error_type=type(exc).__name__,
            elapsed_s=time.perf_counter() - t0)
    return RunRecord(
        key=spec.key, workload=spec.workload, ok=True, metrics=metrics,
        sim=sim, elapsed_s=time.perf_counter() - t0)


def _pool_execute(item):
    index, spec = item
    return index, execute_spec(spec)


@dataclass
class CampaignReport:
    """What a campaign did: records in spec order, plus the tallies."""

    records: List[RunRecord] = field(default_factory=list)
    executed: int = 0          # simulations actually run (unique specs)
    cached: int = 0            # spec positions served from the cache
    failed: int = 0            # spec positions whose record is not ok
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.failed == 0

    def failures(self) -> List[RunRecord]:
        seen = set()
        out = []
        for rec in self.records:
            if not rec.ok and rec.key not in seen:
                seen.add(rec.key)
                out.append(rec)
        return out

    def raise_on_failure(self) -> None:
        if not self.ok:
            raise CampaignError(self.failures())


class CampaignRunner:
    """Runs spec lists through the cache and a worker pool.

    ``jobs=1`` executes in-process; ``jobs>1`` fans cache misses out
    over a ``multiprocessing`` pool (fork where available, spawn
    otherwise -- workload lookup re-imports provider modules, so both
    start methods see the full registry).
    """

    def __init__(self, jobs: int = 1,
                 cache: Optional[ResultCache] = None) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.cache = cache

    # ------------------------------------------------------------------

    def run(self, specs: Sequence[RunSpec],
            progress: Optional[ProgressFn] = None) -> CampaignReport:
        t0 = time.perf_counter()
        report = CampaignReport(records=[None] * len(specs))
        keys = [spec.key for spec in specs]

        # cache pass; group the misses by key so duplicates run once
        pending: Dict[str, List[int]] = {}
        for i, (spec, key) in enumerate(zip(specs, keys)):
            hit = self.cache.get(key) if self.cache is not None else None
            if hit is not None:
                report.records[i] = hit
                report.cached += 1
                if progress is not None:
                    progress(i, spec, hit)
            else:
                pending.setdefault(key, []).append(i)

        todo = [(indices[0], specs[indices[0]])
                for indices in pending.values()]

        def land(first_index: int, record: RunRecord) -> None:
            report.executed += 1
            if self.cache is not None:
                self.cache.put(record)
            for i in pending[keys[first_index]]:
                report.records[i] = record
                if progress is not None:
                    progress(i, specs[i], record)

        if self.jobs > 1 and len(todo) > 1:
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context(
                "fork" if "fork" in methods else "spawn")
            workers = min(self.jobs, len(todo))
            with ctx.Pool(processes=workers) as pool:
                for index, record in pool.imap_unordered(
                        _pool_execute, todo):
                    land(index, record)
        else:
            for index, spec in todo:
                land(index, execute_spec(spec))

        report.failed = sum(1 for rec in report.records if not rec.ok)
        report.elapsed_s = time.perf_counter() - t0
        return report
