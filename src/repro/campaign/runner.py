"""Campaign execution: cache lookup, fan-out, deterministic collection.

``CampaignRunner.run`` takes a list of specs and returns one
:class:`RunRecord` per spec, **in spec order**, no matter how many
worker processes executed them or in which order they finished --
parallel campaigns are bit-identical to serial ones because the
simulator itself is deterministic and the collection step only fills a
pre-sized slot table.

Duplicate specs (same hash) are executed once and fanned back to every
position.  A spec whose workload raises is captured as a failed record
(traceback text, exception type) instead of aborting the campaign;
failures are never written to the cache.
"""

from __future__ import annotations

import multiprocessing
import signal
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.campaign.cache import ResultCache
from repro.campaign.result import RunRecord
from repro.campaign.spec import RunSpec

#: progress callback: (spec index, spec, its record)
ProgressFn = Callable[[int, RunSpec, RunRecord], None]

#: cancellation hook: polled between executions; True stops the campaign
CancelFn = Callable[[], bool]


class SpecTimeoutError(RuntimeError):
    """A spec exceeded its per-spec wall-clock timeout."""


def _call_with_timeout(fn: Callable, timeout_s: Optional[float]):
    """Run ``fn()`` under a wall-clock alarm.

    Enforcement uses ``SIGALRM``, which only works on the main thread
    of a process (true both for in-process ``jobs=1`` execution and
    for pool / executor worker processes); where unavailable the call
    runs unguarded rather than failing.
    """
    if (not timeout_s or timeout_s <= 0
            or not hasattr(signal, "SIGALRM")
            or threading.current_thread() is not threading.main_thread()):
        return fn()

    def _on_alarm(signum, frame):
        raise SpecTimeoutError(
            f"exceeded per-spec wall-clock timeout of {timeout_s:g}s")

    old_handler = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        return fn()
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, old_handler)


class CampaignError(RuntimeError):
    """One or more specs of a campaign failed.

    ``failures`` holds the failed records (with captured tracebacks).
    """

    def __init__(self, failures: Sequence[RunRecord]) -> None:
        lines = [f"{len(failures)} campaign run(s) failed:"]
        for rec in failures:
            head = (rec.error or "").strip().rsplit("\n", 1)[-1]
            lines.append(f"  {rec.workload} [{rec.key[:12]}]: {head}")
        super().__init__("\n".join(lines))
        self.failures: List[RunRecord] = list(failures)


def execute_spec(spec: RunSpec,
                 timeout_s: Optional[float] = None) -> RunRecord:
    """Run one spec to a record, capturing any failure in-band.

    ``timeout_s`` bounds the wall-clock time of the simulation; a spec
    that exceeds it is captured as a failed record with
    ``error_type == "SpecTimeoutError"`` instead of hanging the caller.
    """
    from repro.campaign.workloads import run_workload

    t0 = time.perf_counter()
    try:
        sim, metrics = _call_with_timeout(
            lambda: run_workload(spec), timeout_s)
    except Exception as exc:
        return RunRecord(
            key=spec.key, workload=spec.workload, ok=False,
            error=traceback.format_exc(), error_type=type(exc).__name__,
            elapsed_s=time.perf_counter() - t0)
    return RunRecord(
        key=spec.key, workload=spec.workload, ok=True, metrics=metrics,
        sim=sim, elapsed_s=time.perf_counter() - t0)


def cancelled_record(spec: RunSpec) -> RunRecord:
    """The failed record a cancelled (never-executed) spec lands as."""
    return RunRecord(
        key=spec.key, workload=spec.workload, ok=False,
        error="cancelled before execution", error_type="Cancelled")


def _pool_execute(item):
    index, spec, timeout_s = item
    return index, execute_spec(spec, timeout_s)


def _warm_worker() -> None:
    """Worker-pool initializer: pay the workload-provider import cost
    once per worker process instead of once per executed spec (matters
    under the ``spawn`` start method, where workers begin with a bare
    interpreter)."""
    import repro.campaign.workloads  # noqa: F401


@dataclass
class CampaignReport:
    """What a campaign did: records in spec order, plus the tallies."""

    records: List[RunRecord] = field(default_factory=list)
    executed: int = 0          # simulations actually run (unique specs)
    cached: int = 0            # spec positions served from the cache
    failed: int = 0            # spec positions whose record is not ok
    cancelled: int = 0         # spec positions skipped by cancellation
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.failed == 0

    def failures(self) -> List[RunRecord]:
        seen = set()
        out = []
        for rec in self.records:
            if not rec.ok and rec.key not in seen:
                seen.add(rec.key)
                out.append(rec)
        return out

    def raise_on_failure(self) -> None:
        if not self.ok:
            raise CampaignError(self.failures())


class CampaignRunner:
    """Runs spec lists through the cache and a worker pool.

    ``jobs=1`` executes in-process; ``jobs>1`` fans cache misses out
    over a ``multiprocessing`` pool (fork where available, spawn
    otherwise -- workload lookup re-imports provider modules, so both
    start methods see the full registry).

    ``spec_timeout_s`` bounds each spec's wall-clock time: an
    overrunning spec becomes a failed record (``SpecTimeoutError``)
    instead of hanging the whole sweep.  ``run(..., cancel=fn)`` polls
    ``fn()`` between executions; once it returns True the remaining
    unexecuted specs land as ``Cancelled`` records (never cached).

    The worker pool is *warm*: it is created on the first parallel
    :meth:`run` (each worker importing the workload providers once, via
    the pool initializer) and then reused by every later ``run`` call,
    so a multi-figure sweep pays the fork/spawn + import cost once
    rather than once per figure.  A cancelled campaign terminates the
    pool (abandoning still-running workers); the next ``run`` warms a
    fresh one.  Call :meth:`close` (or use the runner as a context
    manager) to release the workers explicitly.
    """

    def __init__(self, jobs: int = 1,
                 cache: Optional[ResultCache] = None,
                 spec_timeout_s: Optional[float] = None) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if spec_timeout_s is not None and spec_timeout_s <= 0:
            raise ValueError("spec_timeout_s must be positive")
        self.jobs = jobs
        self.cache = cache
        self.spec_timeout_s = spec_timeout_s
        self._pool = None

    # ------------------------------------------------------------------
    # warm worker pool lifecycle
    # ------------------------------------------------------------------

    def _get_pool(self):
        """The persistent worker pool, creating it on first use."""
        if self._pool is None:
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context(
                "fork" if "fork" in methods else "spawn")
            self._pool = ctx.Pool(processes=self.jobs,
                                  initializer=_warm_worker)
        return self._pool

    def close(self) -> None:
        """Shut down the warm worker pool (idempotent).  Still-running
        workers are terminated, not awaited."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.terminate()
            pool.join()

    def __enter__(self) -> "CampaignRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort cleanup
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------

    def run(self, specs: Sequence[RunSpec],
            progress: Optional[ProgressFn] = None,
            cancel: Optional[CancelFn] = None) -> CampaignReport:
        t0 = time.perf_counter()
        report = CampaignReport(records=[None] * len(specs))
        keys = [spec.key for spec in specs]

        # cache pass; group the misses by key so duplicates run once
        pending: Dict[str, List[int]] = {}
        for i, (spec, key) in enumerate(zip(specs, keys)):
            hit = self.cache.get(key) if self.cache is not None else None
            if hit is not None:
                report.records[i] = hit
                report.cached += 1
                if progress is not None:
                    progress(i, spec, hit)
            else:
                pending.setdefault(key, []).append(i)

        todo = [(indices[0], specs[indices[0]], self.spec_timeout_s)
                for indices in pending.values()]

        def land(first_index: int, record: RunRecord) -> None:
            report.executed += 1
            if self.cache is not None:
                self.cache.put(record)
            for i in pending[keys[first_index]]:
                report.records[i] = record
                if progress is not None:
                    progress(i, specs[i], record)

        if self.jobs > 1 and len(todo) > 1:
            pool = self._get_pool()
            # chunked dispatch: amortize one IPC round-trip over
            # several specs while keeping enough chunks in flight to
            # load every worker
            chunk = max(1, len(todo) // (self.jobs * 4))
            aborted = False
            try:
                for index, record in pool.imap_unordered(
                        _pool_execute, todo, chunksize=chunk):
                    land(index, record)
                    if cancel is not None and cancel():
                        aborted = True
                        break
            except BaseException:
                self.close()
                raise
            if aborted:
                # terminate rather than drain: a cancelled campaign
                # abandons still-running workers, and the next run()
                # warms a fresh pool
                self.close()
        else:
            for index, spec, timeout_s in todo:
                if cancel is not None and cancel():
                    break
                land(index, execute_spec(spec, timeout_s))

        # positions never executed (cancellation) land as failed
        # Cancelled records so the report stays fully populated
        for i, rec in enumerate(report.records):
            if rec is None:
                record = cancelled_record(specs[i])
                report.records[i] = record
                report.cancelled += 1
                if progress is not None:
                    progress(i, specs[i], record)

        report.failed = sum(1 for rec in report.records if not rec.ok)
        report.elapsed_s = time.perf_counter() - t0
        return report
