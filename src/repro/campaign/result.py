"""Serializable run results.

The runtime's :class:`~repro.runtime.RunResult` (and the
:class:`~repro.network.NetworkStats` inside it) round-trips through
plain JSON here: enum-keyed and tuple-keyed dicts become sorted lists,
so the canonical text is deterministic and the reconstructed dataclass
compares equal to the original.

:class:`RunRecord` is the campaign-level envelope stored in the result
cache: the spec key, the workload's headline metrics, the full
simulation result, and -- for failed runs -- the captured error instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from repro.network import NetworkStats, MsgType
from repro.runtime import RunResult


def network_stats_to_jsonable(stats: NetworkStats) -> Dict[str, Any]:
    return {
        "messages": stats.messages,
        "bytes": stats.bytes,
        "local_messages": stats.local_messages,
        "by_type": {t.value: n for t, n in sorted(
            stats.by_type.items(), key=lambda kv: kv[0].value)},
        "bytes_by_type": {t.value: n for t, n in sorted(
            stats.bytes_by_type.items(), key=lambda kv: kv[0].value)},
        "by_pair": [[src, dst, n] for (src, dst), n in
                    sorted(stats.by_pair.items())],
        "sent_by_node": {str(k): v for k, v in
                         sorted(stats.sent_by_node.items())},
        "recv_by_node": {str(k): v for k, v in
                         sorted(stats.recv_by_node.items())},
        "contention_cycles": stats.contention_cycles,
    }


def network_stats_from_jsonable(data: Mapping[str, Any]) -> NetworkStats:
    return NetworkStats(
        messages=data["messages"],
        bytes=data["bytes"],
        local_messages=data["local_messages"],
        by_type={MsgType(t): n for t, n in data["by_type"].items()},
        bytes_by_type={MsgType(t): n
                       for t, n in data["bytes_by_type"].items()},
        by_pair={(src, dst): n for src, dst, n in data["by_pair"]},
        sent_by_node={int(k): v for k, v in data["sent_by_node"].items()},
        recv_by_node={int(k): v for k, v in data["recv_by_node"].items()},
        contention_cycles=data["contention_cycles"],
    )


def run_result_to_jsonable(result: RunResult) -> Dict[str, Any]:
    return {
        "total_cycles": result.total_cycles,
        "events": result.events,
        "misses": dict(result.misses),
        "updates": dict(result.updates),
        "shared_refs": result.shared_refs,
        "network": network_stats_to_jsonable(result.network),
        "proc_done_times": list(result.proc_done_times),
        "proc_instructions": list(result.proc_instructions),
        "proc_spin_wakeups": list(result.proc_spin_wakeups),
    }


def run_result_from_jsonable(data: Mapping[str, Any]) -> RunResult:
    return RunResult(
        total_cycles=data["total_cycles"],
        events=data["events"],
        misses=dict(data["misses"]),
        updates=dict(data["updates"]),
        shared_refs=data["shared_refs"],
        network=network_stats_from_jsonable(data["network"]),
        proc_done_times=list(data["proc_done_times"]),
        proc_instructions=list(data["proc_instructions"]),
        proc_spin_wakeups=list(data["proc_spin_wakeups"]),
    )


@dataclass
class RunRecord:
    """Outcome of executing (or recalling) one :class:`RunSpec`.

    ``ok`` records whether the simulation completed; on failure ``sim``
    is None and ``error``/``error_type`` carry the captured traceback
    so one bad point never takes down a campaign.  ``cached`` and
    ``elapsed_s`` describe *this* materialization, not the simulation
    itself, and are excluded from equality.
    """

    key: str
    workload: str
    ok: bool
    metrics: Dict[str, float] = field(default_factory=dict)
    sim: Optional[RunResult] = None
    error: Optional[str] = None
    error_type: Optional[str] = None
    elapsed_s: float = field(default=0.0, compare=False)
    cached: bool = field(default=False, compare=False)

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "workload": self.workload,
            "ok": self.ok,
            "metrics": dict(self.metrics),
            "sim": (None if self.sim is None
                    else run_result_to_jsonable(self.sim)),
            "error": self.error,
            "error_type": self.error_type,
            "elapsed_s": self.elapsed_s,
        }

    @classmethod
    def from_jsonable(cls, data: Mapping[str, Any]) -> "RunRecord":
        return cls(
            key=data["key"],
            workload=data["workload"],
            ok=data["ok"],
            metrics=dict(data["metrics"]),
            sim=(None if data["sim"] is None
                 else run_result_from_jsonable(data["sim"])),
            error=data.get("error"),
            error_type=data.get("error_type"),
            elapsed_s=data.get("elapsed_s", 0.0),
        )
