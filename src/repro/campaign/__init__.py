"""Spec-driven campaign layer (subsystem S18).

Everything the evaluation section runs -- figures, ablations, the
checker suite -- is expressed as a list of :class:`RunSpec` values: a
frozen, canonically-hashable description of one simulation (machine
config + workload id + parameters + code-version salt).  Specs are
executed by a :class:`CampaignRunner`, which consults a
content-addressed on-disk :class:`ResultCache` keyed by the spec hash,
fans cache misses out over ``multiprocessing`` workers, and returns
:class:`RunRecord` values in deterministic spec order with per-spec
failure capture.

Because the simulator itself is deterministic, a parallel campaign is
bit-identical to a serial one, and a warm cache re-run executes zero
simulations.  See ``docs/campaigns.md``.
"""

from repro.campaign.spec import (
    RunSpec, canonical_json, code_version, config_from_jsonable,
    config_to_jsonable,
)
from repro.campaign.result import (
    RunRecord, run_result_from_jsonable, run_result_to_jsonable,
    network_stats_from_jsonable, network_stats_to_jsonable,
)
from repro.campaign.cache import ResultCache
from repro.campaign.runner import (
    CampaignError, CampaignReport, CampaignRunner, SpecTimeoutError,
    execute_spec,
)
from repro.campaign.workloads import (
    known_workloads, register_workload, run_workload,
)

__all__ = [
    "RunSpec", "canonical_json", "code_version",
    "config_to_jsonable", "config_from_jsonable",
    "RunRecord", "run_result_to_jsonable", "run_result_from_jsonable",
    "network_stats_to_jsonable", "network_stats_from_jsonable",
    "ResultCache",
    "CampaignError", "CampaignReport", "CampaignRunner",
    "SpecTimeoutError", "execute_spec",
    "known_workloads", "register_workload", "run_workload",
]
