"""Content-addressed on-disk result cache.

Records live at ``<root>/<key[:2]>/<key>.json`` keyed by the spec hash
(:attr:`RunSpec.key`), which covers the machine config, workload id,
parameters, and the code-version salt -- so a cache never serves stale
results across code changes, and concurrent writers of the same key
write identical bytes.  Writes are atomic (temp file + ``os.replace``)
and unreadable entries degrade to cache misses.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Iterator, Optional, Union

from repro.campaign.result import RunRecord
from repro.campaign.spec import RunSpec


class ResultCache:
    """A directory of ``RunRecord`` JSON files keyed by spec hash."""

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        self.root = os.fspath(root)

    def _key_of(self, spec_or_key: Union[RunSpec, str]) -> str:
        if isinstance(spec_or_key, RunSpec):
            return spec_or_key.key
        return spec_or_key

    def path_for(self, spec_or_key: Union[RunSpec, str]) -> str:
        key = self._key_of(spec_or_key)
        return os.path.join(self.root, key[:2], f"{key}.json")

    # ------------------------------------------------------------------

    def get(self, spec_or_key: Union[RunSpec, str]) -> Optional[RunRecord]:
        """The cached record, or None on miss / unreadable entry."""
        path = self.path_for(spec_or_key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
            record = RunRecord.from_jsonable(data)
        except (OSError, ValueError, KeyError, TypeError):
            return None
        if record.key != self._key_of(spec_or_key):
            return None
        record.cached = True
        return record

    def put(self, record: RunRecord) -> Optional[str]:
        """Store ``record``; returns its path (failures are not cached)."""
        if not record.ok:
            return None
        path = self.path_for(record.key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(record.to_jsonable(), fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    # ------------------------------------------------------------------

    def keys(self) -> Iterator[str]:
        if not os.path.isdir(self.root):
            return
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".json"):
                    yield name[:-len(".json")]

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def __contains__(self, spec_or_key: Union[RunSpec, str]) -> bool:
        return os.path.exists(self.path_for(spec_or_key))
