"""Content-addressed on-disk result cache.

Records live at ``<root>/<key[:2]>/<key>.json`` keyed by the spec hash
(:attr:`RunSpec.key`), which covers the machine config, workload id,
parameters, and the code-version salt -- so a cache never serves stale
results across code changes, and concurrent writers of the same key
write identical bytes.  Writes are atomic (temp file + ``os.replace``)
and unreadable entries degrade to cache misses.

The cache is bounded only by explicit :meth:`ResultCache.prune` calls
(``--cache-max-mb`` on the CLI, ``cache_max_mb`` on the service):
eviction is LRU by file mtime, with hits refreshing the mtime, so a hot
working set survives pruning while one-shot sweeps age out first.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Iterator, Optional, Tuple, Union

from repro.campaign.result import RunRecord
from repro.campaign.spec import RunSpec


class ResultCache:
    """A directory of ``RunRecord`` JSON files keyed by spec hash."""

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        self.root = os.fspath(root)

    def _key_of(self, spec_or_key: Union[RunSpec, str]) -> str:
        if isinstance(spec_or_key, RunSpec):
            return spec_or_key.key
        return spec_or_key

    def path_for(self, spec_or_key: Union[RunSpec, str]) -> str:
        key = self._key_of(spec_or_key)
        return os.path.join(self.root, key[:2], f"{key}.json")

    # ------------------------------------------------------------------

    def get(self, spec_or_key: Union[RunSpec, str]) -> Optional[RunRecord]:
        """The cached record, or None on miss / unreadable entry."""
        path = self.path_for(spec_or_key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
            record = RunRecord.from_jsonable(data)
        except (OSError, ValueError, KeyError, TypeError):
            return None
        if record.key != self._key_of(spec_or_key):
            return None
        try:
            os.utime(path)          # refresh LRU position (see prune)
        except OSError:
            pass
        record.cached = True
        return record

    def put(self, record: RunRecord) -> Optional[str]:
        """Store ``record``; returns its path (failures are not cached)."""
        if not record.ok:
            return None
        path = self.path_for(record.key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(record.to_jsonable(), fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    # ------------------------------------------------------------------

    def _entries(self) -> Iterator[Tuple[str, int, float]]:
        """Every file under the root as ``(path, size, mtime)``.

        Includes corrupt entries and stale ``.tmp`` droppings from
        crashed writers -- pruning must be able to reclaim those too.
        Files that vanish mid-scan are skipped.
        """
        if not os.path.isdir(self.root):
            return
        for shard in os.listdir(self.root):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in os.listdir(shard_dir):
                path = os.path.join(shard_dir, name)
                try:
                    st = os.stat(path)
                except OSError:
                    continue
                yield path, st.st_size, st.st_mtime

    def total_bytes(self) -> int:
        """Bytes currently occupied by cache files (incl. droppings)."""
        return sum(size for _path, size, _m in self._entries())

    def prune(self, max_bytes: int) -> int:
        """Evict least-recently-used entries until <= ``max_bytes``.

        LRU order is file mtime (refreshed on every hit, so recently
        served results survive).  Stale ``*.tmp`` files are always
        removed first; corrupt entries need no special handling -- they
        are ordinary files and age out like any other.  Returns the
        number of files removed.
        """
        removed = 0
        live = []
        total = 0
        for path, size, mtime in self._entries():
            if path.endswith(".tmp"):
                try:
                    os.unlink(path)
                    removed += 1
                except OSError:
                    pass
                continue
            live.append((mtime, path, size))
            total += size
        live.sort()                               # oldest first
        for _mtime, path, size in live:
            if total <= max_bytes:
                break
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= size
            removed += 1
        return removed

    def keys(self) -> Iterator[str]:
        if not os.path.isdir(self.root):
            return
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".json"):
                    yield name[:-len(".json")]

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def __contains__(self, spec_or_key: Union[RunSpec, str]) -> bool:
        return os.path.exists(self.path_for(spec_or_key))
