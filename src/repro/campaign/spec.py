"""Canonically-hashable run specifications.

A :class:`RunSpec` pins down one simulation completely: the
:class:`~repro.config.MachineConfig`, the workload id (a name in the
campaign workload registry), the workload parameters, and a
code-version salt.  Two specs that would produce different results must
hash differently; two specs that describe the same simulation must hash
identically *across processes and interpreter invocations* -- the hash
is the key of the on-disk result cache.

Canonical form is sorted-key JSON with scalar-only parameter values, so
the hash never depends on dict insertion order or ``PYTHONHASHSEED``.
The code-version salt defaults to a digest of every ``repro`` source
file, so any code change invalidates the cache wholesale (set
``REPRO_CODE_VERSION`` to pin it, e.g. for cross-checkout comparisons).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Tuple

from repro.config import MachineConfig, Protocol

#: parameter / config values that survive a JSON round trip unchanged
_SCALAR_TYPES = (str, int, float, bool, type(None))

#: MachineConfig fields holding a Protocol (serialized by enum value)
_PROTOCOL_FIELDS = frozenset({"protocol", "hybrid_default"})

#: mixed into the source digest; bump on changes that the digest alone
#: would miss (behaviour-preserving rewrites whose cached results should
#: still be retired, e.g. the PR-3 hot-path overhaul, the PR-7
#: array-native core, the PR-8 calendar queue + message pool, or the
#: PR-9 spec-synthesized transients + graph-verified protocol fixes)
CODE_VERSION_EPOCH = 5

_code_version_cache: str = ""

_spec_hash_cache: Dict[str, str] = {}


def spec_hash(protocol: Any) -> str:
    """Digest of a protocol's declarative transition tables.

    Folded into every :meth:`RunSpec.to_jsonable` (and hence the cache
    key) so editing a protocol's spec tables retires exactly that
    protocol's cached results while the source digest catches everything
    else.  Accepts a :class:`~repro.config.Protocol` member or its
    string value; returns ``""`` for protocols without a spec.
    """
    key = getattr(protocol, "value", protocol)
    if key not in _spec_hash_cache:
        from repro.protospec import SPEC_BUILDERS, get_spec
        if key in SPEC_BUILDERS:
            text = get_spec(key).dumps()
            _spec_hash_cache[key] = hashlib.sha256(
                text.encode()).hexdigest()[:16]
        else:
            _spec_hash_cache[key] = ""
    return _spec_hash_cache[key]


def canonical_json(obj: Any) -> str:
    """Deterministic JSON text: sorted keys, no whitespace drift."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def code_version(refresh: bool = False) -> str:
    """Digest of the installed ``repro`` sources (the cache salt).

    ``REPRO_CODE_VERSION`` overrides the computed digest.  The scan
    walks every ``*.py`` file under the package directory in sorted
    relative-path order, so it is stable across machines for identical
    sources.
    """
    env = os.environ.get("REPRO_CODE_VERSION")
    if env:
        return env
    global _code_version_cache
    if _code_version_cache and not refresh:
        return _code_version_cache
    import repro

    root = os.path.dirname(os.path.abspath(repro.__file__))
    digest = hashlib.sha256()
    digest.update(f"epoch:{CODE_VERSION_EPOCH}".encode())
    digest.update(b"\0")
    paths = []
    for dirpath, _dirnames, filenames in os.walk(root):
        for name in filenames:
            if name.endswith(".py"):
                paths.append(os.path.join(dirpath, name))
    for path in sorted(paths, key=lambda p: os.path.relpath(p, root)):
        digest.update(os.path.relpath(path, root).encode())
        digest.update(b"\0")
        with open(path, "rb") as fh:
            digest.update(fh.read())
        digest.update(b"\0")
    _code_version_cache = digest.hexdigest()[:16]
    return _code_version_cache


def config_to_jsonable(config: MachineConfig) -> Dict[str, Any]:
    """``MachineConfig`` -> plain JSON-ready dict (enums by value)."""
    out: Dict[str, Any] = {}
    for f in dataclasses.fields(config):
        value = getattr(config, f.name)
        if isinstance(value, Protocol):
            value = value.value
        out[f.name] = value
    return out


def config_from_jsonable(data: Mapping[str, Any]) -> MachineConfig:
    """Inverse of :func:`config_to_jsonable`."""
    kwargs = dict(data)
    for name in _PROTOCOL_FIELDS & kwargs.keys():
        kwargs[name] = Protocol(kwargs[name])
    return MachineConfig(**kwargs)


def _canonical_params(params: Mapping[str, Any]
                      ) -> Tuple[Tuple[str, Any], ...]:
    for key, value in params.items():
        if not isinstance(key, str):
            raise TypeError(f"param name {key!r} is not a string")
        if not isinstance(value, _SCALAR_TYPES):
            raise TypeError(
                f"param {key}={value!r} is not a JSON scalar; specs must "
                "be fully serializable (pass ids/kinds, not objects)")
    return tuple(sorted(params.items()))


@dataclass(frozen=True)
class RunSpec:
    """One simulation, pinned down completely and hashably.

    ``params`` is stored as a sorted tuple of (name, scalar) pairs so
    the spec is hashable and its canonical form is order-independent;
    build specs with :meth:`make` and read parameters back through
    :attr:`params_dict`.
    """

    workload: str
    config: MachineConfig
    params: Tuple[Tuple[str, Any], ...] = ()
    code_version: str = field(default_factory=code_version)

    @classmethod
    def make(cls, workload: str, config: MachineConfig,
             code_version_salt: str = None, **params: Any) -> "RunSpec":
        canon = _canonical_params(params)
        if code_version_salt is None:
            return cls(workload, config, canon)
        return cls(workload, config, canon, code_version_salt)

    def __post_init__(self) -> None:
        object.__setattr__(self, "params",
                           _canonical_params(dict(self.params)))

    # ------------------------------------------------------------------

    @property
    def params_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "workload": self.workload,
            "config": config_to_jsonable(self.config),
            "params": self.params_dict,
            "code_version": self.code_version,
            "spec_hash": spec_hash(self.config.protocol),
        }

    @classmethod
    def from_jsonable(cls, data: Mapping[str, Any]) -> "RunSpec":
        # "spec_hash" is derived from the protocol tables, not stored:
        # round-tripping recomputes it, so a stored spec written against
        # older tables hashes to a different key, as intended.
        return cls(
            workload=data["workload"],
            config=config_from_jsonable(data["config"]),
            params=tuple(sorted(data["params"].items())),
            code_version=data["code_version"],
        )

    @property
    def key(self) -> str:
        """Content hash of the spec (the result-cache key)."""
        text = canonical_json(self.to_jsonable())
        return hashlib.sha256(text.encode()).hexdigest()

    def describe(self) -> str:
        """Short human label: workload, machine point, parameters."""
        parts = [self.workload,
                 f"P={self.config.num_procs}",
                 f"[{self.config.protocol.short}]"]
        parts.extend(f"{k}={v}" for k, v in self.params)
        return " ".join(parts)
