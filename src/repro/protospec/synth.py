"""Transient-state synthesis: a full :class:`ProtocolSpec` from a
stable-state description.

The hand-written tables in :mod:`repro.protospec.tables` spell out
every transient state and every race row by hand -- roughly three
quarters of each table is bookkeeping for messages that cross each
other in flight.  This module implements what the protocol-synthesis
literature (Synthia, ProtoGen) argues for instead: the author describes
only the *stable-state* protocol --

* the stable states, and which of them hold a copy / own the block;
* the transactions that move between them (stimulus, request message,
  the completion messages that can answer it);
* the reactions of copy holders to the directory's messages (an owner
  serving a forward);

-- and everything transient is derived mechanically:

1. every :class:`CacheTxn` gets its declared transient state, plus (if
   the origin state holds a copy that a racing invalidation can take)
   a shadow transient for the copy-lost continuation;
2. racing invalidations at every state get rows: invalidate-and-ack
   where a copy is resident, stale-ack where none is, a reasoned
   :class:`~repro.protospec.model.Impossible` at owners (the directory
   recalls owners with forwards, never invalidations);
3. directory forwards get NACK-retry rows at the initial state and at
   transients entered from it (the ex-owner's writeback race), with
   the FIFO fairness justification the progress pass requires, and
   reasoned Impossible entries everywhere else;
4. on the home side, immediate serves are wrapped in
   ``begin_txn``/``end_txn``, each forward gets a busy transient with
   queue rows for every request, writeback-race rows, and a
   ``FWD_NACK`` retry row;
5. every remaining (state, message) pair is closed with a generated
   Impossible entry, so the completeness pass applies to synthesized
   specs exactly as to hand-written ones.

The output is an ordinary validated :class:`ProtocolSpec`:
``compile_dispatch`` executes it unchanged, every static pass applies,
and the spec-graph explorer (:mod:`repro.staticcheck.graph`) can walk
it.  :mod:`repro.protospec.mesi` is the demonstration: MESI is authored
here as ~40 stable-state declarations and synthesized into a table the
same shape as the hand-written WI one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.protospec.model import (
    ANY_STATE, LOCAL_PREFIX, Impossible, ProtocolSpec, SideSpec,
    SpecError, TransitionRow,
)

#: fairness justification attached to every synthesized NACK/retry row
#: (same argument as the hand-written tables): the ex-owner's WRITEBACK
#: precedes its NACK on the same channel, so per-channel FIFO delivery
#: guarantees the retried transaction is served from current memory.
FIFO_FAIRNESS = ("FIFO delivery: the ex-owner's WRITEBACK precedes its "
                 "NACK on the same channel, so the retried transaction "
                 "is served from current memory and cannot NACK again")

XFER_FAIRNESS = ("the exclusive data that made this node the recorded "
                 "owner is already in flight; once it installs, the "
                 "retried forward is served from the new exclusive "
                 "copy")


def _actions(text: str) -> Tuple[str, ...]:
    return tuple(text.split())


# ----------------------------------------------------------------------
# stable-state input model -- cache side
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class LocalRule:
    """A local stimulus handled without opening a transaction (cache
    hits, silent or writeback evictions, silent upgrades)."""

    state: str
    stimulus: str                   # "local:read" etc.
    actions: str = ""               # space-separated action tokens
    next_state: Optional[str] = None
    note: Optional[str] = None


@dataclass(frozen=True)
class Completion:
    """One message that can answer an outstanding transaction."""

    event: str
    actions: str
    next_state: str
    when: Optional[str] = None
    guard: Optional[str] = None
    note: Optional[str] = None


@dataclass(frozen=True)
class LostCopy:
    """The copy-lost continuation of a transaction whose origin state
    held a copy: a racing invalidation moves the transient to
    ``shadow``, where these completions apply instead."""

    shadow: str
    completions: Tuple[Completion, ...]


@dataclass(frozen=True)
class CacheTxn:
    """A stimulus that opens a transaction: send ``request``, wait in
    ``transient`` for one of ``completions``."""

    state: str
    stimulus: str
    request: str
    transient: str
    completions: Tuple[Completion, ...]
    lost_copy: Optional[LostCopy] = None
    note: Optional[str] = None


@dataclass(frozen=True)
class Reaction:
    """A stable-state response to a directory message (an owner
    serving a forward)."""

    state: str
    event: str
    actions: str
    next_state: str
    note: Optional[str] = None


@dataclass(frozen=True)
class StableCacheSide:
    """Everything the author says about the cache side."""

    initial: str
    stable: Tuple[str, ...]
    #: states holding a readable copy (targets of invalidations)
    holders: Tuple[str, ...]
    #: states holding the (clean- or dirty-) exclusive copy; subset of
    #: holders.  Owners are recalled with forwards, never invalidated.
    owners: Tuple[str, ...]
    local_rules: Tuple[LocalRule, ...]
    transactions: Tuple[CacheTxn, ...]
    reactions: Tuple[Reaction, ...] = ()
    #: invalidation message and its ack; None disables the whole
    #: invalidation closure (update-style protocols)
    invalidation: Optional[str] = "INV"
    inv_ack: str = "INV_ACK"
    #: directory forward messages (owner recalls); every owner state
    #: must have a reaction for each
    forwards: Tuple[str, ...] = ("FETCH_FWD", "FETCH_INV_FWD")
    nack: str = "FWD_NACK"
    #: authored Impossible reasons per event, overriding the generated
    #: text for pairs the closure rules out
    defaults: Tuple[Tuple[str, str], ...] = ()


# ----------------------------------------------------------------------
# stable-state input model -- home side
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class HomeServe:
    """A request served immediately (no forward): the synthesizer
    wraps ``actions`` in ``begin_txn``/``end_txn``."""

    state: str
    request: str
    actions: str
    next_state: str
    guard: Optional[str] = None
    when: Optional[str] = None
    note: Optional[str] = None


@dataclass(frozen=True)
class HomeCompletion:
    """A message that closes a forwarded transaction; the synthesizer
    appends ``end_txn``."""

    event: str
    actions: str
    next_state: str
    note: Optional[str] = None


@dataclass(frozen=True)
class HomeForward:
    """A request the home serves by forwarding to the recorded owner:
    the entry goes busy until a completion (or a NACK retry)."""

    state: str
    request: str
    fwd: str
    busy: str
    completions: Tuple[HomeCompletion, ...]
    note: Optional[str] = None


@dataclass(frozen=True)
class HomeRule:
    """An event handled outside the transaction framework (an owner's
    WRITEBACK).  With ``race_at_busy`` the synthesizer adds the same
    handling at every busy state, processed immediately so the NACKed
    forward's retry observes the clean entry."""

    state: str
    event: str
    actions: str
    next_state: str
    guard: Optional[str] = None
    when: Optional[str] = None
    note: Optional[str] = None
    race_at_busy: bool = False


@dataclass(frozen=True)
class StableHomeSide:
    """Everything the author says about the home side."""

    initial: str
    stable: Tuple[str, ...]
    serves: Tuple[HomeServe, ...]
    forwards: Tuple[HomeForward, ...] = ()
    rules: Tuple[HomeRule, ...] = ()
    nack: str = "FWD_NACK"
    defaults: Tuple[Tuple[str, str], ...] = ()


@dataclass(frozen=True)
class StableSpec:
    """A whole protocol, stable states only."""

    protocol: str
    description: str
    cache: StableCacheSide
    home: StableHomeSide
    unused_messages: Tuple[Tuple[str, str], ...] = ()


# ----------------------------------------------------------------------
# synthesis
# ----------------------------------------------------------------------


def _ordered(seq) -> List:
    out, seen = [], set()
    for item in seq:
        if item not in seen:
            seen.add(item)
            out.append(item)
    return out


def _synth_cache(side: StableCacheSide) -> SideSpec:
    if side.initial not in side.stable:
        raise SpecError("cache: initial state must be stable")
    if not set(side.holders) <= set(side.stable):
        raise SpecError("cache: holders must be stable states")
    if not set(side.owners) <= set(side.holders):
        raise SpecError("cache: owners must be holders")

    # state list: stable states first (initial first), then the
    # transaction transients, then the copy-lost shadows
    states = [side.initial] + [s for s in side.stable
                               if s != side.initial]
    transients: List[str] = []
    shadows: List[str] = []
    for txn in side.transactions:
        if txn.state not in side.stable:
            raise SpecError(
                f"cache: transaction from unknown stable state "
                f"{txn.state!r}")
        transients.append(txn.transient)
        if txn.lost_copy is not None:
            shadows.append(txn.lost_copy.shadow)
    states += _ordered(transients) + _ordered(
        s for s in shadows if s not in transients)
    if len(set(states)) != len(states):
        raise SpecError("cache: transient names collide with states")

    covered = {(r.state, r.stimulus) for r in side.local_rules}
    for txn in side.transactions:
        if (txn.state, txn.stimulus) in covered:
            raise SpecError(
                f"cache: ({txn.state}, {txn.stimulus}) has both a "
                f"local rule and a transaction")
        covered.add((txn.state, txn.stimulus))

    rows: List[TransitionRow] = []
    for lr in side.local_rules:
        rows.append(TransitionRow(
            state=lr.state, event=lr.stimulus,
            actions=_actions(lr.actions), next_state=lr.next_state,
            note=lr.note))
    for txn in side.transactions:
        rows.append(TransitionRow(
            state=txn.state, event=txn.stimulus,
            actions=(f"send:{txn.request}",),
            next_state=txn.transient, note=txn.note))
        for c in txn.completions:
            rows.append(TransitionRow(
                state=txn.transient, event=c.event,
                actions=_actions(c.actions), next_state=c.next_state,
                guard=c.guard, when=c.when, note=c.note))
        if txn.lost_copy is not None:
            for c in txn.lost_copy.completions:
                rows.append(TransitionRow(
                    state=txn.lost_copy.shadow, event=c.event,
                    actions=_actions(c.actions),
                    next_state=c.next_state,
                    guard=c.guard, when=c.when, note=c.note))
    for rx in side.reactions:
        rows.append(TransitionRow(
            state=rx.state, event=rx.event,
            actions=_actions(rx.actions), next_state=rx.next_state,
            note=rx.note))

    impossible: List[Impossible] = []

    # --- invalidation closure -----------------------------------------
    if side.invalidation is not None:
        inv, ack = side.invalidation, side.inv_ack
        inv_ack_send = f"send:{ack}"
        for s in side.stable:
            if s in side.owners:
                impossible.append(Impossible(
                    s, inv,
                    "the directory never invalidates the exclusive "
                    "owner; ownership moves via "
                    + "/".join(side.forwards)))
            elif s in side.holders:
                rows.append(TransitionRow(
                    state=s, event=inv,
                    actions=("invalidate", inv_ack_send),
                    next_state=side.initial))
            else:
                rows.append(TransitionRow(
                    state=s, event=inv, actions=(inv_ack_send,),
                    next_state=s,
                    note="stale invalidation for a copy already "
                         "dropped; acked harmlessly (full-map bits "
                         "may be stale)"))
        for txn in side.transactions:
            holds = (txn.state in side.holders
                     and txn.state not in side.owners)
            if holds:
                if txn.lost_copy is None:
                    raise SpecError(
                        f"cache: transaction {txn.transient} starts "
                        f"from copy-holding state {txn.state} but "
                        f"declares no lost_copy continuation")
                rows.append(TransitionRow(
                    state=txn.transient, event=inv,
                    actions=("invalidate", inv_ack_send),
                    next_state=txn.lost_copy.shadow,
                    note="a racing writer won; the outstanding "
                         "request will be answered after its "
                         "transaction completes"))
                rows.append(TransitionRow(
                    state=txn.lost_copy.shadow, event=inv,
                    actions=(inv_ack_send,),
                    next_state=txn.lost_copy.shadow))
            else:
                rows.append(TransitionRow(
                    state=txn.transient, event=inv,
                    actions=(inv_ack_send,),
                    next_state=txn.transient,
                    note="no copy is resident; a racing invalidation "
                         "is acked and remembered against the "
                         "pending fill's sequence number"))
        # ack collection is node-level (release consistency: the
        # writer only waits at fence points)
        rows.append(TransitionRow(
            state=ANY_STATE, event=ack, actions=("ack",)))

    # --- forward closure ----------------------------------------------
    owner_only = ("the home forwards this message only to the node it "
                  "records as the exclusive owner; this state was "
                  "never recorded as owner while the transaction was "
                  "open")
    defaults = dict(side.defaults)
    if side.forwards:
        reacted = {(rx.state, rx.event) for rx in side.reactions}
        nack_transients = [t.transient for t in side.transactions
                          if t.state == side.initial]
        for fwd in side.forwards:
            for owner in side.owners:
                if (owner, fwd) not in reacted:
                    raise SpecError(
                        f"cache: owner state {owner} has no reaction "
                        f"for forward {fwd}")
            for st in [side.initial] + nack_transients:
                rows.append(TransitionRow(
                    state=st, event=fwd,
                    actions=(f"send:{side.nack}",), next_state=st,
                    guard="ownership given up; our WRITEBACK is in "
                          "flight",
                    retry=True, fairness=FIFO_FAIRNESS))
            # A node upgrading from a holder state can be the RECORDED
            # owner before its exclusive data arrives: the old owner's
            # ownership transfer names it in the directory while the
            # grant (and a demoting INV, for the shadow states) is
            # still in flight.  A forward landing in that window is
            # NACKed and retried.
            for txn in side.transactions:
                if txn.state == side.initial:
                    continue
                if not any(c.next_state in side.owners
                           for c in txn.completions):
                    continue
                waits = [txn.transient]
                if txn.lost_copy is not None:
                    waits.append(txn.lost_copy.shadow)
                for st in waits:
                    rows.append(TransitionRow(
                        state=st, event=fwd,
                        actions=(f"send:{side.nack}",),
                        next_state=st,
                        guard="recorded as owner, but our exclusive "
                              "data is still in flight",
                        retry=True, fairness=XFER_FAIRNESS))
            defaults.setdefault(fwd, owner_only)

    # --- event alphabet -----------------------------------------------
    stimuli = _ordered([lr.stimulus for lr in side.local_rules]
                       + [t.stimulus for t in side.transactions])
    for stim in stimuli:
        if not stim.startswith(LOCAL_PREFIX):
            raise SpecError(f"cache: stimulus {stim!r} must be local:*")
    message_events = _ordered(
        [c.event for t in side.transactions for c in t.completions]
        + [c.event for t in side.transactions if t.lost_copy
           for c in t.lost_copy.completions]
        + ([side.invalidation, side.inv_ack]
           if side.invalidation is not None else [])
        + list(side.forwards)
        + [rx.event for rx in side.reactions])
    events = stimuli + message_events

    # --- completeness closure -----------------------------------------
    handlers_of: Dict[str, List[str]] = {}
    requests_of: Dict[str, List[str]] = {}
    for txn in side.transactions:
        comps = list(txn.completions) + (
            list(txn.lost_copy.completions) if txn.lost_copy else [])
        for c in comps:
            handlers_of.setdefault(c.event, [])
            requests_of.setdefault(c.event, [])
            for lst, val in ((handlers_of[c.event], txn.transient),
                             (requests_of[c.event], txn.request)):
                if val not in lst:
                    lst.append(val)
    covered_msgs = set()
    for r in rows:
        if r.event.startswith(LOCAL_PREFIX):
            continue
        for s in (states if r.state == ANY_STATE else (r.state,)):
            covered_msgs.add((s, r.event))
    covered_msgs.update((i.state, i.event) for i in impossible)
    for ev in message_events:
        for s in states:
            if (s, ev) in covered_msgs:
                continue
            reason = defaults.get(ev)
            if reason is None and ev in handlers_of:
                reason = (f"a {ev} only answers this node's "
                          f"outstanding "
                          f"{'/'.join(requests_of[ev])} "
                          f"({' / '.join(handlers_of[ev])})")
            if reason is None:
                raise SpecError(
                    f"cache: no rule generates a row or a reason for "
                    f"({s}, {ev})")
            impossible.append(Impossible(s, ev, reason))

    return SideSpec(name="cache", initial=side.initial,
                    states=tuple(states), stable=tuple(side.stable),
                    events=tuple(events), rows=tuple(rows),
                    impossible=tuple(impossible))


def _synth_home(side: StableHomeSide) -> SideSpec:
    if side.initial not in side.stable:
        raise SpecError("home: initial state must be stable")

    busies = _ordered(f.busy for f in side.forwards)
    states = [side.initial] + [s for s in side.stable
                               if s != side.initial] + busies
    if len(set(states)) != len(states):
        raise SpecError("home: busy names collide with states")

    requests = _ordered([sv.request for sv in side.serves]
                        + [f.request for f in side.forwards])

    rows: List[TransitionRow] = []
    for sv in side.serves:
        rows.append(TransitionRow(
            state=sv.state, event=sv.request,
            actions=("begin_txn",) + _actions(sv.actions)
            + ("end_txn",),
            next_state=sv.next_state, guard=sv.guard, when=sv.when,
            note=sv.note))
    comp_by_busy: Dict[str, Dict[str, HomeCompletion]] = {}
    fwd_of_comp: Dict[str, List[str]] = {}
    for f in side.forwards:
        rows.append(TransitionRow(
            state=f.state, event=f.request,
            actions=("begin_txn", f"send:{f.fwd}"), next_state=f.busy,
            note=f.note or (
                f"the transaction stays open until "
                f"{'/'.join(c.event for c in f.completions)} (or a "
                f"{side.nack} retry)")))
        per_busy = comp_by_busy.setdefault(f.busy, {})
        for c in f.completions:
            prior = per_busy.get(c.event)
            if prior is not None and prior != c:
                raise SpecError(
                    f"home: busy state {f.busy} gets conflicting "
                    f"completions for {c.event}")
            per_busy[c.event] = c
            fwd_of_comp.setdefault(c.event, [])
            if f.fwd not in fwd_of_comp[c.event]:
                fwd_of_comp[c.event].append(f.fwd)
    # busy states whose completion records the requester as the new
    # dirty owner: the transfer message races the new owner's own
    # eviction writeback, and losing that race must not install
    # ownership the writer already gave up (the block would strand:
    # every forward to it would NACK and retry forever)
    transfer_busies = {
        busy for busy, comps in comp_by_busy.items()
        if any("dir:=DIRTY" in _actions(c.actions)
               for c in comps.values())}
    for busy in busies:
        for req in requests:
            rows.append(TransitionRow(
                state=busy, event=req, actions=("begin_txn",),
                next_state=busy,
                note="queued on the busy directory entry"))
        for c in comp_by_busy[busy].values():
            actions = _actions(c.actions)
            if "dir:=DIRTY" in actions:
                rows.append(TransitionRow(
                    state=busy, event=c.event,
                    actions=actions + ("end_txn",),
                    next_state=c.next_state,
                    guard="the new owner still holds its copy",
                    when="requester_not_wrote_back", note=c.note))
                rows.append(TransitionRow(
                    state=busy, event=c.event,
                    actions=("dir:=UNOWNED", "end_txn"),
                    next_state=side.initial,
                    guard="the new owner already evicted and wrote "
                          "back",
                    when="requester_wrote_back",
                    note="the early WRITEBACK made memory current; "
                         "recording the requester as owner now would "
                         "strand the block"))
            else:
                rows.append(TransitionRow(
                    state=busy, event=c.event,
                    actions=actions + ("end_txn",),
                    next_state=c.next_state, note=c.note))
    for rule in side.rules:
        rows.append(TransitionRow(
            state=rule.state, event=rule.event,
            actions=_actions(rule.actions),
            next_state=rule.next_state, guard=rule.guard,
            when=rule.when, note=rule.note))
        if rule.race_at_busy:
            for busy in busies:
                if busy in transfer_busies:
                    rows.append(TransitionRow(
                        state=busy, event=rule.event,
                        actions=_actions(rule.actions),
                        next_state=busy,
                        guard="the recorded owner gave up ownership",
                        when="from_owner",
                        note="processed immediately (never queued): "
                             "the in-flight forward will be NACKed "
                             "and its retry must observe the clean "
                             "entry"))
                    rows.append(TransitionRow(
                        state=busy, event=rule.event,
                        actions=tuple(
                            a for a in _actions(rule.actions)
                            if not a.startswith("dir:="))
                        + ("note_early_wb",),
                        next_state=busy,
                        guard="the in-flight transaction's requester "
                              "wrote back before its ownership "
                              "transfer arrived",
                        when="not_from_owner",
                        note="the directory does not record this "
                             "node as owner yet; remember the "
                             "writeback so the transfer resolves to "
                             "UNOWNED"))
                else:
                    rows.append(TransitionRow(
                        state=busy, event=rule.event,
                        actions=_actions(rule.actions),
                        next_state=busy,
                        note="processed immediately (never queued): "
                             "the in-flight forward will be NACKed "
                             "and its retry must observe the clean "
                             "entry"))
    for busy in busies:
        rows.append(TransitionRow(
            state=busy, event=side.nack, actions=("retry_txn",),
            next_state=side.initial, retry=True,
            fairness=FIFO_FAIRNESS,
            note="the retried request then re-runs against the clean "
                 "entry"))

    completion_events = _ordered(ev for busy in busies
                                 for ev in comp_by_busy[busy])
    rule_events = _ordered(r.event for r in side.rules)
    events = requests + completion_events + rule_events
    if side.forwards:
        events = events + [side.nack]
    events = _ordered(events)

    defaults = dict(side.defaults)
    for ev in completion_events:
        defaults.setdefault(ev, (
            f"a {ev} only completes the "
            f"{'/'.join(fwd_of_comp[ev])} of the transaction in "
            f"flight"))
    if side.forwards:
        defaults.setdefault(side.nack, (
            f"a {side.nack} only answers a forward issued by the "
            f"open transaction"))

    covered = set()
    for r in rows:
        for s in (states if r.state == ANY_STATE else (r.state,)):
            covered.add((s, r.event))
    impossible: List[Impossible] = []
    for ev in events:
        for s in states:
            if (s, ev) in covered:
                continue
            reason = defaults.get(ev)
            if reason is None:
                raise SpecError(
                    f"home: no rule generates a row or a reason for "
                    f"({s}, {ev})")
            impossible.append(Impossible(s, ev, reason))

    return SideSpec(name="home", initial=side.initial,
                    states=tuple(states), stable=tuple(side.stable),
                    events=tuple(events), rows=tuple(rows),
                    impossible=tuple(impossible))


def synthesize(stable: StableSpec) -> ProtocolSpec:
    """Derive the full transient-complete spec from ``stable``."""
    spec = ProtocolSpec(
        protocol=stable.protocol,
        description=stable.description,
        cache=_synth_cache(stable.cache),
        home=_synth_home(stable.home),
        unused_messages=stable.unused_messages)
    spec.validate()
    return spec
