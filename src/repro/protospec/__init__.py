"""Declarative, JSON-serializable protocol transition tables.

``get_spec("wi" | "pu" | "cu" | "hybrid")`` (or a
:class:`repro.config.Protocol` member) returns the validated
:class:`ProtocolSpec` for that protocol.  The tables are hand-written
transcriptions of the imperative controllers in :mod:`repro.protocols`;
:mod:`repro.staticcheck` keeps the two from drifting apart.
"""

from __future__ import annotations

from typing import Dict

from repro.protospec.model import (
    ACTION_VOCABULARY, ANY_STATE, LOCAL_EVENTS, LOCAL_PREFIX,
    Impossible, ProtocolSpec, SideSpec, SpecError, TransitionRow,
)
from repro.protospec.tables import cu_spec, hybrid_spec, pu_spec, wi_spec

#: protocol value -> spec builder (the order matches Protocol)
SPEC_BUILDERS = {
    "wi": wi_spec,
    "pu": pu_spec,
    "cu": cu_spec,
    "hybrid": hybrid_spec,
}

_cache: Dict[str, "ProtocolSpec"] = {}


def get_spec(protocol) -> ProtocolSpec:
    """Return the (cached, validated) spec for a protocol, given either
    a :class:`repro.config.Protocol` member or its string value."""
    key = getattr(protocol, "value", protocol)
    if key not in SPEC_BUILDERS:
        raise KeyError(
            f"no protocol spec for {key!r}; known: "
            f"{', '.join(sorted(SPEC_BUILDERS))}")
    if key not in _cache:
        _cache[key] = SPEC_BUILDERS[key]()
    return _cache[key]


__all__ = [
    "ACTION_VOCABULARY", "ANY_STATE", "LOCAL_EVENTS", "LOCAL_PREFIX",
    "Impossible", "ProtocolSpec", "SideSpec", "SpecError",
    "TransitionRow", "SPEC_BUILDERS", "get_spec",
    "wi_spec", "pu_spec", "cu_spec", "hybrid_spec",
]
