"""Declarative protocol transition tables.

A :class:`ProtocolSpec` is a JSON-serializable description of one
coherence protocol as two finite state machines -- the **cache side**
(the life of a block in one node's cache) and the **home side** (the
life of the block's directory entry at its home node).  Each side lists
its states (stable and transient), the events it can receive, and a set
of :class:`TransitionRow` entries::

    (state, event) -> (guard, actions, next_state)

Events are either coherence message types (the ``MsgType`` member name,
e.g. ``"INV"``) or processor-local stimuli namespaced ``local:*``
(``local:read``, ``local:store``, ``local:atomic``, ``local:evict``).
Guards and actions are symbolic strings drawn from a fixed vocabulary
(:data:`ACTION_VOCABULARY`) that mirrors what the imperative handlers in
:mod:`repro.protocols` actually do -- ``send:INV``, ``cache:=M``,
``install``, ``ack`` and so on -- which is what lets the static
conformance pass (:mod:`repro.staticcheck.conformance`) diff the table
against the handler source.

Pairs that can never occur are not simply left out: they are declared
:class:`Impossible` with a written reason, so the completeness check can
tell "thought about and ruled out" apart from "forgot".

Everything here is deliberately dependency-light (``repro.network`` and
the stdlib only): the tables are imported by the protocol layer itself
for the fail-fast handler validation, so this module must not import
:mod:`repro.protocols`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.network.messages import MsgType

#: wildcard state for rows that apply in any state (node-level effects
#: such as ack collection, which do not depend on the block's state)
ANY_STATE = "*"

#: prefix of processor-local (non-message) events
LOCAL_PREFIX = "local:"

#: the local events the specs may use, and the controller entry point
#: each one corresponds to (used by the conformance pass)
LOCAL_EVENTS = {
    "local:read": "read",
    "local:store": "_retire",
    "local:atomic": "_start_atomic",
    "local:evict": "_evict_protocol",
}

#: every legal non-``send:`` / non-state-write action token, with what
#: it means in the imperative controllers
ACTION_VOCABULARY = {
    "install": "self.cache.install(...) of a data reply",
    "invalidate": "self.cache.invalidate(...)",
    "fill": "self._complete_fill(...): install + resume stalled read",
    "apply_store": "self._apply_store(...): retire the head store locally",
    "finish_atomic": "self._finish_atomic(...): run the pending atomic",
    "evict": "self._evict(...): displacement of a victim line",
    "ack": "self._ack_collected(): one expected ack arrived",
    "retire_done": "self._retire_done(): head write globally performed",
    "begin_txn": "self._begin_txn(...): serialize on the directory entry",
    "end_txn": "self._end_txn(...): release the directory entry",
    "retry_txn": "self._retry_txn(...): re-dispatch after a race",
    "cache_write": "self.cache.write_word(...)",
    "mem_write": "home memory write (word or block)",
    "atomic_op": "apply_atomic(...) executed here",
    "note_early_wb": "record a mid-transaction writeback from the "
                     "node an in-flight DIRTY_TRANSFER will name as "
                     "owner (DirEntry.early_wb_mask)",
}

#: machine-evaluable guard predicates.  ``guard`` stays the prose
#: explanation for humans; ``when`` is the predicate the spec-graph
#: explorer (:mod:`repro.staticcheck.graph`) evaluates when several
#: rows share a (state, event) pair.  Rows without a ``when`` are
#: explored nondeterministically (sound over-approximation).
WHEN_VOCABULARY = {
    "requester_is_sharer": "the requesting node is on the sharer list",
    "requester_not_sharer": "the requesting node is no longer on the "
                            "sharer list",
    "other_sharers": "at least one node other than the writer shares "
                     "the block",
    "sole_sharer_retain": "the writer is the only sharer and "
                          "retain-private is enabled",
    "sole_sharer_no_retain": "the writer is the only sharer and "
                             "retain-private is disabled",
    "other_sharers_remain": "removing the sender leaves the sharer "
                            "list non-empty",
    "last_sharer": "the sender was the last sharer",
    "from_owner": "the sender is the recorded dirty owner",
    "not_from_owner": "the sender is not the recorded dirty owner",
    "msg_retain": "the message carries a retain grant",
    "msg_no_retain": "the message carries no retain grant",
    "counter_below": "the per-line update counter is below the "
                     "threshold",
    "counter_at_threshold": "the per-line update counter reaches the "
                            "threshold",
    "requester_wrote_back": "the open transaction's requester already "
                            "wrote the block back (early writeback)",
    "requester_not_wrote_back": "no early writeback from the open "
                                "transaction's requester",
}

_STATE_WRITE_PREFIXES = ("cache:=", "dir:=")


def _is_known_action(action: str) -> bool:
    if action in ACTION_VOCABULARY:
        return True
    if action.startswith("send:"):
        return action[len("send:"):] in MsgType.__members__
    return any(action.startswith(p) for p in _STATE_WRITE_PREFIXES)


class SpecError(ValueError):
    """A malformed protocol spec (unknown state/event/action...)."""


@dataclass(frozen=True)
class TransitionRow:
    """One ``(state, event) -> (guard, actions, next_state)`` row.

    ``state`` may be :data:`ANY_STATE`; ``next_state`` ``None`` means
    "unchanged".  ``guard`` is a symbolic condition (``None`` = always);
    two rows for the same (state, event) must have distinct guards.
    ``retry`` marks rows that re-issue/retry without making protocol
    progress; a cycle of retry rows must carry a ``fairness``
    justification or the progress check flags it.  ``when`` is the
    optional machine-evaluable counterpart of ``guard``, drawn from
    :data:`WHEN_VOCABULARY`.
    """

    state: str
    event: str
    actions: Tuple[str, ...]
    next_state: Optional[str] = None
    guard: Optional[str] = None
    retry: bool = False
    fairness: Optional[str] = None
    note: Optional[str] = None
    when: Optional[str] = None

    def to_json(self) -> dict:
        out: dict = {"state": self.state, "event": self.event,
                     "actions": list(self.actions)}
        if self.next_state is not None:
            out["next_state"] = self.next_state
        if self.guard is not None:
            out["guard"] = self.guard
        if self.retry:
            out["retry"] = True
        if self.fairness is not None:
            out["fairness"] = self.fairness
        if self.note is not None:
            out["note"] = self.note
        if self.when is not None:
            out["when"] = self.when
        return out

    @classmethod
    def from_json(cls, data: dict) -> "TransitionRow":
        return cls(state=data["state"], event=data["event"],
                   actions=tuple(data["actions"]),
                   next_state=data.get("next_state"),
                   guard=data.get("guard"),
                   retry=bool(data.get("retry", False)),
                   fairness=data.get("fairness"),
                   note=data.get("note"),
                   when=data.get("when"))


@dataclass(frozen=True)
class Impossible:
    """A (state, event) pair declared unreachable, with the reason."""

    state: str
    event: str
    reason: str

    def to_json(self) -> dict:
        return {"state": self.state, "event": self.event,
                "reason": self.reason}

    @classmethod
    def from_json(cls, data: dict) -> "Impossible":
        return cls(state=data["state"], event=data["event"],
                   reason=data["reason"])


@dataclass(frozen=True)
class SideSpec:
    """One side (cache or home) of a protocol as a finite state machine."""

    name: str                       # "cache" | "home"
    initial: str
    states: Tuple[str, ...]         # stable + transient, initial first
    stable: Tuple[str, ...]         # subset of states
    events: Tuple[str, ...]         # MsgType names + local:* stimuli
    rows: Tuple[TransitionRow, ...]
    impossible: Tuple[Impossible, ...] = ()

    # -- convenience views ---------------------------------------------

    def message_events(self) -> Tuple[str, ...]:
        return tuple(e for e in self.events
                     if not e.startswith(LOCAL_PREFIX))

    def rows_for(self, state: str, event: str) -> List[TransitionRow]:
        """Rows matching (state, event), wildcard rows included."""
        return [r for r in self.rows if r.event == event
                and r.state in (state, ANY_STATE)]

    def impossible_for(self, state: str, event: str) -> Optional[Impossible]:
        for imp in self.impossible:
            if imp.state == state and imp.event == event:
                return imp
        return None

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "initial": self.initial,
            "states": list(self.states),
            "stable": list(self.stable),
            "events": list(self.events),
            "rows": [r.to_json() for r in self.rows],
            "impossible": [i.to_json() for i in self.impossible],
        }

    @classmethod
    def from_json(cls, data: dict) -> "SideSpec":
        return cls(name=data["name"], initial=data["initial"],
                   states=tuple(data["states"]),
                   stable=tuple(data["stable"]),
                   events=tuple(data["events"]),
                   rows=tuple(TransitionRow.from_json(r)
                              for r in data["rows"]),
                   impossible=tuple(Impossible.from_json(i)
                                    for i in data.get("impossible", ())))


@dataclass(frozen=True)
class ProtocolSpec:
    """A whole protocol: cache side + home side + metadata."""

    protocol: str                   # Protocol.value: wi|pu|cu|hybrid
    description: str
    cache: SideSpec
    home: SideSpec
    #: MsgType names this protocol never uses at all (with the reason),
    #: e.g. WI never speaks UPDATE; used by the orphan-message check
    unused_messages: Tuple[Tuple[str, str], ...] = ()

    @property
    def sides(self) -> Tuple[SideSpec, SideSpec]:
        return (self.cache, self.home)

    def side(self, name: str) -> SideSpec:
        for s in self.sides:
            if s.name == name:
                return s
        raise KeyError(name)

    def receivable(self) -> FrozenSet[MsgType]:
        """Every message type a node running this protocol can receive
        (either side; one controller plays both roles)."""
        names = set()
        for s in self.sides:
            names.update(s.message_events())
        return frozenset(MsgType[n] for n in names)

    def used_messages(self) -> FrozenSet[str]:
        """Message-type names mentioned anywhere in the spec (events or
        ``send:`` actions)."""
        used = {e for s in self.sides for e in s.message_events()}
        for s in self.sides:
            for r in s.rows:
                for a in r.actions:
                    if a.startswith("send:"):
                        used.add(a[len("send:"):])
        return frozenset(used)

    # -- validation ----------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`SpecError` on structural problems: unknown
        states/events/actions, rows outside the declared alphabets,
        duplicate state names, bad initial state."""
        for side in self.sides:
            where = f"{self.protocol}/{side.name}"
            if len(set(side.states)) != len(side.states):
                raise SpecError(f"{where}: duplicate state names")
            if side.initial not in side.states:
                raise SpecError(
                    f"{where}: initial state {side.initial!r} is not in "
                    f"the state list")
            unknown = set(side.stable) - set(side.states)
            if unknown:
                raise SpecError(
                    f"{where}: stable states {sorted(unknown)} not in "
                    f"the state list")
            for ev in side.events:
                if ev.startswith(LOCAL_PREFIX):
                    if ev not in LOCAL_EVENTS:
                        raise SpecError(
                            f"{where}: unknown local event {ev!r}")
                elif ev not in MsgType.__members__:
                    raise SpecError(
                        f"{where}: {ev!r} is not a MsgType name")
            for row in side.rows:
                rwhere = f"{where}: row ({row.state}, {row.event})"
                if row.state != ANY_STATE and row.state not in side.states:
                    raise SpecError(f"{rwhere}: unknown state")
                if row.event not in side.events:
                    raise SpecError(
                        f"{rwhere}: event not in the side's alphabet")
                if row.next_state is not None \
                        and row.next_state not in side.states:
                    raise SpecError(
                        f"{rwhere}: unknown next_state "
                        f"{row.next_state!r}")
                for action in row.actions:
                    if not _is_known_action(action):
                        raise SpecError(
                            f"{rwhere}: unknown action {action!r}")
                if row.when is not None \
                        and row.when not in WHEN_VOCABULARY:
                    raise SpecError(
                        f"{rwhere}: unknown when-predicate "
                        f"{row.when!r}")
            for imp in side.impossible:
                iwhere = f"{where}: impossible ({imp.state}, {imp.event})"
                if imp.state not in side.states:
                    raise SpecError(f"{iwhere}: unknown state")
                if imp.event not in side.events:
                    raise SpecError(
                        f"{iwhere}: event not in the side's alphabet")
                if not imp.reason.strip():
                    raise SpecError(f"{iwhere}: empty reason")
        for name, reason in self.unused_messages:
            if name not in MsgType.__members__:
                raise SpecError(
                    f"{self.protocol}: unused_messages entry {name!r} "
                    f"is not a MsgType name")
            if not reason.strip():
                raise SpecError(
                    f"{self.protocol}: unused message {name} needs a "
                    f"reason")

    # -- serialization -------------------------------------------------

    def to_json(self) -> dict:
        return {
            "protocol": self.protocol,
            "description": self.description,
            "cache": self.cache.to_json(),
            "home": self.home.to_json(),
            "unused_messages": [list(u) for u in self.unused_messages],
        }

    @classmethod
    def from_json(cls, data: dict) -> "ProtocolSpec":
        return cls(protocol=data["protocol"],
                   description=data["description"],
                   cache=SideSpec.from_json(data["cache"]),
                   home=SideSpec.from_json(data["home"]),
                   unused_messages=tuple(
                       (n, r) for n, r in data.get("unused_messages", ())))

    def dumps(self, **kw) -> str:
        kw.setdefault("indent", 2)
        kw.setdefault("sort_keys", True)
        return json.dumps(self.to_json(), **kw)

    @classmethod
    def loads(cls, text: str) -> "ProtocolSpec":
        return cls.from_json(json.loads(text))
