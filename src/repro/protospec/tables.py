"""Hand-written transition tables for the four paper protocols.

Each builder returns a validated :class:`ProtocolSpec` transcribed from
the imperative controllers:

* :func:`wi_spec` -- DASH-style write invalidate
  (:class:`repro.protocols.wi.WINodeCtrl`);
* :func:`pu_spec` -- pure update
  (:class:`repro.protocols.update.PUNodeCtrl`);
* :func:`cu_spec` -- competitive update: PU with threshold
  self-invalidation rows on UPD_PROP
  (:class:`repro.protocols.update.CUNodeCtrl`);
* :func:`hybrid_spec` -- the per-block WI/CU hybrid, built by
  *merging* the WI and CU tables: colliding ``(state, event)`` pairs
  get mutually exclusive "WI-managed block" / "update-managed block"
  guards, and cross-protocol pairs (a WI-only state meeting an
  update-only message, or vice versa) are auto-declared impossible.

State naming follows the textbook transient convention: ``IS_D`` is
"was Invalid, going to Shared, waiting for Data"; ``SM_W`` is "was
Shared, going to Modified, waiting for the upgrade grant (W)"; ``_A``
marks a pending atomic.  Directory-side transients (``BUSY_R``,
``BUSY_X``, ``D_R``) model the per-block transaction the home holds
open while a forward or recall is in flight.

Every ``(state, message-event)`` pair is either given a row or an
:class:`Impossible` entry -- the :func:`_side` helper enforces this at
construction time, so a forgotten pair is a build error here and a
``completeness`` finding for specs built any other way.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.protospec.model import (
    ANY_STATE, LOCAL_PREFIX, Impossible, ProtocolSpec, SideSpec,
    SpecError, TransitionRow,
)

# ----------------------------------------------------------------------
# construction helpers
# ----------------------------------------------------------------------


def _row(state: str, event: str, actions: str = "",
         next_state: Optional[str] = None, guard: Optional[str] = None,
         retry: bool = False, fairness: Optional[str] = None,
         note: Optional[str] = None,
         when: Optional[str] = None) -> TransitionRow:
    """Compact row constructor; ``actions`` is space-separated."""
    return TransitionRow(state=state, event=event,
                         actions=tuple(actions.split()),
                         next_state=next_state, guard=guard, retry=retry,
                         fairness=fairness, note=note, when=when)


def _side(name: str, initial: str, states: Sequence[str],
          stable: Sequence[str], events: Sequence[str],
          rows: Iterable[TransitionRow],
          impossible: Iterable[Impossible] = (),
          defaults: Optional[Dict[str, str]] = None) -> SideSpec:
    """Build a side and *complete* it: any ``(state, message-event)``
    pair with neither a row nor an explicit impossible entry gets an
    :class:`Impossible` with the event's default reason.  An event with
    uncovered pairs and no default is a construction error -- being
    forced to write the reason down is the point."""
    rows = tuple(rows)
    impossible = list(impossible)
    covered = set()
    for r in rows:
        for s in (states if r.state == ANY_STATE else (r.state,)):
            covered.add((s, r.event))
    covered.update((i.state, i.event) for i in impossible)
    for ev in events:
        if ev.startswith(LOCAL_PREFIX):
            continue
        for s in states:
            if (s, ev) in covered:
                continue
            reason = (defaults or {}).get(ev)
            if reason is None:
                raise SpecError(
                    f"{name}: ({s}, {ev}) has no row, no impossible "
                    f"entry, and no default reason")
            impossible.append(Impossible(s, ev, reason))
    return SideSpec(name=name, initial=initial, states=tuple(states),
                    stable=tuple(stable), events=tuple(events),
                    rows=rows, impossible=tuple(impossible))


#: shared fairness justification for NACK/retry races: the ex-owner
#: sends its WRITEBACK before it can see (and NACK) the forward, and
#: per-channel FIFO delivery keeps that order at the home
_FIFO_WB = ("FIFO delivery: the ex-owner's WRITEBACK precedes its NACK "
            "on the same channel, so the retried transaction is served "
            "from current memory and cannot NACK again")

#: fairness justification for NACKing a forward while our own
#: ownership data is in flight: that data WILL install (it is already
#: past the home's serialization point), after which we serve forwards
_XFER = ("the exclusive data that made this node the recorded owner is "
         "already in flight; once it installs, the retried forward is "
         "served from the new MODIFIED copy")

_OWNER_ONLY = ("the home forwards this message only to the node it "
               "records as the dirty owner; this state was never "
               "recorded as owner while the transaction was open")


# ----------------------------------------------------------------------
# write invalidate
# ----------------------------------------------------------------------

def wi_spec() -> ProtocolSpec:
    """DASH-style write invalidate (``repro/protocols/wi.py``)."""

    # ---- cache side --------------------------------------------------
    wb_race = _row  # alias for readability below
    cache_rows: List[TransitionRow] = [
        # processor stimuli
        _row("I", "local:read", "send:READ_REQ", "IS_D"),
        _row("S", "local:read", "", "S", note="cache hit"),
        _row("M", "local:read", "", "M", note="cache hit"),
        _row("I", "local:store", "send:RDEX_REQ", "IM_D"),
        _row("S", "local:store", "send:UPGRADE_REQ", "SM_W",
             note="the paper's 'exclusive request' transaction"),
        _row("M", "local:store", "apply_store retire_done", "M"),
        _row("I", "local:atomic", "send:RDEX_REQ", "IM_AD"),
        _row("S", "local:atomic", "send:UPGRADE_REQ", "SM_AW"),
        _row("M", "local:atomic", "atomic_op cache_write", "M",
             note="atomics execute in the cache on an exclusive copy"),
        _row("S", "local:evict", "", "I",
             note="SHARED evictions are silent; DASH keeps "
                  "possibly-stale full-map sharer bits"),
        _row("M", "local:evict", "send:WRITEBACK", "I"),
        # data replies
        _row("IS_D", "READ_REPLY", "fill", "S"),
        _row("IS_D", "OWNER_DATA", "fill", "S",
             note="forwarded read served by the ex-dirty owner"),
        _row("IM_D", "RDEX_REPLY",
             "install apply_store retire_done evict", "M",
             note="install may displace a victim line (evict)"),
        _row("IM_AD", "RDEX_REPLY", "install finish_atomic evict", "M"),
        _row("IM_D", "OWNER_DATA_EX",
             "install apply_store retire_done evict", "M"),
        _row("IM_AD", "OWNER_DATA_EX", "install finish_atomic evict",
             "M"),
        # a racing writer can take ownership while our upgrade is in
        # flight; the home then demotes the upgrade to a full exclusive
        # transaction whose data comes from the new owner's cache
        # (OWNER_DATA_EX) or, if that owner wrote back first, from
        # memory (RDEX_REPLY).  The owner's data travels on a different
        # channel than the home's INV, so it can overtake the INV and
        # find our copy still resident (SM_W/SM_AW) -- the handler
        # installs over it either way.
        _row("SM_W", "OWNER_DATA_EX",
             "install apply_store retire_done evict", "M",
             guard="upgrade demoted: an earlier writer took ownership "
                   "and served our write from its cache"),
        _row("SM_AW", "OWNER_DATA_EX", "install finish_atomic evict",
             "M",
             guard="upgrade demoted: an earlier writer took ownership "
                   "and served our atomic from its cache"),
        _row("I_W", "OWNER_DATA_EX",
             "install apply_store retire_done evict", "M",
             guard="upgrade demoted after our copy was lost"),
        _row("I_AW", "OWNER_DATA_EX", "install finish_atomic evict",
             "M",
             guard="upgrade demoted after our copy was lost"),
        _row("I_W", "RDEX_REPLY",
             "install apply_store retire_done evict", "M",
             guard="upgrade demoted after our copy was lost; the "
                   "interim owner already wrote back, so memory "
                   "serves the data"),
        _row("I_AW", "RDEX_REPLY", "install finish_atomic evict", "M",
             guard="upgrade demoted after our copy was lost; the "
                   "interim owner already wrote back, so memory "
                   "serves the data"),
        # upgrade grants
        _row("SM_W", "UPGRADE_REPLY",
             "cache:=MODIFIED apply_store retire_done", "M"),
        _row("SM_AW", "UPGRADE_REPLY", "cache:=MODIFIED finish_atomic",
             "M"),
        _row("I_W", "UPGRADE_REPLY", "send:RDEX_REQ", "IM_D",
             guard="line conflict-evicted while the upgrade was in "
                   "flight",
             note="the home granted ownership; refetch the data with a "
                  "fresh RDEX"),
        _row("I_AW", "UPGRADE_REPLY", "send:RDEX_REQ", "IM_AD",
             guard="line conflict-evicted while the upgrade was in "
                   "flight"),
        # invalidations
        _row("S", "INV", "invalidate send:INV_ACK", "I"),
        _row("SM_W", "INV", "invalidate send:INV_ACK", "I_W",
             note="an earlier writer won the race; our upgrade will be "
                  "answered after its transaction completes"),
        _row("SM_AW", "INV", "invalidate send:INV_ACK", "I_AW"),
        _row("I", "INV", "send:INV_ACK", "I",
             note="stale invalidation for a copy already dropped; "
                  "acked harmlessly (full-map bits may be stale)"),
        _row("IS_D", "INV", "send:INV_ACK", "IS_D",
             note="a racing invalidation is remembered against the "
                  "pending fill's sequence number"),
        _row("IM_D", "INV", "send:INV_ACK", "IM_D"),
        _row("IM_AD", "INV", "send:INV_ACK", "IM_AD"),
        _row("I_W", "INV", "send:INV_ACK", "I_W"),
        _row("I_AW", "INV", "send:INV_ACK", "I_AW"),
        # ack collection is node-level (release consistency: the writer
        # only waits at fence points), independent of the block state
        _row(ANY_STATE, "INV_ACK", "ack"),
        # forwards from the home
        _row("M", "FETCH_FWD",
             "cache:=SHARED send:OWNER_DATA send:SHARING_WB", "S"),
        wb_race("I", "FETCH_FWD", "send:FWD_NACK", "I",
                guard="ownership given up; our WRITEBACK is in flight",
                retry=True, fairness=_FIFO_WB),
        wb_race("IS_D", "FETCH_FWD", "send:FWD_NACK", "IS_D",
                guard="ownership given up; our WRITEBACK is in flight",
                retry=True, fairness=_FIFO_WB),
        wb_race("IM_D", "FETCH_FWD", "send:FWD_NACK", "IM_D",
                guard="ownership given up; our WRITEBACK is in flight",
                retry=True, fairness=_FIFO_WB),
        wb_race("IM_AD", "FETCH_FWD", "send:FWD_NACK", "IM_AD",
                guard="ownership given up; our WRITEBACK is in flight",
                retry=True, fairness=_FIFO_WB),
        _row("M", "FETCH_INV_FWD",
             "invalidate send:OWNER_DATA_EX send:DIRTY_TRANSFER", "I",
             note="ownership transfers cache-to-cache; DIRTY_TRANSFER "
                  "tells the home"),
        wb_race("I", "FETCH_INV_FWD", "send:FWD_NACK", "I",
                guard="ownership given up; our WRITEBACK is in flight",
                retry=True, fairness=_FIFO_WB),
        wb_race("IS_D", "FETCH_INV_FWD", "send:FWD_NACK", "IS_D",
                guard="ownership given up; our WRITEBACK is in flight",
                retry=True, fairness=_FIFO_WB),
        wb_race("IM_D", "FETCH_INV_FWD", "send:FWD_NACK", "IM_D",
                guard="ownership given up; our WRITEBACK is in flight",
                retry=True, fairness=_FIFO_WB),
        wb_race("IM_AD", "FETCH_INV_FWD", "send:FWD_NACK", "IM_AD",
                guard="ownership given up; our WRITEBACK is in flight",
                retry=True, fairness=_FIFO_WB),
        # The home can record this node as the new dirty owner (via a
        # DIRTY_TRANSFER, or by granting a demoted upgrade) while the
        # exclusive data is still in flight to us, then forward a later
        # request here.  We are not MODIFIED yet, so we NACK; the retry
        # is served once our data installs.
        wb_race("SM_W", "FETCH_FWD", "send:FWD_NACK", "SM_W",
                guard="recorded as owner, but our exclusive data is "
                      "still in flight", retry=True, fairness=_XFER),
        wb_race("SM_AW", "FETCH_FWD", "send:FWD_NACK", "SM_AW",
                guard="recorded as owner, but our exclusive data is "
                      "still in flight", retry=True, fairness=_XFER),
        wb_race("I_W", "FETCH_FWD", "send:FWD_NACK", "I_W",
                guard="recorded as owner, but our exclusive data is "
                      "still in flight", retry=True, fairness=_XFER),
        wb_race("I_AW", "FETCH_FWD", "send:FWD_NACK", "I_AW",
                guard="recorded as owner, but our exclusive data is "
                      "still in flight", retry=True, fairness=_XFER),
        wb_race("SM_W", "FETCH_INV_FWD", "send:FWD_NACK", "SM_W",
                guard="recorded as owner, but our exclusive data is "
                      "still in flight", retry=True, fairness=_XFER),
        wb_race("SM_AW", "FETCH_INV_FWD", "send:FWD_NACK", "SM_AW",
                guard="recorded as owner, but our exclusive data is "
                      "still in flight", retry=True, fairness=_XFER),
        wb_race("I_W", "FETCH_INV_FWD", "send:FWD_NACK", "I_W",
                guard="recorded as owner, but our exclusive data is "
                      "still in flight", retry=True, fairness=_XFER),
        wb_race("I_AW", "FETCH_INV_FWD", "send:FWD_NACK", "I_AW",
                guard="recorded as owner, but our exclusive data is "
                      "still in flight", retry=True, fairness=_XFER),
    ]
    cache_impossible = [
        Impossible("M", "INV",
                   "the directory never invalidates the dirty owner; "
                   "ownership moves via FETCH_INV_FWD"),
    ]
    cache_defaults = {
        "READ_REPLY": "a shared-data reply only answers this node's "
                      "outstanding READ_REQ (state IS_D)",
        "OWNER_DATA": "forwarded shared data only answers this node's "
                      "outstanding READ_REQ (state IS_D)",
        "RDEX_REPLY": "an exclusive-data reply only answers this "
                      "node's outstanding RDEX_REQ (IM_D / IM_AD)",
        "OWNER_DATA_EX": "transferred ownership data only answers this "
                         "node's outstanding RDEX_REQ (IM_D / IM_AD)",
        "UPGRADE_REPLY": "an upgrade grant only answers this node's "
                         "outstanding UPGRADE_REQ (SM_W / SM_AW, or "
                         "I_W / I_AW after a conflict eviction)",
        "FETCH_FWD": _OWNER_ONLY,
        "FETCH_INV_FWD": _OWNER_ONLY,
    }
    cache = _side(
        "cache", "I",
        states=("I", "S", "M", "IS_D", "IM_D", "IM_AD", "SM_W",
                "SM_AW", "I_W", "I_AW"),
        stable=("I", "S", "M"),
        events=("local:read", "local:store", "local:atomic",
                "local:evict", "READ_REPLY", "OWNER_DATA", "RDEX_REPLY",
                "OWNER_DATA_EX", "UPGRADE_REPLY", "INV", "INV_ACK",
                "FETCH_FWD", "FETCH_INV_FWD"),
        rows=cache_rows, impossible=cache_impossible,
        defaults=cache_defaults)

    # ---- home (directory) side ---------------------------------------
    home_rows: List[TransitionRow] = [
        # reads
        _row("U", "READ_REQ",
             "begin_txn send:READ_REPLY dir:=SHARED end_txn", "S"),
        _row("S", "READ_REQ", "begin_txn send:READ_REPLY end_txn", "S"),
        _row("D", "READ_REQ", "begin_txn send:FETCH_FWD", "BUSY_R",
             note="the transaction stays open until SHARING_WB (or a "
                  "FWD_NACK retry)"),
        _row("BUSY_R", "READ_REQ", "begin_txn", "BUSY_R",
             note="queued on the busy directory entry"),
        _row("BUSY_X", "READ_REQ", "begin_txn", "BUSY_X",
             note="queued on the busy directory entry"),
        # write misses
        _row("U", "RDEX_REQ",
             "begin_txn send:RDEX_REPLY dir:=DIRTY end_txn", "D"),
        _row("S", "RDEX_REQ",
             "begin_txn send:INV send:RDEX_REPLY dir:=DIRTY end_txn",
             "D", note="invalidation acks go straight to the requester "
                       "(release consistency)"),
        _row("D", "RDEX_REQ", "begin_txn send:FETCH_INV_FWD", "BUSY_X",
             note="the transaction stays open until DIRTY_TRANSFER (or "
                  "a FWD_NACK retry)"),
        _row("BUSY_R", "RDEX_REQ", "begin_txn", "BUSY_R",
             note="queued on the busy directory entry"),
        _row("BUSY_X", "RDEX_REQ", "begin_txn", "BUSY_X",
             note="queued on the busy directory entry"),
        # upgrades
        _row("S", "UPGRADE_REQ",
             "begin_txn send:INV send:UPGRADE_REPLY dir:=DIRTY end_txn",
             "D", guard="requester still on the sharer list",
             when="requester_is_sharer"),
        _row("S", "UPGRADE_REQ",
             "begin_txn send:INV send:RDEX_REPLY dir:=DIRTY end_txn",
             "D", guard="requester was invalidated while its upgrade "
                        "was in flight",
             when="requester_not_sharer",
             note="demoted to a full exclusive-data transaction"),
        _row("U", "UPGRADE_REQ",
             "begin_txn send:RDEX_REPLY dir:=DIRTY end_txn", "D",
             guard="every copy (including the requester's) is gone",
             note="demoted to a full exclusive-data transaction"),
        _row("D", "UPGRADE_REQ", "begin_txn send:FETCH_INV_FWD",
             "BUSY_X",
             guard="an earlier writer took ownership first",
             note="demoted to a full exclusive-data transaction"),
        _row("BUSY_R", "UPGRADE_REQ", "begin_txn", "BUSY_R",
             note="queued on the busy directory entry"),
        _row("BUSY_X", "UPGRADE_REQ", "begin_txn", "BUSY_X",
             note="queued on the busy directory entry"),
        # transaction completions from the ex-owner
        _row("BUSY_R", "SHARING_WB", "mem_write dir:=SHARED end_txn",
             "S", note="ex-owner demoted itself to SHARED; both it and "
                       "the requester are sharers now"),
        _row("BUSY_X", "DIRTY_TRANSFER", "dir:=DIRTY end_txn", "D",
             guard="the new owner still holds its copy",
             when="requester_not_wrote_back",
             note="ownership moved cache-to-cache"),
        _row("BUSY_X", "DIRTY_TRANSFER", "dir:=UNOWNED end_txn", "U",
             guard="the new owner already evicted and wrote back",
             when="requester_wrote_back",
             note="the early WRITEBACK made memory current; recording "
                  "the requester as owner now would strand the block "
                  "(every forward to it would NACK and retry forever)"),
        # evictions
        _row("D", "WRITEBACK", "mem_write dir:=UNOWNED", "U"),
        _row("BUSY_R", "WRITEBACK", "mem_write dir:=UNOWNED", "BUSY_R",
             note="processed immediately (never queued): the in-flight "
                  "forward will be NACKed and its retry must observe "
                  "the clean entry"),
        _row("BUSY_X", "WRITEBACK", "mem_write dir:=UNOWNED", "BUSY_X",
             guard="the recorded owner gave up ownership",
             when="from_owner",
             note="processed immediately (never queued): the in-flight "
                  "forward will be NACKed and its retry must observe "
                  "the clean entry"),
        _row("BUSY_X", "WRITEBACK", "mem_write note_early_wb", "BUSY_X",
             guard="the in-flight transaction's requester wrote back "
                   "before its DIRTY_TRANSFER arrived",
             when="not_from_owner",
             note="the directory does not record this node as owner "
                  "yet; remember the writeback so the transfer "
                  "resolves to UNOWNED"),
        # forward races
        _row("BUSY_R", "FWD_NACK", "retry_txn", "U", retry=True,
             fairness=_FIFO_WB,
             note="the retried request then re-runs against the clean "
                  "entry"),
        _row("BUSY_X", "FWD_NACK", "retry_txn", "U", retry=True,
             fairness=_FIFO_WB,
             note="the retried request then re-runs against the clean "
                  "entry"),
    ]
    home_defaults = {
        "SHARING_WB": "a sharing writeback only completes the "
                      "FETCH_FWD of the transaction in flight",
        "DIRTY_TRANSFER": "a dirty transfer only completes the "
                          "FETCH_INV_FWD of the transaction in flight",
        "WRITEBACK": "only the recorded dirty owner writes back, and "
                     "the entry is DIRTY (or mid-transaction) until "
                     "its writeback arrives",
        "FWD_NACK": "a forward NACK only answers a forward issued by "
                    "the open transaction",
    }
    home = _side(
        "home", "U",
        states=("U", "S", "D", "BUSY_R", "BUSY_X"),
        stable=("U", "S", "D"),
        events=("READ_REQ", "RDEX_REQ", "UPGRADE_REQ", "SHARING_WB",
                "DIRTY_TRANSFER", "WRITEBACK", "FWD_NACK"),
        rows=home_rows, defaults=home_defaults)

    spec = ProtocolSpec(
        protocol="wi",
        description="DASH-style write invalidate under release "
                    "consistency (paper section 2)",
        cache=cache, home=home,
        unused_messages=(
            ("REPL_HINT", "replacement hints are defined but never "
                          "sent: SHARED evictions are silent"),
            ("UPDATE", "update-family message; WI never updates"),
            ("UPD_PROP", "update-family message; WI never updates"),
            ("UPD_ACK", "update-family message; WI never updates"),
            ("WRITER_ACK", "update-family message; WI write completion "
                           "is RDEX_REPLY/UPGRADE_REPLY"),
            ("RECALL", "update-family message; WI recalls ownership "
                       "via FETCH_FWD/FETCH_INV_FWD"),
            ("RECALL_REPLY", "update-family message; WI uses "
                             "SHARING_WB/DIRTY_TRANSFER"),
            ("ATOMIC_REQ", "WI atomics execute in the cache on an "
                           "exclusive copy, not at the home"),
            ("ATOMIC_REPLY", "WI atomics execute in the cache on an "
                             "exclusive copy, not at the home"),
            ("DROP_NOTICE", "update-family message; WI SHARED "
                            "evictions are silent"),
            ("EXCL_REPLY", "MESI-family message; WI has no clean-"
                           "exclusive state and grants exclusivity "
                           "via RDEX_REPLY/UPGRADE_REPLY"),
        ))
    spec.validate()
    return spec


# ----------------------------------------------------------------------
# pure update / competitive update
# ----------------------------------------------------------------------

def pu_spec(competitive: bool = False) -> ProtocolSpec:
    """Pure update (``repro/protocols/update.py``); with
    ``competitive=True``, the CU variant: UPD_PROP rows split on the
    per-line update counter and the threshold drop self-invalidates."""

    proto = "cu" if competitive else "pu"

    # ---- cache side --------------------------------------------------
    cache_rows: List[TransitionRow] = [
        # processor stimuli
        _row("I", "local:read", "send:READ_REQ", "IV_D"),
        _row("V", "local:read", "", "V",
             note="cache hit" + ("; resets the update counter"
                                 if competitive else "")),
        _row("R", "local:read", "", "R", note="cache hit"),
        _row("I", "local:store", "send:READ_REQ", "IV_W",
             note="write-allocate: fetch the block, then write "
                  "through"),
        _row("V", "local:store", "cache_write send:UPDATE", "VW_A",
             note="write-through: local copy updated immediately, the "
                  "home serializes and propagates"),
        _row("R", "local:store", "cache_write retire_done", "R",
             note="retained (effectively private): the write stays "
                  "local"),
        _row("I", "local:atomic", "send:ATOMIC_REQ", "AI_W",
             note="atomics execute at the home memory"),
        _row("V", "local:atomic", "send:ATOMIC_REQ", "AV_W"),
        _row("R", "local:atomic", "send:ATOMIC_REQ", "AR_W"),
        _row("V", "local:evict", "send:DROP_NOTICE", "I",
             note="tell the home to stop sending updates"),
        _row("R", "local:evict", "send:WRITEBACK", "I",
             note="a retained copy is dirty; write it back"),
        _row("VW_A", "local:evict", "send:DROP_NOTICE", "IW_A"),
        _row("AV_W", "local:evict", "send:DROP_NOTICE", "AI_W"),
        _row("AR_W", "local:evict", "send:WRITEBACK", "AI_W"),
        # read fills
        _row("IV_D", "READ_REPLY", "fill", "V"),
        _row("IV_W", "READ_REPLY",
             "install evict cache_write send:UPDATE", "VW_A",
             note="write-allocate fill: install (maybe displacing a "
                  "victim), apply the store, write through"),
        # write-through completion
        _row("VW_A", "WRITER_ACK", "retire_done", "V",
             guard="no retain grant", when="msg_no_retain"),
        _row("VW_A", "WRITER_ACK", "cache:=RETAINED retire_done", "R",
             guard="retain grant: we are the sole sharer, future "
                   "writes stay local",
             when="msg_retain"),
        _row("IW_A", "WRITER_ACK", "retire_done", "I",
             guard="no retain grant", when="msg_no_retain"),
        _row("IW_A", "WRITER_ACK", "send:DROP_NOTICE retire_done", "I",
             guard="retain grant arrived after the line was lost",
             when="msg_retain",
             note="cancel the grant so the home does not record a "
                  "phantom owner"),
        # incoming update propagations (writer acked directly)
        _row("I", "UPD_PROP", "send:UPD_ACK", "I",
             guard="copy already dropped (stale update)"),
        _row("IV_D", "UPD_PROP", "send:UPD_ACK", "IV_D",
             guard="copy already dropped (stale update)"),
        _row("IV_W", "UPD_PROP", "send:UPD_ACK", "IV_W",
             guard="copy already dropped (stale update)"),
        _row("IW_A", "UPD_PROP", "send:UPD_ACK", "IW_A",
             guard="copy already dropped (stale update)"),
        _row("AI_W", "UPD_PROP", "send:UPD_ACK", "AI_W",
             guard="copy already dropped (stale update)"),
        _row(ANY_STATE, "UPD_ACK", "ack"),
        # recalls of a retained copy
        _row("R", "RECALL", "cache:=VALID send:RECALL_REPLY", "V",
             note="flush the dirty words home; we stay a sharer"),
        _row("AR_W", "RECALL", "cache:=VALID send:RECALL_REPLY",
             "AV_W",
             note="our own home-side atomic recalls our retained copy "
                  "first"),
        _row("I", "RECALL", "send:FWD_NACK", "I",
             guard="already evicted; our WRITEBACK is in flight",
             retry=True, fairness=_FIFO_WB),
        _row("IV_D", "RECALL", "send:FWD_NACK", "IV_D",
             guard="already evicted; our WRITEBACK is in flight",
             retry=True, fairness=_FIFO_WB),
        _row("IV_W", "RECALL", "send:FWD_NACK", "IV_W",
             guard="already evicted; our WRITEBACK is in flight",
             retry=True, fairness=_FIFO_WB),
        _row("AI_W", "RECALL", "send:FWD_NACK", "AI_W",
             guard="already evicted; our WRITEBACK is in flight",
             retry=True, fairness=_FIFO_WB),
        # home-side atomic completion
        _row("AV_W", "ATOMIC_REPLY", "cache_write", "V",
             note="our own copy gets the new value with the reply"),
        _row("AI_W", "ATOMIC_REPLY", "", "I"),
    ]
    upd_prop_live = [("V", "V"), ("VW_A", "VW_A"), ("AV_W", "AV_W")]
    if competitive:
        drop_to = {"V": "I", "VW_A": "IW_A", "AV_W": "AI_W"}
        for state, _ in upd_prop_live:
            cache_rows.append(_row(
                state, "UPD_PROP", "cache_write send:UPD_ACK", state,
                guard="update counter below the threshold",
                when="counter_below"))
            cache_rows.append(_row(
                state, "UPD_PROP",
                "invalidate send:DROP_NOTICE send:UPD_ACK",
                drop_to[state],
                guard="update counter reaches the threshold",
                when="counter_at_threshold",
                note="competitive drop: self-invalidate and ask the "
                     "home to stop updating us"))
    else:
        for state, _ in upd_prop_live:
            cache_rows.append(_row(
                state, "UPD_PROP", "cache_write send:UPD_ACK", state))
    cache_impossible = [
        Impossible("R", "UPD_PROP",
                   "a retained owner is the only sharer; the home has "
                   "no one else to propagate for"),
        Impossible("AR_W", "UPD_PROP",
                   "a retained owner is the only sharer; the home has "
                   "no one else to propagate for"),
        Impossible("V", "RECALL",
                   "recalls target the recorded dirty owner; a VALID "
                   "copy answered (or never received) the recall"),
        Impossible("VW_A", "RECALL",
                   "recalls target the recorded dirty owner; a VALID "
                   "copy answered (or never received) the recall"),
        Impossible("IW_A", "RECALL",
                   "recalls target the recorded dirty owner; a VALID "
                   "copy answered (or never received) the recall"),
        Impossible("AV_W", "RECALL",
                   "recalls target the recorded dirty owner; a VALID "
                   "copy answered (or never received) the recall"),
        Impossible("AR_W", "ATOMIC_REPLY",
                   "the home recalls our retained copy (AR_W -> AV_W) "
                   "before performing the atomic"),
    ]
    cache_defaults = {
        "READ_REPLY": "a read reply only answers this node's "
                      "outstanding READ_REQ (IV_D / IV_W)",
        "WRITER_ACK": "a writer ack only answers this node's "
                      "outstanding write-through (VW_A / IW_A)",
        "ATOMIC_REPLY": "an atomic reply only answers this node's "
                        "outstanding ATOMIC_REQ (AI_W / AV_W)",
    }
    cache = _side(
        "cache", "I",
        states=("I", "V", "R", "IV_D", "IV_W", "VW_A", "IW_A", "AI_W",
                "AV_W", "AR_W"),
        stable=("I", "V", "R"),
        events=("local:read", "local:store", "local:atomic",
                "local:evict", "READ_REPLY", "UPD_PROP", "UPD_ACK",
                "WRITER_ACK", "RECALL", "ATOMIC_REPLY"),
        rows=cache_rows, impossible=cache_impossible,
        defaults=cache_defaults)

    # ---- home (directory) side ---------------------------------------
    home_rows: List[TransitionRow] = [
        # reads
        _row("U", "READ_REQ",
             "begin_txn send:READ_REPLY dir:=SHARED end_txn", "S"),
        _row("S", "READ_REQ",
             "begin_txn send:READ_REPLY dir:=SHARED end_txn", "S"),
        _row("D", "READ_REQ", "begin_txn send:RECALL", "D_R",
             note="the retained copy is dirty; recall it before "
                  "serving memory"),
        _row("D_R", "READ_REQ", "begin_txn", "D_R",
             note="queued on the busy directory entry"),
        # write-throughs
        _row("S", "UPDATE",
             "begin_txn mem_write send:UPD_PROP send:WRITER_ACK "
             "end_txn", "S",
             guard="other sharers hold copies",
             when="other_sharers",
             note="sharers ack directly to the writer (release "
                  "consistency)"),
        _row("S", "UPDATE",
             "begin_txn mem_write dir:=DIRTY send:WRITER_ACK end_txn",
             "D",
             guard="writer is the sole sharer and retain-private is "
                   "enabled",
             when="sole_sharer_retain",
             note="the writer is told to retain: the block is "
                  "effectively private and future writes stay local"),
        _row("S", "UPDATE",
             "begin_txn mem_write send:WRITER_ACK end_txn", "S",
             guard="writer is the sole sharer (retain-private "
                   "disabled)",
             when="sole_sharer_no_retain"),
        _row("D", "UPDATE", "begin_txn send:RECALL", "D_R",
             guard="writer is not the recorded owner (defensive "
                   "recall)",
             note="the retaining owner itself never writes through; "
                  "the controller treats that as a protocol error"),
        _row("D_R", "UPDATE", "begin_txn", "D_R",
             note="queued on the busy directory entry"),
        # home-side atomics
        _row("U", "ATOMIC_REQ",
             "begin_txn atomic_op mem_write send:ATOMIC_REPLY end_txn",
             "U"),
        _row("S", "ATOMIC_REQ",
             "begin_txn atomic_op mem_write send:ATOMIC_REPLY "
             "send:UPD_PROP end_txn", "S",
             note="sharers' acks go to the requester"),
        _row("D", "ATOMIC_REQ", "begin_txn send:RECALL", "D_R"),
        _row("D_R", "ATOMIC_REQ", "begin_txn", "D_R",
             note="queued on the busy directory entry"),
        # recall completion
        _row("D_R", "RECALL_REPLY", "mem_write dir:=SHARED retry_txn",
             "S",
             note="the ex-owner stays a sharer; the stalled "
                  "transaction retries against the SHARED entry"),
        # evictions / drops
        _row("D", "WRITEBACK", "mem_write dir:=UNOWNED", "U"),
        _row("D_R", "WRITEBACK", "mem_write dir:=UNOWNED", "D_R",
             note="processed immediately (never queued): the "
                  "outstanding RECALL will be NACKed and its retry "
                  "must observe the clean entry"),
        _row("U", "DROP_NOTICE", "", "U",
             note="stale drop; sharer bookkeeping only"),
        _row("S", "DROP_NOTICE", "", "S",
             guard="other sharers remain",
             when="other_sharers_remain"),
        _row("S", "DROP_NOTICE", "dir:=UNOWNED", "U",
             guard="the last sharer dropped",
             when="last_sharer"),
        _row("D", "DROP_NOTICE", "dir:=UNOWNED", "U",
             guard="retain-cancel from the recorded owner",
             when="from_owner",
             note="memory is current: the owner never wrote locally in "
                  "RETAINED state"),
        _row("D", "DROP_NOTICE", "", "D",
             guard="stale drop from a non-owner",
             when="not_from_owner"),
        _row("D_R", "DROP_NOTICE", "dir:=UNOWNED", "D_R",
             guard="the recalled owner dropped its line before the "
                   "RECALL reached it",
             when="from_owner",
             note="clears the vanished owner so the FWD_NACK retry "
                  "re-runs against a clean entry instead of "
                  "re-recalling a node at I forever"),
        _row("D_R", "DROP_NOTICE", "", "D_R",
             guard="stale drop from a non-owner",
             when="not_from_owner",
             note="sharer bookkeeping only; the open transaction is "
                  "unaffected"),
        # recall races
        _row("D_R", "FWD_NACK", "retry_txn", "U", retry=True,
             fairness=_FIFO_WB,
             note="the retried request then re-runs against the clean "
                  "entry"),
    ]
    home_defaults = {
        "UPDATE": "a write-through comes from a node holding a VALID "
                  "copy, which the directory records as a sharer (so "
                  "the entry is SHARED or DIRTY)",
        "RECALL_REPLY": "a recall reply only completes the RECALL of "
                        "the transaction in flight",
        "WRITEBACK": "only the retaining (dirty) owner writes back",
        "FWD_NACK": "a recall NACK only answers a RECALL issued by "
                    "the open transaction",
    }
    home = _side(
        "home", "U",
        states=("U", "S", "D", "D_R"),
        stable=("U", "S", "D"),
        events=("READ_REQ", "UPDATE", "ATOMIC_REQ", "RECALL_REPLY",
                "WRITEBACK", "DROP_NOTICE", "FWD_NACK"),
        rows=home_rows, defaults=home_defaults)

    wi_family_unused = tuple(
        (name, "write-invalidate-family message; the update protocols "
               "never invalidate remotely")
        for name in ("FETCH_FWD", "OWNER_DATA", "SHARING_WB",
                     "RDEX_REQ", "RDEX_REPLY", "UPGRADE_REQ",
                     "UPGRADE_REPLY", "INV", "INV_ACK",
                     "FETCH_INV_FWD", "OWNER_DATA_EX",
                     "DIRTY_TRANSFER"))
    spec = ProtocolSpec(
        protocol=proto,
        description=("competitive update: pure update plus "
                     "threshold-based self-invalidation (paper "
                     "section 3.1)" if competitive else
                     "pure update with retain-private (paper section "
                     "3.1)"),
        cache=cache, home=home,
        unused_messages=(
            ("REPL_HINT", "replacement hints are defined but never "
                          "sent; evictions use DROP_NOTICE/WRITEBACK"),
            ("EXCL_REPLY", "MESI-family message; the update protocols "
                           "have no clean-exclusive state"),
        ) + wi_family_unused)
    spec.validate()
    return spec


def cu_spec() -> ProtocolSpec:
    """Competitive update (paper section 3.1, threshold 4)."""
    return pu_spec(competitive=True)


# ----------------------------------------------------------------------
# hybrid: per-block WI / CU, built by merging the two tables
# ----------------------------------------------------------------------

_WI_GUARD = "WI-managed block"
_UPD_GUARD = "update-managed block"

_SEPARATION = ("per-block protocol separation: a block is managed by "
               "exactly one base protocol, and neither the "
               "write-invalidate nor the update machine pairs this "
               "state with this event")


def _merge_sides(a: SideSpec, b: SideSpec) -> SideSpec:
    """Merge the WI side ``a`` and the update side ``b`` into one
    hybrid side.  Rows whose (state, event) exists in both sources get
    mutually exclusive per-block guards; uncovered pairs inherit the
    sources' impossible entries or an auto-generated cross-protocol
    separation entry."""
    if a.initial != b.initial:
        raise SpecError(
            f"cannot merge sides {a.name!r}: initial states differ "
            f"({a.initial!r} vs {b.initial!r})")
    states = a.states + tuple(s for s in b.states if s not in a.states)
    stable = a.stable + tuple(s for s in b.stable if s not in a.stable)
    events = a.events + tuple(e for e in b.events if e not in a.events)

    def keys(side: SideSpec) -> set:
        out = set()
        for r in side.rows:
            for s in (side.states if r.state == ANY_STATE
                      else (r.state,)):
                out.add((s, r.event))
        return out

    collide = keys(a) & keys(b)

    def reguard(row: TransitionRow, label: str) -> TransitionRow:
        if (row.state, row.event) not in collide:
            if row.state == ANY_STATE and any(
                    (s, row.event) in collide for s in states):
                raise SpecError(
                    f"merge of {a.name!r}: wildcard row for "
                    f"{row.event} collides; split it per state first")
            return row
        guard = (label if row.guard is None
                 else f"{label}; {row.guard}")
        return TransitionRow(state=row.state, event=row.event,
                             actions=row.actions,
                             next_state=row.next_state, guard=guard,
                             retry=row.retry, fairness=row.fairness,
                             note=row.note, when=row.when)

    rows = tuple([reguard(r, _WI_GUARD) for r in a.rows]
                 + [reguard(r, _UPD_GUARD) for r in b.rows])

    covered = set()
    for r in rows:
        for s in (states if r.state == ANY_STATE else (r.state,)):
            covered.add((s, r.event))
    imp_a = {(i.state, i.event): i for i in a.impossible}
    imp_b = {(i.state, i.event): i for i in b.impossible}
    impossible: List[Impossible] = []
    for ev in events:
        if ev.startswith(LOCAL_PREFIX):
            continue
        for s in states:
            if (s, ev) in covered:
                continue
            reasons = []
            for table in (imp_a, imp_b):
                entry = table.get((s, ev))
                if entry is not None and entry.reason not in reasons:
                    reasons.append(entry.reason)
            impossible.append(Impossible(
                s, ev, " / ".join(reasons) if reasons else _SEPARATION))
    return SideSpec(name=a.name, initial=a.initial, states=states,
                    stable=stable, events=events, rows=rows,
                    impossible=tuple(impossible))


def hybrid_spec() -> ProtocolSpec:
    """Per-block WI/CU hybrid (paper section 5): each block is managed
    by exactly one base protocol, so the machine is the disjoint union
    of the WI and CU machines over a shared state/event namespace."""
    wi = wi_spec()
    cu = pu_spec(competitive=True)
    spec = ProtocolSpec(
        protocol="hybrid",
        description="per-block hybrid: write-invalidate or competitive "
                    "update chosen per block (paper section 5)",
        cache=_merge_sides(wi.cache, cu.cache),
        home=_merge_sides(wi.home, cu.home),
        unused_messages=(
            ("REPL_HINT", "replacement hints are defined but never "
                          "sent by any protocol"),
            ("EXCL_REPLY", "MESI-family message; neither hybrid base "
                           "protocol has a clean-exclusive state"),
        ))
    spec.validate()
    return spec
