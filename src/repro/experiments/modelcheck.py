"""``python -m repro.experiments modelcheck``: the exhaustive checker.

Three modes:

* default sweep -- explore every bundled litmus program under WI, PU,
  CU and HYBRID, reporting explored-state counts; any violation writes
  a replayable counterexample JSON and fails the run;
* ``--mutants`` -- activate each seeded protocol mutation on its target
  program/protocol, demand that the checker finds a violation, save the
  minimized counterexample and verify it reproduces under replay;
* ``--replay FILE`` -- re-execute a saved counterexample with a
  human-readable transition trace (exit 0 iff the recorded violation
  reproduces).

The litmus programs are also registered as campaign workloads
(``modelcheck-<program>``), so sweeps ride the RunSpec result cache
like the ``check-*`` suite does.
"""

from __future__ import annotations

import argparse
import difflib
import json
import os
import sys
import time
from typing import Iterable, List, Optional, Tuple

from repro.campaign import RunSpec, register_workload
from repro.config import Protocol
from repro.modelcheck import (
    MODEL_CHECK_PROTOCOLS, MUTATIONS, PROGRAMS, explore, get_mutation,
    get_program, replay_file, save_counterexample,
)


# ----------------------------------------------------------------------
# campaign workloads: exploration as cacheable specs
# ----------------------------------------------------------------------

def _deterministic_result(litmus, config):
    """One stock (uncontrolled, deterministic) run for the RunResult
    the campaign layer stores."""
    from repro.runtime.machine import Machine

    machine = Machine(config)
    litmus.build(machine)
    return machine.run()


def _make_workload(name: str):
    def _workload(spec: RunSpec):
        litmus = get_program(name)
        res = explore(litmus, config=spec.config)
        if res.violation is not None:
            raise AssertionError(
                f"modelcheck-{name}: {res.violation.kind}: "
                f"{res.violation.detail}")
        metrics = {"mc_states": res.states,
                   "mc_schedules": res.schedules,
                   "mc_choice_points": res.choice_points,
                   "mc_complete": int(res.complete)}
        return _deterministic_result(litmus, spec.config), metrics
    _workload.__name__ = f"_wl_modelcheck_{name}"
    return _workload


for _name in PROGRAMS:
    register_workload(f"modelcheck-{_name}")(_make_workload(_name))


def modelcheck_specs() -> List[Tuple[str, RunSpec]]:
    """Every litmus program x protocol as labelled campaign specs."""
    labelled: List[Tuple[str, RunSpec]] = []
    for proto in MODEL_CHECK_PROTOCOLS:
        for name, litmus in PROGRAMS.items():
            labelled.append((
                f"{name} [{proto.short}]",
                RunSpec.make(f"modelcheck-{name}",
                             litmus.config(proto))))
    return labelled


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-experiments modelcheck",
        description="Exhaustively explore litmus-program interleavings "
                    "under WI/PU/CU/HYBRID with per-state invariant "
                    "checking.")
    p.add_argument("--program", action="append", metavar="NAME",
                   help="litmus program(s) to explore (default: all); "
                        f"choose from {', '.join(PROGRAMS)}")
    p.add_argument("--protocol", action="append", metavar="PROTO",
                   help="protocol(s) to explore (default: wi,pu,cu,"
                        "hybrid)")
    p.add_argument("--mutants", action="store_true",
                   help="validate the checker against the seeded "
                        "protocol mutations instead of sweeping")
    p.add_argument("--mutant", action="append", metavar="NAME",
                   help="with --mutants: restrict to these mutations; "
                        f"choose from {', '.join(MUTATIONS)}")
    p.add_argument("--replay", metavar="FILE",
                   help="re-execute a saved counterexample schedule")
    p.add_argument("--max-schedules", type=int, default=20_000,
                   help="schedule budget per (program, protocol) "
                        "(default 20000)")
    p.add_argument("--max-events", type=int, default=50_000,
                   help="per-run event budget / livelock valve "
                        "(default 50000)")
    p.add_argument("--no-dedup", action="store_true",
                   help="disable visited-state pruning (debugging)")
    p.add_argument("--out", default="modelcheck-ce", metavar="DIR",
                   help="directory for counterexample files "
                        "(default modelcheck-ce)")
    p.add_argument("--bench-json", metavar="FILE", default=None,
                   help="write sweep timings (per program x protocol "
                        "and total wall-clock) as JSON for CI "
                        "artifacts")
    p.add_argument("--list", action="store_true",
                   help="list litmus programs and mutations, then exit")
    p.add_argument("--quiet", action="store_true")
    return p


def _parse_protocols(names: Optional[List[str]]) -> List[Protocol]:
    if not names:
        return list(MODEL_CHECK_PROTOCOLS)
    known = [p.value for p in MODEL_CHECK_PROTOCOLS]
    if _reject_unknown("protocol", [n.lower() for n in names], known):
        return []
    return [Protocol.parse(n) for n in names]


def _reject_unknown(kind: str, names: Iterable[str],
                    known: Iterable[str]) -> bool:
    """Print a did-you-mean line per unknown name; True if any."""
    known = list(known)
    bad = [n for n in names if n not in known]
    for name in bad:
        close = difflib.get_close_matches(name, known, n=3, cutoff=0.4)
        hint = f"; did you mean {', '.join(close)}?" if close else ""
        print(f"unknown {kind} {name!r}{hint}", file=sys.stderr)
    if bad:
        print(f"choose from: {', '.join(known)}", file=sys.stderr)
    return bool(bad)


def _save_ce(out_dir: str, filename: str, result, quiet: bool) -> str:
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, filename)
    save_counterexample(path, result)
    if not quiet:
        print(f"  counterexample -> {path}")
        print(f"  replay with: python -m repro.experiments modelcheck "
              f"--replay {path}")
    return path


def _sweep(args) -> int:
    programs = args.program or list(PROGRAMS)
    if _reject_unknown("program", programs, PROGRAMS):
        return 2
    protocols = _parse_protocols(args.protocol)
    if not protocols:
        return 2
    failed = 0
    incomplete = 0
    timings = {}
    sweep_start = time.perf_counter()
    for name in programs:
        litmus = get_program(name)
        for proto in protocols:
            t0 = time.perf_counter()
            res = explore(litmus, protocol=proto,
                          max_schedules=args.max_schedules,
                          max_events=args.max_events,
                          dedup=not args.no_dedup)
            elapsed = time.perf_counter() - t0
            timings[f"{name}[{proto.short}]"] = {
                "elapsed_s": round(elapsed, 4),
                "schedules": res.schedules,
                "states": res.states,
                "choice_points": res.choice_points,
                "pruned": res.dedup_hits,
            }
            status = "ok"
            if res.violation is not None:
                status = f"VIOLATION {res.violation.kind}"
                failed += 1
            elif not res.complete:
                status = "INCOMPLETE (schedule budget exhausted)"
                incomplete += 1
            if not args.quiet or status != "ok":
                print(f"{name:<8} [{proto.short}] "
                      f"schedules={res.schedules:<6} "
                      f"states={res.states:<7} "
                      f"choice-pts={res.choice_points:<3} "
                      f"pruned={res.dedup_hits:<6} {status}")
            if res.violation is not None:
                print(f"  {res.violation.detail}")
                _save_ce(args.out, f"{name}-{proto.short}.json", res,
                         args.quiet)
    if args.bench_json:
        payload = {
            "elapsed_s": round(time.perf_counter() - sweep_start, 4),
            "explorations": timings,
            "violations": failed,
            "incomplete": incomplete,
        }
        with open(args.bench_json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        if not args.quiet:
            print(f"  [wrote {args.bench_json}]", file=sys.stderr)
    if failed or incomplete:
        print(f"modelcheck: {failed} violation(s), "
              f"{incomplete} incomplete exploration(s)")
        return 1
    if not args.quiet:
        print("modelcheck: all explorations exhaustive, no violations")
    return 0


def _mutants(args) -> int:
    names = args.mutant or list(MUTATIONS)
    if _reject_unknown("mutation", names, MUTATIONS):
        return 2
    all_ok = True
    for name in names:
        mut = get_mutation(name)
        litmus = get_program(mut.program)
        res = explore(litmus, protocol=mut.protocol, mutation=name,
                      max_schedules=args.max_schedules,
                      max_events=args.max_events,
                      dedup=not args.no_dedup)
        if res.violation is None:
            print(f"{name:<24} NOT DETECTED "
                  f"({res.schedules} schedules explored)")
            all_ok = False
            continue
        path = _save_ce(args.out, f"mutant-{name}.json", res, True)
        reproduced = replay_file(path, quiet=True) == 0
        verdict = ("detected, replay reproduces" if reproduced
                   else "detected, but replay FAILED to reproduce")
        if not reproduced:
            all_ok = False
        print(f"{name:<24} {verdict}")
        print(f"  on {mut.program} [{mut.protocol.short}] after "
              f"{res.schedules} schedule(s): {res.violation.kind}")
        print(f"  minimized schedule ({len(res.choices or ())} forced "
              f"choice(s)) -> {path}")
    if all_ok:
        print("modelcheck: every seeded mutation caught and replayed")
    return 0 if all_ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        print("litmus programs:")
        for name, prog in PROGRAMS.items():
            print(f"  {name:<10} ({prog.procs} nodes) "
                  f"{prog.description}")
        print("mutations:")
        for name, mut in MUTATIONS.items():
            print(f"  {name:<24} [{mut.program}/"
                  f"{mut.protocol.short}] {mut.description}")
        return 0
    if args.replay:
        return replay_file(args.replay, quiet=args.quiet)
    if args.mutants:
        return _mutants(args)
    return _sweep(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
