"""Per-figure experiment runners, expressed as campaign spec lists.

Figure -> experiment mapping (paper section 4):

* Fig 8  -- lock acquire/release latency vs P, tk/MCS/uc x i/u/c
* Fig 9  -- lock miss traffic at 32p, stacked by category
* Fig 10 -- lock update traffic at 32p (PU/CU), stacked by category
* Fig 11 -- barrier episode latency vs P, cb/db/tb x i/u/c
* Fig 12 -- barrier miss traffic at 32p
* Fig 13 -- barrier update traffic at 32p
* Fig 14 -- reduction latency vs P, sr/pr x i/u/c (ideal sync)
* Fig 15 -- reduction miss traffic at 32p
* Fig 16 -- reduction update traffic at 32p

All latency figures sweep the paper's machine sizes (1..32); traffic
figures run the 32-processor point.  ``scale`` uniformly shrinks the
iteration counts (latencies are per-iteration averages, so the series
keep their shape; traffic counts scale linearly and the *distribution*
across categories is what the paper's bar charts show).

Every figure is split into a **spec generator** (``figure_points``:
the list of :class:`~repro.campaign.RunSpec` values the figure needs,
each tagged with its bar/line label) and a **table builder**
(``figure_table``: fold the campaign records back into a
:class:`~repro.metrics.tables.Series` or
:class:`~repro.metrics.tables.StackedBars`).  The ``fig8..fig16``
entry points wire the two through a :class:`~repro.campaign.
CampaignRunner`, so the same figure can run serially, in parallel
(``--jobs``), or entirely from a warm result cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.campaign import CampaignRunner, RunRecord, RunSpec
from repro.config import (
    ALL_PROTOCOLS, MachineConfig, PAPER_MACHINE_SIZES, Protocol,
    ExperimentScale,
)
from repro.metrics.tables import Series, StackedBars
from repro.sync.barriers import BARRIER_KINDS
from repro.sync.locks import LOCK_KINDS
from repro.sync.reductions import REDUCTION_KINDS

#: categories of the miss bar charts (figures 9, 12, 15), in the
#: paper's stacking order; "upgrade" is the exclusive-request class
MISS_CATEGORIES = ["cold", "true", "false", "eviction", "drop", "upgrade"]

#: categories of the update bar charts (figures 10, 13, 16); the
#: replacement class is included even though (as in the paper) it is
#: essentially never observed
UPDATE_CATEGORIES = ["useful", "false", "proliferation", "replacement",
                     "termination", "drop"]

UPDATE_PROTOCOLS = (Protocol.PU, Protocol.CU)


def combo_label(alg: str, protocol: Protocol) -> str:
    """The paper's bar labels: e.g. 'tk-i', 'MCS-u', 'db-c'."""
    return f"{alg}-{protocol.short}"


def _miss_counts(record: RunRecord) -> Dict[str, int]:
    counts = dict(record.sim.misses)
    counts["upgrade"] = counts.pop("exclusive_requests", 0)
    return counts


# ----------------------------------------------------------------------
# figure definitions
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class FigureDef:
    """Shape of one figure: workload, algorithm kinds, table style."""

    fid: str
    workload: str              # campaign workload id
    kinds: Tuple[str, ...]     # algorithm kinds (the bar/line groups)
    style: str                 # "latency" | "miss" | "update"
    title: str
    ylabel: str = ""

    @property
    def protocols(self) -> Tuple[Protocol, ...]:
        return (UPDATE_PROTOCOLS if self.style == "update"
                else ALL_PROTOCOLS)


FIGURE_DEFS: Dict[str, FigureDef] = {d.fid: d for d in (
    FigureDef("fig8", "lock", LOCK_KINDS, "latency",
              "Figure 8: performance of spin locks in synthetic program",
              "avg acquire-release latency (cycles)"),
    FigureDef("fig9", "lock", LOCK_KINDS, "miss",
              "Figure 9: miss traffic of spin locks"),
    FigureDef("fig10", "lock", LOCK_KINDS, "update",
              "Figure 10: update traffic of spin locks"),
    FigureDef("fig11", "barrier", BARRIER_KINDS, "latency",
              "Figure 11: performance of barriers in synthetic program",
              "avg barrier episode latency (cycles)"),
    FigureDef("fig12", "barrier", BARRIER_KINDS, "miss",
              "Figure 12: miss traffic of barriers"),
    FigureDef("fig13", "barrier", BARRIER_KINDS, "update",
              "Figure 13: update traffic of barriers"),
    FigureDef("fig14", "reduction", REDUCTION_KINDS, "latency",
              "Figure 14: performance of reductions in synthetic program",
              "avg reduction latency (cycles)"),
    FigureDef("fig15", "reduction", REDUCTION_KINDS, "miss",
              "Figure 15: miss traffic of reductions"),
    FigureDef("fig16", "reduction", REDUCTION_KINDS, "update",
              "Figure 16: update traffic of reductions"),
)}


@dataclass(frozen=True)
class FigurePoint:
    """One spec of a figure, tagged with where it lands in the table."""

    label: str                 # bar / line label ("tk-i", "db-u", ...)
    x: Optional[int]           # machine size for latency figures
    spec: RunSpec


# ----------------------------------------------------------------------
# spec generation
# ----------------------------------------------------------------------

def _checked_config(protocol: Protocol, P: int,
                    sanitize: bool) -> MachineConfig:
    return MachineConfig(num_procs=P, protocol=protocol,
                         enable_sanitizer=sanitize,
                         enable_race_detector=sanitize)


def _workload_params(workload: str, scale: ExperimentScale,
                     **kw) -> Dict[str, object]:
    if workload == "lock":
        return {"total_acquires": scale.lock_total_acquires, **kw}
    if workload == "barrier":
        return {"episodes": scale.barrier_episodes, **kw}
    if workload == "reduction":
        return {"iterations": scale.reduction_iters, **kw}
    raise ValueError(f"unknown figure workload {workload!r}")


def figure_points(fid: str,
                  scale: ExperimentScale = None,
                  sizes: Tuple[int, ...] = PAPER_MACHINE_SIZES,
                  P: int = 32,
                  sanitize: bool = False,
                  **kw) -> List[FigurePoint]:
    """The figure's campaign: every (label, machine size, spec)."""
    fdef = FIGURE_DEFS[fid]
    if scale is None:
        scale = ExperimentScale.paper()
    params = _workload_params(fdef.workload, scale, **kw)
    xs = sizes if fdef.style == "latency" else (P,)
    points = []
    for kind in fdef.kinds:
        for proto in fdef.protocols:
            label = combo_label(kind, proto)
            for x in xs:
                spec = RunSpec.make(
                    fdef.workload, _checked_config(proto, x, sanitize),
                    kind=kind, **params)
                points.append(FigurePoint(
                    label, x if fdef.style == "latency" else None, spec))
    return points


# ----------------------------------------------------------------------
# table building
# ----------------------------------------------------------------------

def figure_table(fid: str, points: List[FigurePoint],
                 records: List[RunRecord]):
    """Fold campaign records back into the figure's dataset."""
    fdef = FIGURE_DEFS[fid]
    if fdef.style == "latency":
        series = Series(title=fdef.title, xlabel="procs",
                        ylabel=fdef.ylabel)
        for point, record in zip(points, records):
            series.add(point.label, point.x,
                       record.metrics["avg_latency"])
        return series
    P = points[0].spec.config.num_procs if points else 0
    title = f"{fdef.title} ({P} processors)"
    categories = (MISS_CATEGORIES if fdef.style == "miss"
                  else UPDATE_CATEGORIES)
    bars = StackedBars(title=title, categories=categories)
    for point, record in zip(points, records):
        counts = (_miss_counts(record) if fdef.style == "miss"
                  else dict(record.sim.updates))
        bars.add(point.label, counts)
    return bars


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------

def run_figure(fid: str,
               scale: ExperimentScale = None,
               sizes: Tuple[int, ...] = PAPER_MACHINE_SIZES,
               P: int = 32,
               progress: Optional[Callable[[str], None]] = None,
               runner: Optional[CampaignRunner] = None,
               **kw):
    """Generate the figure's specs, run them, build its table.

    ``runner`` supplies parallelism and the result cache; by default a
    serial uncached runner is used, reproducing the original one-shot
    behaviour.  Failed specs raise :class:`~repro.campaign.
    CampaignError` with the captured per-spec tracebacks.
    """
    points = figure_points(fid, scale=scale, sizes=sizes, P=P, **kw)
    if runner is None:
        runner = CampaignRunner()
    hook = None
    if progress is not None:
        def hook(i: int, spec: RunSpec, record: RunRecord) -> None:
            point = points[i]
            at = f" P={point.x}" if point.x is not None else ""
            state = "" if record.ok else " FAILED"
            cached = " (cached)" if record.cached else ""
            progress(f"{fid} {point.label}{at}{cached}{state}")
    report = runner.run([pt.spec for pt in points], progress=hook)
    report.raise_on_failure()
    return figure_table(fid, points, report.records)


def _figure_entry(fid: str) -> Callable:
    fdef = FIGURE_DEFS[fid]

    if fdef.style == "latency":
        def entry(scale: ExperimentScale = None,
                  sizes: Tuple[int, ...] = PAPER_MACHINE_SIZES,
                  progress: Optional[Callable[[str], None]] = None,
                  runner: Optional[CampaignRunner] = None,
                  **kw) -> Series:
            return run_figure(fid, scale=scale, sizes=sizes,
                              progress=progress, runner=runner, **kw)
    else:
        def entry(scale: ExperimentScale = None,
                  P: int = 32,
                  progress: Optional[Callable[[str], None]] = None,
                  runner: Optional[CampaignRunner] = None,
                  **kw) -> StackedBars:
            return run_figure(fid, scale=scale, P=P,
                              progress=progress, runner=runner, **kw)

    entry.__name__ = fid
    entry.__qualname__ = fid
    entry.__doc__ = f"{fdef.title} (see module docstring)."
    return entry


fig8_lock_latency = _figure_entry("fig8")
fig9_lock_misses = _figure_entry("fig9")
fig10_lock_updates = _figure_entry("fig10")
fig11_barrier_latency = _figure_entry("fig11")
fig12_barrier_misses = _figure_entry("fig12")
fig13_barrier_updates = _figure_entry("fig13")
fig14_reduction_latency = _figure_entry("fig14")
fig15_reduction_misses = _figure_entry("fig15")
fig16_reduction_updates = _figure_entry("fig16")

#: figure id -> runner entry point for the CLI
FIGURES: Dict[str, Callable] = {
    "fig8": fig8_lock_latency,
    "fig9": fig9_lock_misses,
    "fig10": fig10_lock_updates,
    "fig11": fig11_barrier_latency,
    "fig12": fig12_barrier_misses,
    "fig13": fig13_barrier_updates,
    "fig14": fig14_reduction_latency,
    "fig15": fig15_reduction_misses,
    "fig16": fig16_reduction_updates,
}
