"""Per-figure experiment runners.

Figure -> experiment mapping (paper section 4):

* Fig 8  -- lock acquire/release latency vs P, tk/MCS/uc x i/u/c
* Fig 9  -- lock miss traffic at 32p, stacked by category
* Fig 10 -- lock update traffic at 32p (PU/CU), stacked by category
* Fig 11 -- barrier episode latency vs P, cb/db/tb x i/u/c
* Fig 12 -- barrier miss traffic at 32p
* Fig 13 -- barrier update traffic at 32p
* Fig 14 -- reduction latency vs P, sr/pr x i/u/c (ideal sync)
* Fig 15 -- reduction miss traffic at 32p
* Fig 16 -- reduction update traffic at 32p

All latency figures sweep the paper's machine sizes (1..32); traffic
figures run the 32-processor point.  ``scale`` uniformly shrinks the
iteration counts (latencies are per-iteration averages, so the series
keep their shape; traffic counts scale linearly and the *distribution*
across categories is what the paper's bar charts show).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.config import (
    ALL_PROTOCOLS, MachineConfig, PAPER_MACHINE_SIZES, Protocol,
    ExperimentScale,
)
from repro.metrics.tables import Series, StackedBars
from repro.sync.barriers import BARRIER_KINDS
from repro.sync.locks import LOCK_KINDS
from repro.sync.reductions import REDUCTION_KINDS
from repro.workloads import (
    run_barrier_workload, run_lock_workload, run_reduction_workload,
)

#: categories of the miss bar charts (figures 9, 12, 15), in the
#: paper's stacking order; "upgrade" is the exclusive-request class
MISS_CATEGORIES = ["cold", "true", "false", "eviction", "drop", "upgrade"]

#: categories of the update bar charts (figures 10, 13, 16); the
#: replacement class is included even though (as in the paper) it is
#: essentially never observed
UPDATE_CATEGORIES = ["useful", "false", "proliferation", "replacement",
                     "termination", "drop"]

UPDATE_PROTOCOLS = (Protocol.PU, Protocol.CU)


def combo_label(alg: str, protocol: Protocol) -> str:
    """The paper's bar labels: e.g. 'tk-i', 'MCS-u', 'db-c'."""
    return f"{alg}-{protocol.short}"


def _miss_counts(result) -> Dict[str, int]:
    counts = dict(result.misses)
    counts["upgrade"] = counts.pop("exclusive_requests", 0)
    return counts


# ----------------------------------------------------------------------
# locks (figures 8, 9, 10)
# ----------------------------------------------------------------------

def _checked_config(protocol: Protocol, P: int,
                    sanitize: bool) -> MachineConfig:
    return MachineConfig(num_procs=P, protocol=protocol,
                         enable_sanitizer=sanitize,
                         enable_race_detector=sanitize)


def _lock_run(protocol: Protocol, kind: str, P: int,
              scale: ExperimentScale, sanitize: bool = False, **kw):
    cfg = _checked_config(protocol, P, sanitize)
    return run_lock_workload(cfg, kind,
                             total_acquires=scale.lock_total_acquires,
                             **kw)


def fig8_lock_latency(scale: ExperimentScale = ExperimentScale.paper(),
                      sizes: Tuple[int, ...] = PAPER_MACHINE_SIZES,
                      progress: Optional[Callable[[str], None]] = None,
                      **kw) -> Series:
    series = Series(
        title="Figure 8: performance of spin locks in synthetic program",
        xlabel="procs",
        ylabel="avg acquire-release latency (cycles)")
    for kind in LOCK_KINDS:
        for proto in ALL_PROTOCOLS:
            label = combo_label(kind, proto)
            for P in sizes:
                if progress:
                    progress(f"fig8 {label} P={P}")
                res = _lock_run(proto, kind, P, scale, **kw)
                series.add(label, P, res.avg_latency)
    return series


def fig9_lock_misses(scale: ExperimentScale = ExperimentScale.paper(),
                     P: int = 32,
                     progress: Optional[Callable[[str], None]] = None,
                     **kw) -> StackedBars:
    bars = StackedBars(
        title=f"Figure 9: miss traffic of spin locks ({P} processors)",
        categories=MISS_CATEGORIES)
    for kind in LOCK_KINDS:
        for proto in ALL_PROTOCOLS:
            label = combo_label(kind, proto)
            if progress:
                progress(f"fig9 {label}")
            res = _lock_run(proto, kind, P, scale, **kw)
            bars.add(label, _miss_counts(res.result))
    return bars


def fig10_lock_updates(scale: ExperimentScale = ExperimentScale.paper(),
                       P: int = 32,
                       progress: Optional[Callable[[str], None]] = None,
                       **kw) -> StackedBars:
    bars = StackedBars(
        title=f"Figure 10: update traffic of spin locks ({P} processors)",
        categories=UPDATE_CATEGORIES)
    for kind in LOCK_KINDS:
        for proto in UPDATE_PROTOCOLS:
            label = combo_label(kind, proto)
            if progress:
                progress(f"fig10 {label}")
            res = _lock_run(proto, kind, P, scale, **kw)
            bars.add(label, dict(res.result.updates))
    return bars


# ----------------------------------------------------------------------
# barriers (figures 11, 12, 13)
# ----------------------------------------------------------------------

def _barrier_run(protocol: Protocol, kind: str, P: int,
                 scale: ExperimentScale, sanitize: bool = False, **kw):
    cfg = _checked_config(protocol, P, sanitize)
    return run_barrier_workload(cfg, kind,
                                episodes=scale.barrier_episodes, **kw)


def fig11_barrier_latency(scale: ExperimentScale = ExperimentScale.paper(),
                          sizes: Tuple[int, ...] = PAPER_MACHINE_SIZES,
                          progress: Optional[Callable[[str], None]] = None,
                          **kw) -> Series:
    series = Series(
        title="Figure 11: performance of barriers in synthetic program",
        xlabel="procs",
        ylabel="avg barrier episode latency (cycles)")
    for kind in BARRIER_KINDS:
        for proto in ALL_PROTOCOLS:
            label = combo_label(kind, proto)
            for P in sizes:
                if progress:
                    progress(f"fig11 {label} P={P}")
                res = _barrier_run(proto, kind, P, scale, **kw)
                series.add(label, P, res.avg_latency)
    return series


def fig12_barrier_misses(scale: ExperimentScale = ExperimentScale.paper(),
                         P: int = 32,
                         progress: Optional[Callable[[str], None]] = None,
                         **kw) -> StackedBars:
    bars = StackedBars(
        title=f"Figure 12: miss traffic of barriers ({P} processors)",
        categories=MISS_CATEGORIES)
    for kind in BARRIER_KINDS:
        for proto in ALL_PROTOCOLS:
            label = combo_label(kind, proto)
            if progress:
                progress(f"fig12 {label}")
            res = _barrier_run(proto, kind, P, scale, **kw)
            bars.add(label, _miss_counts(res.result))
    return bars


def fig13_barrier_updates(scale: ExperimentScale = ExperimentScale.paper(),
                          P: int = 32,
                          progress: Optional[Callable[[str], None]] = None,
                          **kw) -> StackedBars:
    bars = StackedBars(
        title=f"Figure 13: update traffic of barriers ({P} processors)",
        categories=UPDATE_CATEGORIES)
    for kind in BARRIER_KINDS:
        for proto in UPDATE_PROTOCOLS:
            label = combo_label(kind, proto)
            if progress:
                progress(f"fig13 {label}")
            res = _barrier_run(proto, kind, P, scale, **kw)
            bars.add(label, dict(res.result.updates))
    return bars


# ----------------------------------------------------------------------
# reductions (figures 14, 15, 16)
# ----------------------------------------------------------------------

def _reduction_run(protocol: Protocol, kind: str, P: int,
                   scale: ExperimentScale, sanitize: bool = False, **kw):
    cfg = _checked_config(protocol, P, sanitize)
    return run_reduction_workload(cfg, kind,
                                  iterations=scale.reduction_iters, **kw)


def fig14_reduction_latency(scale: ExperimentScale = ExperimentScale.paper(),
                            sizes: Tuple[int, ...] = PAPER_MACHINE_SIZES,
                            progress: Optional[Callable[[str], None]] = None,
                            **kw) -> Series:
    series = Series(
        title="Figure 14: performance of reductions in synthetic program",
        xlabel="procs",
        ylabel="avg reduction latency (cycles)")
    for kind in REDUCTION_KINDS:
        for proto in ALL_PROTOCOLS:
            label = combo_label(kind, proto)
            for P in sizes:
                if progress:
                    progress(f"fig14 {label} P={P}")
                res = _reduction_run(proto, kind, P, scale, **kw)
                series.add(label, P, res.avg_latency)
    return series


def fig15_reduction_misses(scale: ExperimentScale = ExperimentScale.paper(),
                           P: int = 32,
                           progress: Optional[Callable[[str], None]] = None,
                           **kw) -> StackedBars:
    bars = StackedBars(
        title=f"Figure 15: miss traffic of reductions ({P} processors)",
        categories=MISS_CATEGORIES)
    for kind in REDUCTION_KINDS:
        for proto in ALL_PROTOCOLS:
            label = combo_label(kind, proto)
            if progress:
                progress(f"fig15 {label}")
            res = _reduction_run(proto, kind, P, scale, **kw)
            bars.add(label, _miss_counts(res.result))
    return bars


def fig16_reduction_updates(scale: ExperimentScale = ExperimentScale.paper(),
                            P: int = 32,
                            progress: Optional[Callable[[str], None]] = None,
                            **kw) -> StackedBars:
    bars = StackedBars(
        title=f"Figure 16: update traffic of reductions ({P} processors)",
        categories=UPDATE_CATEGORIES)
    for kind in REDUCTION_KINDS:
        for proto in UPDATE_PROTOCOLS:
            label = combo_label(kind, proto)
            if progress:
                progress(f"fig16 {label}")
            res = _reduction_run(proto, kind, P, scale, **kw)
            bars.add(label, dict(res.result.updates))
    return bars


#: figure id -> (runner, kind) for the CLI
FIGURES: Dict[str, Callable] = {
    "fig8": fig8_lock_latency,
    "fig9": fig9_lock_misses,
    "fig10": fig10_lock_updates,
    "fig11": fig11_barrier_latency,
    "fig12": fig12_barrier_misses,
    "fig13": fig13_barrier_updates,
    "fig14": fig14_reduction_latency,
    "fig15": fig15_reduction_misses,
    "fig16": fig16_reduction_updates,
}
