"""Experiment harness (subsystem S16): regenerates every figure of the
paper's evaluation section.

Each ``fig*`` function returns the figure's dataset (a
:class:`~repro.metrics.tables.Series` for the latency figures, a
:class:`~repro.metrics.tables.StackedBars` for the traffic figures).
Figures are campaigns (see :mod:`repro.campaign`): ``figure_points``
generates the specs, ``figure_table`` folds the records into the
dataset, and the ``fig*`` entry points accept a ``runner=`` to execute
in parallel and/or against a result cache.  The CLI
(``python -m repro.experiments``) runs any subset with
``--jobs`` / ``--cache-dir``.
"""

from repro.experiments.figures import (
    fig8_lock_latency, fig9_lock_misses, fig10_lock_updates,
    fig11_barrier_latency, fig12_barrier_misses, fig13_barrier_updates,
    fig14_reduction_latency, fig15_reduction_misses,
    fig16_reduction_updates, FIGURES, FIGURE_DEFS, FigureDef,
    FigurePoint, figure_points, figure_table, run_figure,
    MISS_CATEGORIES, UPDATE_CATEGORIES, combo_label,
)

__all__ = [
    "fig8_lock_latency", "fig9_lock_misses", "fig10_lock_updates",
    "fig11_barrier_latency", "fig12_barrier_misses",
    "fig13_barrier_updates", "fig14_reduction_latency",
    "fig15_reduction_misses", "fig16_reduction_updates", "FIGURES",
    "FIGURE_DEFS", "FigureDef", "FigurePoint", "figure_points",
    "figure_table", "run_figure",
    "MISS_CATEGORIES", "UPDATE_CATEGORIES", "combo_label",
]
