"""The ``check`` subcommand: ``python -m repro.experiments check``.

Runs all three checkers over a litmus suite of self-checking programs
-- fenced message passing, a spin handshake, lock-protected counters
for every lock kind, barrier phase programs for every barrier kind --
plus two full applications (histogram, work queue), each under WI, PU
and CU with the coherence sanitizer and the happens-before race
detector enabled in strict mode.  A separate static section records
the op streams of representative programs and runs the lint pass over
them, no machine required.

Every program in the suite follows the *portable* release-consistency
discipline the race detector checks (see ``docs/checkers.md``): data
is published only behind a ``Fence`` (or an atomic, which drains the
write buffer), and phase programs fence before **every** barrier wait
-- barrier arrival stores publish only the fenced part of a node's
knowledge.

The dynamic suite is expressed as campaign specs (``check-*``
workloads in the :mod:`repro.campaign` registry), so it shares the
figure harness's execution path: ``--jobs N`` fans the combinations
out over worker processes and per-case failures are captured without
aborting the rest of the suite.

Exit status 0 when every combination is clean, 1 otherwise.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Tuple

from repro.campaign import CampaignRunner, RunSpec, register_workload
from repro.config import ALL_PROTOCOLS, MachineConfig, Protocol
from repro.checkers import run_lint
from repro.isa.ops import Compute, Fence, Read, SpinUntil, Write
from repro.runtime import Machine
from repro.sync.barriers import BARRIER_KINDS, make_barrier
from repro.sync.locks import ALL_LOCK_KINDS, make_lock

#: words of payload published by the message-passing litmus
MP_WORDS = 4
#: critical-section entries per node in the lock litmus
LOCK_ROUNDS = 4
#: barrier episodes (x2 waits each) in the phase litmus
BARRIER_PHASES = 3
#: handshake round trips
HANDSHAKE_ROUNDS = 4


def checked_config(protocol: Protocol, procs: int) -> MachineConfig:
    """A machine config with both dynamic checkers on, strict."""
    return MachineConfig(num_procs=procs, protocol=protocol,
                         enable_sanitizer=True,
                         enable_race_detector=True,
                         checkers_strict=True)


def final_value(machine: Machine, addr: int):
    """The authoritative value of ``addr`` after a run (dirty copy if
    one exists, else home memory) -- same rule as the sanitizer's
    final-value check."""
    from repro.memsys.cache import CacheState

    cfg = machine.config
    word = cfg.word_of(addr)
    block = cfg.block_of(addr)
    for ctrl in machine.controllers:
        line = ctrl.cache.lookup(block)
        if line is not None and line.state in (CacheState.MODIFIED,
                                               CacheState.RETAINED):
            return line.data.get(word, 0)
    home = machine.memmap.home_of(addr)
    return machine.controllers[home].mem.read_word(word)


# ----------------------------------------------------------------------
# litmus programs (self-checking, portable-RC clean)
# ----------------------------------------------------------------------

def run_mp(config: MachineConfig) -> None:
    """Fenced message passing: one producer, P-1 consumers."""
    machine = Machine(config)
    mm = machine.memmap
    data = [mm.alloc_word(0, f"mp.data{i}") for i in range(MP_WORDS)]
    flag = mm.alloc_word(0, "mp.flag")

    def producer(node: int):
        for i, addr in enumerate(data):
            yield Write(addr, 100 + i)
        yield Fence()                     # publish before the flag store
        yield Write(flag, 1)

    def consumer(node: int):
        yield SpinUntil(flag, lambda v: v == 1)
        for i, addr in enumerate(data):
            got = yield Read(addr)
            if got != 100 + i:
                raise AssertionError(
                    f"mp: node {node} read {got} from data{i}")

    machine.spawn(0, producer(0))
    for n in range(1, config.num_procs):
        machine.spawn(n, consumer(n))
    return machine.run()


def run_handshake(config: MachineConfig) -> None:
    """Two-node ping-pong through a pair of spin flags, carrying a
    payload word each way."""
    machine = Machine(config)
    mm = machine.memmap
    ping = mm.alloc_word(0, "hs.ping")
    pong = mm.alloc_word(1 % config.num_procs, "hs.pong")
    payload = mm.alloc_word(0, "hs.payload")

    def side_a(node: int):
        for r in range(1, HANDSHAKE_ROUNDS + 1):
            yield Write(payload, r * 10)
            yield Fence()
            yield Write(ping, r)
            yield SpinUntil(pong, lambda v, r=r: v == r)
            got = yield Read(payload)
            if got != r * 10 + 1:
                raise AssertionError(f"handshake: A read {got} in "
                                     f"round {r}")

    def side_b(node: int):
        for r in range(1, HANDSHAKE_ROUNDS + 1):
            yield SpinUntil(ping, lambda v, r=r: v == r)
            got = yield Read(payload)
            if got != r * 10:
                raise AssertionError(f"handshake: B read {got} in "
                                     f"round {r}")
            yield Write(payload, r * 10 + 1)
            yield Fence()
            yield Write(pong, r)

    machine.spawn(0, side_a(0))
    machine.spawn(1 % config.num_procs, side_b(1))
    return machine.run()


def run_lock_counter(config: MachineConfig, lock_kind: str) -> None:
    """Every node increments a shared counter under the lock."""
    machine = Machine(config)
    lock = make_lock(lock_kind, machine, home=0)
    counter = machine.memmap.alloc_word(0, "counter")

    def program(node: int):
        for _ in range(LOCK_ROUNDS):
            token = yield from lock.acquire(node)
            value = yield Read(counter)
            yield Compute(5)
            yield Write(counter, value + 1)
            yield from lock.release(node, token)
        yield Fence()

    machine.spawn_all(program)
    result = machine.run()
    expected = config.num_procs * LOCK_ROUNDS
    got = final_value(machine, counter)
    if got != expected:
        raise AssertionError(
            f"lock counter ({lock_kind}): {got} != {expected}")
    return result


def run_barrier_phases(config: MachineConfig, barrier_kind: str) -> None:
    """Neighbour-exchange phases: write own slot, barrier, read the
    left neighbour's slot, barrier.  Fences before *every* wait (the
    portable discipline: arrival stores publish only fenced knowledge,
    and read epochs advance the clock too)."""
    machine = Machine(config)
    bar = make_barrier(barrier_kind, machine)
    mm = machine.memmap
    P = config.num_procs
    slots = [mm.alloc_word(n, f"phase.slot{n}") for n in range(P)]

    def program(node: int):
        for phase in range(1, BARRIER_PHASES + 1):
            yield Write(slots[node], phase)
            yield Fence()
            yield from bar.wait(node)
            left = (node - 1) % P
            got = yield Read(slots[left])
            if got != phase:
                raise AssertionError(
                    f"phases ({barrier_kind}): node {node} read {got} "
                    f"from slot {left} in phase {phase}")
            yield Fence()
            yield from bar.wait(node)

    machine.spawn_all(program)
    return machine.run()


def run_histogram_checked(config: MachineConfig):
    from repro.apps.histogram import run_histogram
    return run_histogram(config, items_per_proc=8, num_bins=4).result


def run_workqueue_checked(config: MachineConfig):
    from repro.apps.workqueue import run_workqueue
    return run_workqueue(config, total_items=4 * config.num_procs,
                         lock_kind="MCS").result


# ----------------------------------------------------------------------
# campaign workloads: the dynamic suite as specs
# ----------------------------------------------------------------------

@register_workload("check-mp")
def _wl_mp(spec: RunSpec):
    return run_mp(spec.config), {}


@register_workload("check-handshake")
def _wl_handshake(spec: RunSpec):
    return run_handshake(spec.config), {}


@register_workload("check-lock")
def _wl_lock(spec: RunSpec):
    return run_lock_counter(spec.config, spec.params_dict["kind"]), {}


@register_workload("check-barrier")
def _wl_barrier(spec: RunSpec):
    return run_barrier_phases(spec.config, spec.params_dict["kind"]), {}


@register_workload("check-histogram")
def _wl_histogram(spec: RunSpec):
    return run_histogram_checked(spec.config), {}


@register_workload("check-workqueue")
def _wl_workqueue(spec: RunSpec):
    return run_workqueue_checked(spec.config), {}


def dynamic_specs(procs: int) -> List[Tuple[str, RunSpec]]:
    """The whole dynamic suite as labelled campaign specs: every case
    x protocol, each on a strict machine with both checkers on."""
    labelled: List[Tuple[str, RunSpec]] = []
    for proto in ALL_PROTOCOLS:
        config = checked_config(proto, procs)

        def add(name: str, workload: str, **params) -> None:
            labelled.append((f"{name} [{proto.short}]",
                             RunSpec.make(workload, config, **params)))

        add("mp", "check-mp")
        add("handshake", "check-handshake")
        for kind in ALL_LOCK_KINDS:
            add(f"lock-{kind}", "check-lock", kind=kind)
        for kind in BARRIER_KINDS:
            add(f"barrier-{kind}", "check-barrier", kind=kind)
        add("histogram", "check-histogram")
        add("workqueue", "check-workqueue")
    return labelled


# ----------------------------------------------------------------------
# static lint section
# ----------------------------------------------------------------------

def run_lint_suite(procs: int, out=sys.stdout, quiet: bool = False) -> int:
    """Record the op streams of the litmus programs and lint them.

    The machine is built only so the sync library allocates and
    registers its words; it never runs.
    """
    failures = 0
    config = MachineConfig(num_procs=procs, protocol=Protocol.WI)

    def lint_one(name: str, build) -> None:
        nonlocal failures
        machine = Machine(config)
        programs = build(machine)
        report = run_lint(machine.memmap, programs)
        if report.clean:
            if not quiet:
                print(f"  lint {name:<24} clean", file=out)
        else:
            failures += 1
            print(f"  lint {name:<24} "
                  f"{len(report.violations)} violation(s)", file=out)
            for v in report.violations:
                print(f"    {v}", file=out)

    def lock_streams(kind: str):
        def build(machine):
            lock = make_lock(kind, machine, home=0)
            counter = machine.memmap.alloc_word(0, "counter")

            def program(node: int):
                for _ in range(LOCK_ROUNDS):
                    token = yield from lock.acquire(node)
                    value = yield Read(counter)
                    yield Write(counter, value + 1)
                    yield from lock.release(node, token)
                yield Fence()

            return [(n, program(n)) for n in range(procs)]
        return build

    def barrier_streams(kind: str):
        def build(machine):
            bar = make_barrier(kind, machine)
            mm = machine.memmap
            slots = [mm.alloc_word(n, f"phase.slot{n}")
                     for n in range(procs)]

            def program(node: int):
                for phase in range(1, BARRIER_PHASES + 1):
                    yield Write(slots[node], phase)
                    yield Fence()
                    yield from bar.wait(node)
                    yield Read(slots[(node - 1) % procs])
                    yield Fence()
                    yield from bar.wait(node)

            return [(n, program(n)) for n in range(procs)]
        return build

    for kind in ALL_LOCK_KINDS:
        lint_one(f"lock-{kind}", lock_streams(kind))
    for kind in BARRIER_KINDS:
        lint_one(f"barrier-{kind}", barrier_streams(kind))
    return failures


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-experiments check",
        description="Run the coherence sanitizer, race detector and "
                    "lint pass over the litmus + application suite.")
    p.add_argument("--procs", type=int, default=4,
                   help="machine size for the dynamic suite (default 4)")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="fan the dynamic suite out over N worker "
                        "processes")
    p.add_argument("--lint-only", action="store_true",
                   help="only run the static lint section")
    p.add_argument("--quiet", action="store_true",
                   help="only print failures and the summary line")
    return p


def _error_detail(record) -> str:
    """The exception-message portion of a captured traceback (a
    CheckerError stringifies its whole violation report, keep it all)."""
    lines = (record.error or "").strip().split("\n")
    for i, line in enumerate(lines):
        if record.error_type and line.startswith(record.error_type):
            return "\n".join(lines[i:])
    return lines[-1] if lines else ""


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.procs < 2:
        parser.error("--procs must be at least 2 (the litmus programs "
                     "need a producer and a consumer)")
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    out = sys.stdout
    failures = 0
    ran = 0

    if not args.lint_only:
        labelled = dynamic_specs(args.procs)
        runner = CampaignRunner(jobs=args.jobs)
        report = runner.run([spec for _label, spec in labelled])
        ran = len(labelled)
        for (label, _spec), record in zip(labelled, report.records):
            if record.ok:
                if not args.quiet:
                    print(f"  ok   {label}", file=out)
            else:
                failures += 1
                print(f"  FAIL {label} ({record.error_type})", file=out)
                print("    " + _error_detail(record)
                      .replace("\n", "\n    "), file=out)

    failures += run_lint_suite(args.procs, out=out, quiet=args.quiet)

    verdict = "clean" if failures == 0 else f"{failures} FAILURE(S)"
    print(f"check: {ran} dynamic case(s), lint pass: {verdict}",
          file=out)
    return 0 if failures == 0 else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
