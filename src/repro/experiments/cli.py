"""Command-line entry point: ``python -m repro.experiments fig8 ...``.

Regenerates any subset of the paper's figures as text tables.  Default
scale is 10% of the paper's iteration counts (the latency metrics are
per-iteration averages, so the series keep their shape); pass
``--paper-scale`` for the full counts or ``--scale 0.02`` for quick
looks.

Every figure runs through the campaign layer (``repro.campaign``):
``--jobs N`` fans the figure's simulations out over N worker processes
(the result tables are bit-identical to a serial run), and results are
cached content-addressed under ``--cache-dir`` (default
``.repro-cache``; the key includes a code-version salt, so editing the
simulator invalidates the cache automatically).  A warm-cache re-run
executes zero simulations.  ``--bench-json`` records per-figure
wall-clock / cache tallies for CI artifacts.
"""

from __future__ import annotations

import argparse
import difflib
import json
import sys
import time
from typing import List

from repro.campaign import CampaignError, CampaignRunner, ResultCache
from repro.config import ExperimentScale, PAPER_MACHINE_SIZES
from repro.experiments.figures import FIGURES, figure_points, figure_table

#: default location of the content-addressed result cache
DEFAULT_CACHE_DIR = ".repro-cache"


def _parse_sizes(text: str) -> tuple:
    sizes = tuple(int(s) for s in text.split(","))
    for s in sizes:
        if s < 1:
            raise argparse.ArgumentTypeError(f"bad machine size {s}")
    return sizes


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the figures of Bianchini et al., "
                    "PPoPP 1997.")
    p.add_argument("figures", nargs="*", default=["all"],
                   help="figure ids (fig8..fig16) or 'all'")
    p.add_argument("--scale", type=float, default=0.1,
                   help="fraction of the paper's iteration counts "
                        "(default 0.1)")
    p.add_argument("--paper-scale", action="store_true",
                   help="use the paper's full iteration counts")
    p.add_argument("--sizes", type=_parse_sizes,
                   default=PAPER_MACHINE_SIZES,
                   help="comma-separated machine sizes for the latency "
                        "figures (default 1,2,4,8,16,32)")
    p.add_argument("--procs", type=int, default=32,
                   help="machine size for the traffic figures "
                        "(default 32)")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="run the figure sweeps over N worker processes "
                        "(results are identical to --jobs 1)")
    p.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                   metavar="DIR",
                   help="content-addressed result cache directory "
                        f"(default {DEFAULT_CACHE_DIR})")
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the result cache entirely")
    p.add_argument("--cache-max-mb", type=float, default=None,
                   metavar="MB",
                   help="prune the result cache above this size after "
                        "each figure (LRU by last use)")
    p.add_argument("--bench-json", metavar="FILE", default=None,
                   help="write per-figure timing / cache tallies as "
                        "JSON (for CI artifacts)")
    p.add_argument("--profile", metavar="PREFIX", nargs="?",
                   const="repro-profile", default=None,
                   help="wrap the whole run in cProfile and write "
                        "PREFIX.pstats plus a top-25 cumulative-time "
                        "report to PREFIX.txt (default prefix "
                        "'repro-profile'; use --jobs 1, worker "
                        "processes are not profiled)")
    p.add_argument("--quiet", action="store_true",
                   help="suppress progress lines")
    p.add_argument("--svg", metavar="DIR", default=None,
                   help="also write each figure as DIR/figN.svg")
    p.add_argument("--sanitize", action="store_true",
                   help="run every figure machine with the coherence "
                        "sanitizer and race detector enabled (strict)")
    return p


def main(argv: List[str] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "check":
        # checker subcommand: run the sanitizer / race-detector / lint
        # suite instead of regenerating figures
        from repro.experiments.check import main as check_main
        return check_main(argv[1:])
    if argv and argv[0] == "modelcheck":
        # model-checker subcommand: exhaustive litmus exploration /
        # counterexample replay instead of regenerating figures
        from repro.experiments.modelcheck import main as mc_main
        return mc_main(argv[1:])
    if argv and argv[0] == "staticcheck":
        # static protocol analysis: transition-table checks + AST
        # conformance, no simulation (docs/staticcheck.md)
        from repro.experiments.staticcheck import main as sc_main
        return sc_main(argv[1:])
    if argv and argv[0] == "serve":
        # simulation-serving gateway (docs/service.md)
        from repro.service.gateway import main as serve_main
        return serve_main(argv[1:])
    if argv and argv[0] == "loadgen":
        # closed-loop load generator against a running gateway
        from repro.service.loadgen import main as loadgen_main
        return loadgen_main(argv[1:])
    if argv and argv[0] == "cluster":
        # sharded cluster: N gateway replicas behind a consistent-hash
        # router (docs/cluster.md)
        from repro.cluster.supervisor import main as cluster_main
        return cluster_main(argv[1:])
    args = build_parser().parse_args(argv)

    wanted = args.figures
    if not wanted or "all" in wanted:
        wanted = list(FIGURES)
    unknown = [f for f in wanted if f not in FIGURES]
    if unknown:
        subcommands = ("check", "modelcheck", "staticcheck", "serve",
                       "loadgen", "cluster")
        candidates = list(FIGURES) + list(subcommands)
        for name in unknown:
            close = difflib.get_close_matches(name, candidates, n=3,
                                              cutoff=0.4)
            hint = (f"; did you mean {', '.join(close)}?"
                    if close else "")
            print(f"unknown figure {name!r}{hint}", file=sys.stderr)
        print(f"choose from: {', '.join(FIGURES)} "
              f"(or the subcommands {' / '.join(subcommands)})",
              file=sys.stderr)
        return 2
    if args.jobs < 1:
        print("--jobs must be >= 1", file=sys.stderr)
        return 2
    if args.cache_max_mb is not None and args.cache_max_mb <= 0:
        print("--cache-max-mb must be positive", file=sys.stderr)
        return 2

    scale = (ExperimentScale.paper() if args.paper_scale
             else ExperimentScale.scaled(args.scale))
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    runner = CampaignRunner(jobs=args.jobs, cache=cache)
    bench: dict = {"jobs": args.jobs,
                   "scale": ("paper" if args.paper_scale else args.scale),
                   "cache_dir": (None if args.no_cache
                                 else args.cache_dir),
                   "figures": {}}

    with runner:       # releases the warm worker pool on the way out
        if args.profile:
            if args.jobs > 1:
                print("--profile only sees this process; worker "
                      "simulations under --jobs > 1 are not profiled",
                      file=sys.stderr)
            import cProfile
            profiler = cProfile.Profile()
            profiler.enable()
            try:
                rc = _run_figures(args, wanted, scale, runner, bench)
            finally:
                profiler.disable()
                _write_profile(profiler, args.profile, quiet=args.quiet)
                _print_pool_stats()
            return rc
        return _run_figures(args, wanted, scale, runner, bench)


def _write_profile(profiler, prefix: str, quiet: bool = False) -> None:
    """Dump ``prefix``.pstats and a top-25 cumulative text report."""
    import io
    import pstats

    profiler.dump_stats(prefix + ".pstats")
    buf = io.StringIO()
    stats = pstats.Stats(profiler, stream=buf)
    stats.sort_stats("cumulative").print_stats(25)
    with open(prefix + ".txt", "w", encoding="utf-8") as fh:
        fh.write(buf.getvalue())
    if not quiet:
        print(f"  [wrote {prefix}.pstats and {prefix}.txt]",
              file=sys.stderr)


def _print_pool_stats() -> None:
    """Report the process-wide message-pool tallies (``--profile``)."""
    from repro.network.messages import POOL_TOTALS

    print(f"  [message pool: {POOL_TOTALS['reused']} reused, "
          f"{POOL_TOTALS['released']} released, "
          f"{POOL_TOTALS['dropped_frozen']} dropped after freeze, "
          f"over {POOL_TOTALS['machines']} machine(s)]",
          file=sys.stderr)


def _run_figures(args, wanted, scale, runner, bench) -> int:
    for fig in wanted:
        t0 = time.time()
        kw = {"sizes": args.sizes} if fig in ("fig8", "fig11", "fig14") \
            else {"P": args.procs}
        points = figure_points(fig, scale=scale, sanitize=args.sanitize,
                               **kw)
        hook = None
        if not args.quiet:
            def hook(i, spec, record, _points=points, _fig=fig):
                point = _points[i]
                at = f" P={point.x}" if point.x is not None else ""
                cached = " (cached)" if record.cached else ""
                state = "" if record.ok else " FAILED"
                print(f"  ... {_fig} {point.label}{at}{cached}{state}",
                      file=sys.stderr, flush=True)
        report = runner.run([pt.spec for pt in points], progress=hook)
        try:
            report.raise_on_failure()
        except CampaignError as exc:
            print(exc, file=sys.stderr)
            for rec in exc.failures:
                print(rec.error, file=sys.stderr)
            return 1
        data = figure_table(fig, points, report.records)
        if args.cache_max_mb is not None and runner.cache is not None:
            evicted = runner.cache.prune(
                int(args.cache_max_mb * 1024 * 1024))
            if evicted and not args.quiet:
                print(f"  [cache pruned: {evicted} entries evicted "
                      f"over {args.cache_max_mb:g} MB]",
                      file=sys.stderr)
        elapsed = time.time() - t0
        bench["figures"][fig] = {
            "specs": len(points),
            "executed": report.executed,
            "cached": report.cached,
            "elapsed_s": round(elapsed, 3),
        }
        print()
        print(data.render())
        if args.svg:
            import os
            from repro.metrics.svgchart import to_svg
            os.makedirs(args.svg, exist_ok=True)
            path = os.path.join(args.svg, f"{fig}.svg")
            with open(path, "w") as fh:
                fh.write(to_svg(data))
            print(f"  [wrote {path}]", file=sys.stderr)
        if not args.quiet:
            print(f"  [{fig} took {elapsed:.1f}s at scale "
                  f"{'paper' if args.paper_scale else args.scale}: "
                  f"{report.executed} run, {report.cached} cached, "
                  f"jobs={args.jobs}]",
                  file=sys.stderr)

    if args.bench_json:
        bench["total_elapsed_s"] = round(
            sum(f["elapsed_s"] for f in bench["figures"].values()), 3)
        with open(args.bench_json, "w", encoding="utf-8") as fh:
            json.dump(bench, fh, indent=2, sort_keys=True)
        if not args.quiet:
            print(f"  [wrote {args.bench_json}]", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
