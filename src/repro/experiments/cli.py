"""Command-line entry point: ``python -m repro.experiments fig8 ...``.

Regenerates any subset of the paper's figures as text tables.  Default
scale is 10% of the paper's iteration counts (the latency metrics are
per-iteration averages, so the series keep their shape); pass
``--paper-scale`` for the full counts or ``--scale 0.02`` for quick
looks.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List

from repro.config import ExperimentScale, PAPER_MACHINE_SIZES
from repro.experiments.figures import FIGURES


def _parse_sizes(text: str) -> tuple:
    sizes = tuple(int(s) for s in text.split(","))
    for s in sizes:
        if s < 1:
            raise argparse.ArgumentTypeError(f"bad machine size {s}")
    return sizes


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the figures of Bianchini et al., "
                    "PPoPP 1997.")
    p.add_argument("figures", nargs="*", default=["all"],
                   help="figure ids (fig8..fig16) or 'all'")
    p.add_argument("--scale", type=float, default=0.1,
                   help="fraction of the paper's iteration counts "
                        "(default 0.1)")
    p.add_argument("--paper-scale", action="store_true",
                   help="use the paper's full iteration counts")
    p.add_argument("--sizes", type=_parse_sizes,
                   default=PAPER_MACHINE_SIZES,
                   help="comma-separated machine sizes for the latency "
                        "figures (default 1,2,4,8,16,32)")
    p.add_argument("--procs", type=int, default=32,
                   help="machine size for the traffic figures "
                        "(default 32)")
    p.add_argument("--quiet", action="store_true",
                   help="suppress progress lines")
    p.add_argument("--svg", metavar="DIR", default=None,
                   help="also write each figure as DIR/figN.svg")
    p.add_argument("--sanitize", action="store_true",
                   help="run every figure machine with the coherence "
                        "sanitizer and race detector enabled (strict)")
    return p


def main(argv: List[str] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "check":
        # checker subcommand: run the sanitizer / race-detector / lint
        # suite instead of regenerating figures
        from repro.experiments.check import main as check_main
        return check_main(argv[1:])
    args = build_parser().parse_args(argv)

    wanted = args.figures
    if not wanted or "all" in wanted:
        wanted = list(FIGURES)
    unknown = [f for f in wanted if f not in FIGURES]
    if unknown:
        print(f"unknown figure(s): {', '.join(unknown)}; "
              f"choose from {', '.join(FIGURES)}", file=sys.stderr)
        return 2

    scale = (ExperimentScale.paper() if args.paper_scale
             else ExperimentScale.scaled(args.scale))
    progress = None
    if not args.quiet:
        def progress(msg: str) -> None:
            print(f"  ... {msg}", file=sys.stderr, flush=True)

    for fig in wanted:
        runner = FIGURES[fig]
        t0 = time.time()
        if fig in ("fig8", "fig11", "fig14"):
            data = runner(scale=scale, sizes=args.sizes,
                          progress=progress, sanitize=args.sanitize)
        else:
            data = runner(scale=scale, P=args.procs, progress=progress,
                          sanitize=args.sanitize)
        print()
        print(data.render())
        if args.svg:
            import os
            from repro.metrics.svgchart import to_svg
            os.makedirs(args.svg, exist_ok=True)
            path = os.path.join(args.svg, f"{fig}.svg")
            with open(path, "w") as fh:
                fh.write(to_svg(data))
            print(f"  [wrote {path}]", file=sys.stderr)
        if not args.quiet:
            print(f"  [{fig} took {time.time() - t0:.1f}s at scale "
                  f"{'paper' if args.paper_scale else args.scale}]",
                  file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
