"""``python -m repro.experiments staticcheck``: static protocol checks.

Runs, without a single simulated cycle:

* the spec analyzer (completeness / contradiction / reachability /
  ambiguity / progress / vocabulary / routing) over the declarative
  transition tables of :mod:`repro.protospec`, and
* the AST conformance pass diffing each protocol controller's handlers
  against its table, and
* the dispatch round-trip check diffing the compiled execution table
  (what the simulator actually dispatches through) against the spec
  row-for-row,

for any subset of WI / PU / CU / HYBRID.  Findings can be suppressed
via a JSON manifest (every suppression needs a written reason; stale
entries are themselves findings).  Exit status is 0 iff no unsuppressed
finding remains.

``--mutants`` validates the conformance pass the same way
``modelcheck --mutants`` validates the explorer: each seeded protocol
mutation is activated and the pass must flag the drift statically,
with a file:line pointing at the mutated handler.
"""

from __future__ import annotations

import argparse
import difflib
import json
import os
import sys
from typing import List, Optional

from repro.config import Protocol
from repro.protocols import _CTRL_CLASSES
from repro.protospec import get_spec
from repro.staticcheck import (
    DEFAULT_SUPPRESSIONS, StaticCheckReport, SuppressionError,
    analyze_spec, check_conformance, check_dispatch_tables,
    load_suppressions,
)

#: analysis order (and the --protocol default)
ALL_PROTOCOLS = (Protocol.WI, Protocol.PU, Protocol.CU, Protocol.HYBRID,
                 Protocol.MESI)


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-experiments staticcheck",
        description="Statically check the protocol transition tables "
                    "and their conformance with the handler source.")
    p.add_argument("--protocol", action="append", metavar="PROTO",
                   help="protocol(s) to check (default: wi,pu,cu,"
                        "hybrid)")
    p.add_argument("--suppressions", metavar="FILE",
                   default=DEFAULT_SUPPRESSIONS,
                   help="suppression manifest (default: the packaged "
                        "manifest)")
    p.add_argument("--no-suppressions", action="store_true",
                   help="ignore the suppression manifest entirely")
    p.add_argument("--json", metavar="FILE", default=None,
                   help="also write the full report as JSON (for CI "
                        "artifacts)")
    p.add_argument("--dump-specs", metavar="DIR", default=None,
                   help="write each checked protocol's table as "
                        "DIR/<proto>.json and exit")
    p.add_argument("--mutants", action="store_true",
                   help="validate the conformance pass against the "
                        "seeded protocol mutations instead of "
                        "checking the pristine tree")
    p.add_argument("--mutant", action="append", metavar="NAME",
                   help="with --mutants: restrict to these mutations")
    p.add_argument("--synth", action="store_true",
                   help="print the synthesis report: which transient "
                        "states and rows each protocol's table derives "
                        "from its stable-state spec")
    p.add_argument("--graph", action="store_true",
                   help="also explore the cache x home product graph "
                        "of each spec over all message reorderings "
                        "(deadlock / livelock / staleness / dead rows)")
    p.add_argument("--graph-json", metavar="DIR", default=None,
                   help="with --graph: write each protocol's "
                        "exploration record as DIR/<proto>-graph.json")
    p.add_argument("--graph-mutants", action="store_true",
                   help="validate the product-graph explorer against "
                        "the seeded table-level mutations: each must "
                        "be flagged with a counterexample path")
    p.add_argument("--quiet", action="store_true",
                   help="only print findings and the final tally")
    return p


def _parse_protocols(names: Optional[List[str]],
                     parser: argparse.ArgumentParser) -> List[Protocol]:
    if not names:
        return list(ALL_PROTOCOLS)
    out = []
    for n in names:
        try:
            out.append(Protocol.parse(n))
        except (KeyError, ValueError):
            known = [p.value for p in ALL_PROTOCOLS]
            close = difflib.get_close_matches(n.lower(), known, n=1,
                                              cutoff=0.4)
            hint = f"; did you mean {close[0]!r}?" if close else ""
            parser.error(f"unknown protocol {n!r}{hint} "
                         f"(choose from {', '.join(known)})")
    return out


def run_staticcheck(protocols: List[Protocol]) -> StaticCheckReport:
    """Analyzer + conformance + compiled-dispatch round-trip over the
    given protocols, unsuppressed."""
    report = StaticCheckReport()
    for proto in protocols:
        spec = get_spec(proto)
        cls = _CTRL_CLASSES[proto]
        report.extend(analyze_spec(spec))
        report.extend(check_conformance(spec, cls))
        report.extend(check_dispatch_tables(spec, cls, proto))
    return report


def _check(args, protocols: List[Protocol]) -> int:
    report = run_staticcheck(protocols)
    graph_records = {}
    if args.graph:
        from repro.staticcheck import check_spec_graph
        for proto in protocols:
            findings, record = check_spec_graph(proto.value)
            report.extend(findings)
            graph_records[proto.value] = record
            if not args.quiet:
                states = sum(r["states"] for r in record["runs"])
                print(f"  [graph {proto.value}: {states} product "
                      f"states explored]", file=sys.stderr)
    if not args.no_suppressions:
        try:
            table = load_suppressions(args.suppressions)
        except (OSError, ValueError, SuppressionError) as exc:
            print(f"staticcheck: bad suppression manifest: {exc}",
                  file=sys.stderr)
            return 2
        if not args.graph:
            # graph-scoped suppressions are not stale when the graph
            # pass did not run
            table = {ident: reason for ident, reason in table.items()
                     if "/graph-" not in ident}
        else:
            selected = {p.value for p in protocols}
            table = {ident: reason for ident, reason in table.items()
                     if "/graph-" not in ident
                     or ident.split("/", 1)[0] in selected}
        report.apply_suppressions(table)
    print(report.render())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report.to_json([p.value for p in protocols]), fh,
                      indent=2, sort_keys=True)
        if not args.quiet:
            print(f"  [wrote {args.json}]", file=sys.stderr)
    if args.graph_json and graph_records:
        os.makedirs(args.graph_json, exist_ok=True)
        for name, record in graph_records.items():
            path = os.path.join(args.graph_json, f"{name}-graph.json")
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(record, fh, indent=2, sort_keys=True)
            if not args.quiet:
                print(f"  [wrote {path}]", file=sys.stderr)
    return 0 if report.ok else 1


def _mutants(args, protocols: List[Protocol]) -> int:
    from repro.modelcheck.mutations import MUTATIONS, get_mutation

    names = args.mutant or list(MUTATIONS)
    try:
        muts = [get_mutation(n) for n in names]
    except KeyError as exc:
        print(f"staticcheck: {exc.args[0]}", file=sys.stderr)
        return 2

    # the pristine tree must be clean, or detection means nothing
    baseline = run_staticcheck(protocols)
    if baseline.findings:
        print("staticcheck --mutants: baseline is not clean; fix (or "
              "suppress) these before validating mutations:")
        print(baseline.render())
        return 1

    results = {}
    all_ok = True
    for mut in muts:
        with mut.activate():
            report = run_staticcheck(protocols)
        found = [f for f in report.findings if f.check == "conformance"]
        results[mut.name] = [f.to_json() for f in found]
        if found:
            print(f"{mut.name:<24} DETECTED "
                  f"({len(found)} conformance finding(s))")
            if not args.quiet:
                for f in found:
                    loc = f" at {f.location()}" if f.file else ""
                    print(f"    {f.ident}{loc}")
        else:
            print(f"{mut.name:<24} NOT DETECTED: the conformance pass "
                  f"saw no drift")
            all_ok = False
    if args.json:
        payload = {"mutations": results,
                   "ok": all_ok,
                   "protocols": [p.value for p in protocols]}
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        if not args.quiet:
            print(f"  [wrote {args.json}]", file=sys.stderr)
    if all_ok:
        print(f"staticcheck: all {len(muts)} seeded mutation(s) "
              f"caught statically")
    return 0 if all_ok else 1


def _synth(args, protocols: List[Protocol]) -> int:
    """Report what each protocol's table derives from a stable-state
    spec (only MESI is synthesized today)."""
    from repro.protospec import mesi_stable

    for proto in protocols:
        spec = get_spec(proto)
        rows = len(spec.cache.rows) + len(spec.home.rows)
        if proto is not Protocol.MESI:
            print(f"{proto.value}: hand-written table -- "
                  f"{len(spec.cache.states)} cache states, "
                  f"{len(spec.home.states)} home states, {rows} rows")
            continue
        stable = mesi_stable()
        authored = set(stable.cache.stable) | set(stable.home.stable)
        cache_t = [s for s in spec.cache.states
                   if s not in stable.cache.stable]
        home_t = [s for s in spec.home.states
                  if s not in stable.home.stable]
        imposs = (len(spec.cache.impossible)
                  + len(spec.home.impossible))
        print(f"{proto.value}: synthesized from a stable-state spec")
        print(f"  authored stable states : "
              f"{', '.join(sorted(authored))}")
        print(f"  synthesized cache transients ({len(cache_t)}): "
              f"{', '.join(cache_t)}")
        print(f"  synthesized home transients ({len(home_t)}): "
              f"{', '.join(home_t)}")
        print(f"  rows {rows}, impossible entries {imposs} "
              f"(every non-row pair carries a written reason)")
    return 0


def _graph_mutants(args) -> int:
    """Validate the product-graph explorer: every seeded table-level
    mutation must be flagged, with a counterexample path."""
    from repro.staticcheck import (
        SPEC_MUTATIONS, apply_spec_mutation, check_spec_graph,
    )

    names = args.mutant or sorted(SPEC_MUTATIONS)
    unknown = [n for n in names if n not in SPEC_MUTATIONS]
    if unknown:
        print(f"staticcheck: unknown spec mutation(s) "
              f"{', '.join(unknown)}; have "
              f"{', '.join(sorted(SPEC_MUTATIONS))}", file=sys.stderr)
        return 2

    # the pristine graph must be clean for the mutated protocols, or
    # detection means nothing
    results = {}
    all_ok = True
    baselines = {}
    for name in names:
        mut = SPEC_MUTATIONS[name]
        if mut.protocol not in baselines:
            base_findings, _ = check_spec_graph(mut.protocol)
            baselines[mut.protocol] = [
                f for f in base_findings if f.severity == "error"]
        base_errors = baselines[mut.protocol]
        if base_errors:
            print(f"{name:<24} BASELINE DIRTY: pristine {mut.protocol} "
                  f"graph has {len(base_errors)} error(s); fix those "
                  f"first")
            all_ok = False
            continue
        spec = apply_spec_mutation(get_spec(mut.protocol), name)
        findings, record = check_spec_graph(mut.protocol, spec)
        errors = [f for f in findings if f.severity == "error"]
        kinds = {f.ident.split("/")[1].replace("graph-", "")
                 for f in errors}
        hit = sorted(kinds & mut.expect)
        ces = record["counterexamples"]
        results[name] = {
            "protocol": mut.protocol,
            "expected": sorted(mut.expect),
            "detected": sorted(kinds),
            "counterexamples": len(ces),
        }
        if hit and ces:
            print(f"{name:<24} DETECTED ({', '.join(hit)}; "
                  f"{len(ces)} counterexample path(s))")
        else:
            print(f"{name:<24} NOT DETECTED: expected "
                  f"{sorted(mut.expect)}, graph reported "
                  f"{sorted(kinds) or 'nothing'}")
            all_ok = False
    if args.json:
        payload = {"mutations": results, "ok": all_ok}
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        if not args.quiet:
            print(f"  [wrote {args.json}]", file=sys.stderr)
    if all_ok:
        print(f"staticcheck: all {len(names)} seeded table "
              f"mutation(s) caught by the graph explorer")
    return 0 if all_ok else 1


def _dump_specs(args, protocols: List[Protocol]) -> int:
    os.makedirs(args.dump_specs, exist_ok=True)
    for proto in protocols:
        path = os.path.join(args.dump_specs, f"{proto.value}.json")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(get_spec(proto).dumps())
            fh.write("\n")
        if not args.quiet:
            print(f"  [wrote {path}]", file=sys.stderr)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    protocols = _parse_protocols(args.protocol, parser)
    if args.dump_specs:
        return _dump_specs(args, protocols)
    if args.synth:
        return _synth(args, protocols)
    if args.graph_mutants:
        return _graph_mutants(args)
    if args.mutants:
        return _mutants(args, protocols)
    return _check(args, protocols)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
