"""``python -m repro.experiments staticcheck``: static protocol checks.

Runs, without a single simulated cycle:

* the spec analyzer (completeness / contradiction / reachability /
  ambiguity / progress / vocabulary / routing) over the declarative
  transition tables of :mod:`repro.protospec`, and
* the AST conformance pass diffing each protocol controller's handlers
  against its table, and
* the dispatch round-trip check diffing the compiled execution table
  (what the simulator actually dispatches through) against the spec
  row-for-row,

for any subset of WI / PU / CU / HYBRID.  Findings can be suppressed
via a JSON manifest (every suppression needs a written reason; stale
entries are themselves findings).  Exit status is 0 iff no unsuppressed
finding remains.

``--mutants`` validates the conformance pass the same way
``modelcheck --mutants`` validates the explorer: each seeded protocol
mutation is activated and the pass must flag the drift statically,
with a file:line pointing at the mutated handler.
"""

from __future__ import annotations

import argparse
import difflib
import json
import os
import sys
from typing import List, Optional

from repro.config import Protocol
from repro.protocols import _CTRL_CLASSES
from repro.protospec import get_spec
from repro.staticcheck import (
    DEFAULT_SUPPRESSIONS, StaticCheckReport, SuppressionError,
    analyze_spec, check_conformance, check_dispatch_tables,
    load_suppressions,
)

#: analysis order (and the --protocol default)
ALL_PROTOCOLS = (Protocol.WI, Protocol.PU, Protocol.CU, Protocol.HYBRID)


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-experiments staticcheck",
        description="Statically check the protocol transition tables "
                    "and their conformance with the handler source.")
    p.add_argument("--protocol", action="append", metavar="PROTO",
                   help="protocol(s) to check (default: wi,pu,cu,"
                        "hybrid)")
    p.add_argument("--suppressions", metavar="FILE",
                   default=DEFAULT_SUPPRESSIONS,
                   help="suppression manifest (default: the packaged "
                        "manifest)")
    p.add_argument("--no-suppressions", action="store_true",
                   help="ignore the suppression manifest entirely")
    p.add_argument("--json", metavar="FILE", default=None,
                   help="also write the full report as JSON (for CI "
                        "artifacts)")
    p.add_argument("--dump-specs", metavar="DIR", default=None,
                   help="write each checked protocol's table as "
                        "DIR/<proto>.json and exit")
    p.add_argument("--mutants", action="store_true",
                   help="validate the conformance pass against the "
                        "seeded protocol mutations instead of "
                        "checking the pristine tree")
    p.add_argument("--mutant", action="append", metavar="NAME",
                   help="with --mutants: restrict to these mutations")
    p.add_argument("--quiet", action="store_true",
                   help="only print findings and the final tally")
    return p


def _parse_protocols(names: Optional[List[str]],
                     parser: argparse.ArgumentParser) -> List[Protocol]:
    if not names:
        return list(ALL_PROTOCOLS)
    out = []
    for n in names:
        try:
            out.append(Protocol.parse(n))
        except (KeyError, ValueError):
            known = [p.value for p in ALL_PROTOCOLS]
            close = difflib.get_close_matches(n.lower(), known, n=1,
                                              cutoff=0.4)
            hint = f"; did you mean {close[0]!r}?" if close else ""
            parser.error(f"unknown protocol {n!r}{hint} "
                         f"(choose from {', '.join(known)})")
    return out


def run_staticcheck(protocols: List[Protocol]) -> StaticCheckReport:
    """Analyzer + conformance + compiled-dispatch round-trip over the
    given protocols, unsuppressed."""
    report = StaticCheckReport()
    for proto in protocols:
        spec = get_spec(proto)
        cls = _CTRL_CLASSES[proto]
        report.extend(analyze_spec(spec))
        report.extend(check_conformance(spec, cls))
        report.extend(check_dispatch_tables(spec, cls, proto))
    return report


def _check(args, protocols: List[Protocol]) -> int:
    report = run_staticcheck(protocols)
    if not args.no_suppressions:
        try:
            table = load_suppressions(args.suppressions)
        except (OSError, ValueError, SuppressionError) as exc:
            print(f"staticcheck: bad suppression manifest: {exc}",
                  file=sys.stderr)
            return 2
        report.apply_suppressions(table)
    print(report.render())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report.to_json([p.value for p in protocols]), fh,
                      indent=2, sort_keys=True)
        if not args.quiet:
            print(f"  [wrote {args.json}]", file=sys.stderr)
    return 0 if report.ok else 1


def _mutants(args, protocols: List[Protocol]) -> int:
    from repro.modelcheck.mutations import MUTATIONS, get_mutation

    names = args.mutant or list(MUTATIONS)
    try:
        muts = [get_mutation(n) for n in names]
    except KeyError as exc:
        print(f"staticcheck: {exc.args[0]}", file=sys.stderr)
        return 2

    # the pristine tree must be clean, or detection means nothing
    baseline = run_staticcheck(protocols)
    if baseline.findings:
        print("staticcheck --mutants: baseline is not clean; fix (or "
              "suppress) these before validating mutations:")
        print(baseline.render())
        return 1

    results = {}
    all_ok = True
    for mut in muts:
        with mut.activate():
            report = run_staticcheck(protocols)
        found = [f for f in report.findings if f.check == "conformance"]
        results[mut.name] = [f.to_json() for f in found]
        if found:
            print(f"{mut.name:<24} DETECTED "
                  f"({len(found)} conformance finding(s))")
            if not args.quiet:
                for f in found:
                    loc = f" at {f.location()}" if f.file else ""
                    print(f"    {f.ident}{loc}")
        else:
            print(f"{mut.name:<24} NOT DETECTED: the conformance pass "
                  f"saw no drift")
            all_ok = False
    if args.json:
        payload = {"mutations": results,
                   "ok": all_ok,
                   "protocols": [p.value for p in protocols]}
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        if not args.quiet:
            print(f"  [wrote {args.json}]", file=sys.stderr)
    if all_ok:
        print(f"staticcheck: all {len(muts)} seeded mutation(s) "
              f"caught statically")
    return 0 if all_ok else 1


def _dump_specs(args, protocols: List[Protocol]) -> int:
    os.makedirs(args.dump_specs, exist_ok=True)
    for proto in protocols:
        path = os.path.join(args.dump_specs, f"{proto.value}.json")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(get_spec(proto).dumps())
            fh.write("\n")
        if not args.quiet:
            print(f"  [wrote {path}]", file=sys.stderr)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    protocols = _parse_protocols(args.protocol, parser)
    if args.dump_specs:
        return _dump_specs(args, protocols)
    if args.mutants:
        return _mutants(args, protocols)
    return _check(args, protocols)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
