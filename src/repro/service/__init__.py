"""Simulation-serving gateway (subsystem S22).

Turns the one-shot campaign layer into a long-running, multi-tenant
service: an asyncio HTTP gateway (stdlib only) that validates JSON
requests into canonical :class:`~repro.campaign.RunSpec` values,
dedupes in-flight work (single-flight per spec key), serves warm
results from the shared :class:`~repro.campaign.ResultCache`, and
schedules misses onto a bounded process-pool executor with admission
control (429 + Retry-After), per-request deadlines, live Prometheus
metrics, and graceful SIGTERM drain.

Served results are bit-identical to direct ``CampaignRunner`` runs:
the worker processes execute :func:`repro.campaign.execute_spec`, the
exact function campaign workers run.  See ``docs/service.md``.
"""

from repro.service.config import ServiceConfig
from repro.service.gateway import Gateway
from repro.service.metrics import (
    Counter, Gauge, Histogram, MetricsRegistry, percentile,
)
from repro.service.scheduler import (
    DeadlineExceeded, Draining, QueueFull, SimScheduler,
)

__all__ = [
    "ServiceConfig", "Gateway",
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "percentile",
    "DeadlineExceeded", "Draining", "QueueFull", "SimScheduler",
]
