"""Tiny Prometheus-text metrics, stdlib only.

Counters, gauges and histograms with optional labels, rendered in the
Prometheus text exposition format (version 0.0.4) for ``GET /metrics``.
All mutation happens on the event-loop thread (or a single loadgen
process), so there is no locking; values are plain dicts keyed by
label-value tuples.

Also home of :func:`percentile`, the nearest-rank percentile used by
the load generator's latency report.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: default histogram buckets (seconds): spans sub-millisecond cache
#: hits through multi-minute paper-scale simulations
DEFAULT_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
                   0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0)


def _fmt(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _escape(text: str) -> str:
    return (text.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


class _Metric:
    kind = "untyped"

    def __init__(self, name: str, help_text: str,
                 label_names: Iterable[str] = (),
                 const_labels: Iterable[Tuple[str, str]] = ()) -> None:
        self.name = name
        self.help_text = help_text
        self.label_names: Tuple[str, ...] = tuple(label_names)
        #: (name, value) pairs stamped on every sample at render time,
        #: e.g. ``shard_id`` on a cluster shard's registry; call sites
        #: never pass them
        self.const_labels: Tuple[Tuple[str, str], ...] = \
            tuple(const_labels)

    def _key(self, labels: Dict[str, str]) -> Tuple[str, ...]:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name}: expected labels {self.label_names}, "
                f"got {tuple(sorted(labels))}")
        return tuple(str(labels[n]) for n in self.label_names)

    def _pairs(self, key: Tuple[str, ...]) -> Tuple[Tuple[str, str], ...]:
        return self.const_labels + tuple(zip(self.label_names, key))

    def _label_text(self, key: Tuple[str, ...]) -> str:
        pairs = self._pairs(key)
        if not pairs:
            return ""
        inner = ",".join(f'{n}="{_escape(v)}"' for n, v in pairs)
        return "{" + inner + "}"

    def samples(self) -> List[str]:
        raise NotImplementedError

    def render(self) -> List[str]:
        return [f"# HELP {self.name} {self.help_text}",
                f"# TYPE {self.name} {self.kind}"] + self.samples()


class Counter(_Metric):
    kind = "counter"

    def __init__(self, name, help_text, label_names=(),
                 const_labels=()) -> None:
        super().__init__(name, help_text, label_names, const_labels)
        self._values: Dict[Tuple[str, ...], float] = {}
        if not self.label_names:
            self._values[()] = 0.0

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        return self._values.get(self._key(labels), 0.0)

    def total(self) -> float:
        return sum(self._values.values())

    def samples(self) -> List[str]:
        return [f"{self.name}{self._label_text(k)} {_fmt(v)}"
                for k, v in sorted(self._values.items())]


class Gauge(_Metric):
    kind = "gauge"

    def __init__(self, name, help_text, label_names=(),
                 const_labels=()) -> None:
        super().__init__(name, help_text, label_names, const_labels)
        self._values: Dict[Tuple[str, ...], float] = {}
        if not self.label_names:
            self._values[()] = 0.0

    def set(self, value: float, **labels: str) -> None:
        self._values[self._key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> float:
        return self._values.get(self._key(labels), 0.0)

    def samples(self) -> List[str]:
        return [f"{self.name}{self._label_text(k)} {_fmt(v)}"
                for k, v in sorted(self._values.items())]


class Histogram(_Metric):
    kind = "histogram"

    def __init__(self, name, help_text, label_names=(),
                 buckets: Sequence[float] = DEFAULT_BUCKETS,
                 const_labels=()) -> None:
        super().__init__(name, help_text, label_names, const_labels)
        self.buckets: Tuple[float, ...] = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket")
        # per label key: [bucket counts (+Inf last), sum, count]
        self._values: Dict[Tuple[str, ...], list] = {}
        if not self.label_names:
            self._values[()] = self._fresh()

    def _fresh(self) -> list:
        return [[0] * (len(self.buckets) + 1), 0.0, 0]

    def observe(self, value: float, **labels: str) -> None:
        key = self._key(labels)
        state = self._values.setdefault(key, self._fresh())
        state[0][bisect_left(self.buckets, value)] += 1
        state[1] += value
        state[2] += 1

    def count(self, **labels: str) -> int:
        state = self._values.get(self._key(labels))
        return 0 if state is None else state[2]

    def sum(self, **labels: str) -> float:
        state = self._values.get(self._key(labels))
        return 0.0 if state is None else state[1]

    def samples(self) -> List[str]:
        lines: List[str] = []
        for key, (counts, total, count) in sorted(self._values.items()):
            acc = 0
            for upper, n in zip(self.buckets + (math.inf,), counts):
                acc += n
                inner = ",".join(
                    [f'{k}="{_escape(v)}"' for k, v in self._pairs(key)]
                    + [f'le="{_fmt(upper)}"'])
                lines.append(f"{self.name}_bucket{{{inner}}} {acc}")
            label_text = self._label_text(key)
            lines.append(f"{self.name}_sum{label_text} {_fmt(total)}")
            lines.append(f"{self.name}_count{label_text} {count}")
        return lines


class MetricsRegistry:
    """Named metrics, rendered together in registration order.

    ``const_labels`` (e.g. ``{"shard_id": "shard-2"}``) are stamped on
    every sample of every registered metric at render time, so one
    shard's series stay distinguishable when the cluster router
    aggregates ``/metrics`` across replicas.
    """

    def __init__(self, const_labels: Optional[Dict[str, str]] = None
                 ) -> None:
        self._metrics: Dict[str, _Metric] = {}
        self.const_labels: Tuple[Tuple[str, str], ...] = tuple(
            (str(k), str(v))
            for k, v in (const_labels or {}).items())

    def _register(self, metric: _Metric) -> _Metric:
        if metric.name in self._metrics:
            raise ValueError(f"metric {metric.name!r} already registered")
        self._metrics[metric.name] = metric
        return metric

    def counter(self, name, help_text, label_names=()) -> Counter:
        return self._register(Counter(name, help_text, label_names,
                                      self.const_labels))

    def gauge(self, name, help_text, label_names=()) -> Gauge:
        return self._register(Gauge(name, help_text, label_names,
                                    self.const_labels))

    def histogram(self, name, help_text, label_names=(),
                  buckets=DEFAULT_BUCKETS) -> Histogram:
        return self._register(
            Histogram(name, help_text, label_names, buckets,
                      self.const_labels))

    def get(self, name: str) -> _Metric:
        return self._metrics[name]

    def render(self) -> str:
        lines: List[str] = []
        for metric in self._metrics.values():
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"


def percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in 0..100) of raw samples."""
    if not samples:
        raise ValueError("no samples")
    ordered = sorted(samples)
    if q <= 0:
        return ordered[0]
    if q >= 100:
        return ordered[-1]
    rank = math.ceil(q / 100.0 * len(ordered))
    return ordered[max(0, rank - 1)]
