"""Service configuration.

One frozen dataclass holds every knob of the gateway: where to listen,
how many simulation workers to run, how much work to admit, and the
operational limits (deadlines, drain grace, cache bound).  The CLI
(``python -m repro.experiments serve``) maps flags onto these fields
one-to-one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

#: default TCP port of the gateway (repro ~ "8321" has no meaning
#: beyond being unclaimed)
DEFAULT_PORT = 8321


@dataclass(frozen=True)
class ServiceConfig:
    """Everything the gateway needs to run.

    ``cache_dir=None`` disables the result cache entirely (every
    request simulates); ``deadline_s=None`` disables the default
    per-request deadline; ``spec_timeout_s`` bounds one simulation's
    wall-clock inside a worker (see
    :class:`repro.campaign.CampaignRunner`).

    ``shard_id``/``shard_peers`` make the gateway cluster-aware (see
    ``docs/cluster.md``): the gateway builds the same consistent-hash
    ring as the router, stamps every metric sample with a ``shard_id``
    label, and counts requests for keys it does not own
    (``repro_misrouted_requests_total``) -- it still serves them.
    """

    host: str = "127.0.0.1"
    port: int = DEFAULT_PORT
    jobs: int = 2
    cache_dir: Optional[str] = ".repro-cache"
    max_queue: int = 64
    deadline_s: Optional[float] = 300.0
    spec_timeout_s: Optional[float] = None
    cache_max_mb: Optional[float] = None
    drain_grace_s: float = 30.0
    max_body_bytes: int = 8 << 20
    quiet: bool = False
    shard_id: Optional[str] = None
    shard_peers: Tuple[str, ...] = ()
    ring_vnodes: int = 64

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.ring_vnodes < 1:
            raise ValueError("ring_vnodes must be >= 1")
        if self.shard_peers and self.shard_id not in self.shard_peers:
            raise ValueError("shard_id must be one of shard_peers")
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive (or None)")
        if self.spec_timeout_s is not None and self.spec_timeout_s <= 0:
            raise ValueError("spec_timeout_s must be positive (or None)")
        if self.cache_max_mb is not None and self.cache_max_mb <= 0:
            raise ValueError("cache_max_mb must be positive (or None)")
        if self.drain_grace_s < 0:
            raise ValueError("drain_grace_s must be >= 0")

    @property
    def cache_max_bytes(self) -> Optional[int]:
        if self.cache_max_mb is None:
            return None
        return int(self.cache_max_mb * 1024 * 1024)
