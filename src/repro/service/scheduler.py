"""Admission control, single-flight dedupe, and pooled execution.

The :class:`SimScheduler` is the heart of the gateway: every request
path funnels its specs through :meth:`admit_many`, which is fully
synchronous (no awaits between the admission check and task creation,
so admission is atomic under the single event loop):

* a spec already in flight joins the existing task (single-flight --
  concurrent requests for the same spec never simulate twice);
* a spec in the :class:`~repro.campaign.ResultCache` is served
  immediately as a record;
* otherwise the spec is admitted against the bounded queue
  (``max_queue`` pending specs) or the whole batch is rejected with
  :class:`QueueFull` carrying a Retry-After estimate.

Admitted specs execute on a shared ``ProcessPoolExecutor`` (``jobs``
workers) through :func:`repro.campaign.execute_spec` -- the same
function ``CampaignRunner`` workers run, so served results are
bit-identical to direct campaign runs.  A broken pool (killed worker)
is rebuilt once per affected spec and counted in
``repro_worker_restarts_total``.

Waiters attach with :meth:`result`, optionally under a deadline; the
deadline cancels the *wait*, never the simulation (the result still
lands in the cache for the next request).
"""

from __future__ import annotations

import asyncio
import functools
import math
import multiprocessing
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Deque, Dict, List, Optional, Sequence, Union

from repro.campaign import ResultCache, RunRecord, RunSpec, execute_spec
from repro.service.metrics import MetricsRegistry

#: what admit()/admit_many() hand back per spec: a finished record
#: (cache hit) or the in-flight task computing one
Handle = Union[RunRecord, "asyncio.Task[RunRecord]"]


class QueueFull(Exception):
    """Admission rejected: the pending queue is at capacity."""

    def __init__(self, retry_after_s: int) -> None:
        super().__init__(
            f"queue full; retry after {retry_after_s}s")
        self.retry_after_s = retry_after_s


class Draining(Exception):
    """Admission rejected: the service is shutting down."""


class DeadlineExceeded(Exception):
    """A waiter's deadline expired (the simulation keeps running)."""


class SimScheduler:
    def __init__(self, jobs: int = 2,
                 cache: Optional[ResultCache] = None,
                 max_queue: int = 64,
                 registry: Optional[MetricsRegistry] = None,
                 spec_timeout_s: Optional[float] = None,
                 cache_max_bytes: Optional[int] = None) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        self.jobs = jobs
        self.cache = cache
        self.max_queue = max_queue
        self.spec_timeout_s = spec_timeout_s
        self.cache_max_bytes = cache_max_bytes

        self._executor: Optional[ProcessPoolExecutor] = None
        self._slots: Optional[asyncio.Semaphore] = None
        self._inflight: Dict[str, asyncio.Task] = {}
        self._pending = 0            # admitted, not yet finished
        self._running = 0            # currently occupying a worker
        self._draining = False
        self._recent_s: Deque[float] = deque(maxlen=64)

        registry = registry if registry is not None else MetricsRegistry()
        self.registry = registry
        self.m_cache = registry.counter(
            "repro_cache_lookups_total",
            "Result-cache lookups by outcome", ("result",))
        self.m_dedup = registry.counter(
            "repro_singleflight_dedup_total",
            "Requests that joined an already-in-flight simulation")
        self.m_specs = registry.counter(
            "repro_specs_total",
            "Specs resolved, by how (executed/cached/failed/timeout)",
            ("status",))
        self.m_rejected = registry.counter(
            "repro_admission_rejected_total",
            "Admissions rejected because the queue was full")
        self.m_restarts = registry.counter(
            "repro_worker_restarts_total",
            "Process-pool rebuilds after a broken worker")
        self.m_queue = registry.gauge(
            "repro_queue_depth",
            "Admitted specs waiting for a worker slot")
        self.m_inflight = registry.gauge(
            "repro_inflight_sims",
            "Simulations currently occupying a worker")
        self.m_latency = registry.histogram(
            "repro_sim_latency_seconds",
            "Wall-clock seconds per executed simulation")

    # -- introspection --------------------------------------------------

    @property
    def pending(self) -> int:
        return self._pending

    @property
    def running(self) -> int:
        return self._running

    @property
    def draining(self) -> bool:
        return self._draining

    def inflight_key(self, key: str) -> Optional["asyncio.Task"]:
        return self._inflight.get(key)

    def _update_gauges(self) -> None:
        self.m_queue.set(max(0, self._pending - self._running))
        self.m_inflight.set(self._running)

    def estimate_retry_after(self, extra: int = 1) -> int:
        """Seconds until ``extra`` more specs likely fit the queue."""
        if self._recent_s:
            avg = sum(self._recent_s) / len(self._recent_s)
        else:
            avg = 1.0
        waves = math.ceil((self._pending + extra) / self.jobs)
        return max(1, min(120, math.ceil(avg * waves)))

    # -- admission (synchronous: atomic under the event loop) -----------

    def admit(self, spec: RunSpec) -> Handle:
        return self.admit_many([spec])[0]

    def admit_many(self, specs: Sequence[RunSpec]) -> List[Handle]:
        """Admit a batch atomically: all specs or :class:`QueueFull`.

        Cache hits and single-flight joins never count against the
        queue, so overlapping sweeps from many clients are cheap.
        """
        if self._draining:
            raise Draining()
        out: List[Optional[Handle]] = [None] * len(specs)
        new_specs: Dict[str, RunSpec] = {}
        for i, spec in enumerate(specs):
            key = spec.key
            task = self._inflight.get(key)
            if task is not None:
                self.m_dedup.inc()
                out[i] = task
                continue
            if key in new_specs:
                self.m_dedup.inc()
                continue                  # resolved with the batch below
            record = self.cache.get(key) if self.cache is not None \
                else None
            if record is not None:
                self.m_cache.inc(result="hit")
                self.m_specs.inc(status="cached")
                out[i] = record
                continue
            if self.cache is not None:
                self.m_cache.inc(result="miss")
            new_specs[key] = spec

        if new_specs:
            if self._pending + len(new_specs) > self.max_queue:
                self.m_rejected.inc()
                raise QueueFull(self.estimate_retry_after(len(new_specs)))
            loop = asyncio.get_running_loop()
            for key, spec in new_specs.items():
                self._pending += 1
                task = loop.create_task(self._run_one(spec))
                self._inflight[key] = task
                task.add_done_callback(
                    functools.partial(self._task_done, key))
            self._update_gauges()

        for i, spec in enumerate(specs):
            if out[i] is None:
                out[i] = self._inflight[spec.key]
        return out            # type: ignore[return-value]

    def _task_done(self, key: str, _task: "asyncio.Task") -> None:
        self._pending -= 1
        self._inflight.pop(key, None)
        self._update_gauges()

    # -- waiting --------------------------------------------------------

    async def result(self, handle: Handle,
                     deadline_s: Optional[float] = None) -> RunRecord:
        """Await a handle; the deadline aborts the wait, not the sim."""
        if isinstance(handle, RunRecord):
            return handle
        if deadline_s is None:
            return await asyncio.shield(handle)
        try:
            return await asyncio.wait_for(asyncio.shield(handle),
                                          deadline_s)
        except asyncio.TimeoutError:
            raise DeadlineExceeded(
                f"result not ready within {deadline_s:g}s "
                "(simulation continues; poll /v1/result)") from None

    # -- execution ------------------------------------------------------

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context(
                "fork" if "fork" in methods else "spawn")
            self._executor = ProcessPoolExecutor(
                max_workers=self.jobs, mp_context=ctx)
        return self._executor

    def warm(self) -> None:
        """Fork the worker pool now, before any client sockets exist.

        The pool uses the fork start method and spawns workers lazily;
        a worker forked during a request inherits a duplicate of the
        accepted connection's fd, and the kernel only sends FIN once
        the last duplicate closes -- close-delimited responses would
        never reach EOF.  (The gateway also shuts sockets down
        explicitly as a belt-and-braces for pool rebuilds.)
        """
        ex = self._ensure_executor()
        for fut in [ex.submit(int) for _ in range(self.jobs)]:
            fut.result()

    async def _execute(self, spec: RunSpec) -> RunRecord:
        """One spec on the pool; override point for tests."""
        loop = asyncio.get_running_loop()
        call = functools.partial(execute_spec, spec,
                                 self.spec_timeout_s)
        try:
            return await loop.run_in_executor(
                self._ensure_executor(), call)
        except BrokenProcessPool:
            # a worker died (OOM-kill, segfault); rebuild and retry once
            self.m_restarts.inc()
            self._executor = None
            return await loop.run_in_executor(
                self._ensure_executor(), call)

    async def _run_one(self, spec: RunSpec) -> RunRecord:
        if self._slots is None:
            self._slots = asyncio.Semaphore(self.jobs)
        async with self._slots:
            self._running += 1
            self._update_gauges()
            t0 = time.monotonic()
            try:
                record = await self._execute(spec)
            except Exception as exc:
                # infrastructure failure (pickling, repeated pool
                # death): land it as a failed record so waiters see a
                # result instead of a raw exception
                record = RunRecord(
                    key=spec.key, workload=spec.workload, ok=False,
                    error=f"executor failure: {exc!r}",
                    error_type=type(exc).__name__)
            finally:
                self._running -= 1
                self._update_gauges()
            elapsed = time.monotonic() - t0
            self._recent_s.append(elapsed)
            self.m_latency.observe(elapsed)
        if record.ok:
            self.m_specs.inc(status="executed")
            if self.cache is not None:
                self.cache.put(record)
                if self.cache_max_bytes is not None:
                    self.cache.prune(self.cache_max_bytes)
        elif record.error_type == "SpecTimeoutError":
            self.m_specs.inc(status="timeout")
        else:
            self.m_specs.inc(status="failed")
        return record

    # -- shutdown -------------------------------------------------------

    async def drain(self, grace_s: float = 30.0) -> bool:
        """Stop admitting, wait for in-flight work; True if all done."""
        self._draining = True
        tasks = [t for t in self._inflight.values() if not t.done()]
        clean = True
        if tasks:
            done, pending = await asyncio.wait(tasks, timeout=grace_s)
            clean = not pending
        self.shutdown(wait=clean)
        return clean

    def shutdown(self, wait: bool = True) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=wait, cancel_futures=True)
            self._executor = None
