"""Request validation: JSON bodies -> canonical :class:`RunSpec` lists.

Every spec the service runs is built here, through the same
``RunSpec.make`` / ``figure_points`` paths the CLI uses -- so a served
result is keyed, salted, and simulated exactly like a direct
``CampaignRunner`` run, and bit-identity between the two is a matter
of construction rather than luck.

Validation errors raise :class:`~repro.service.httpio.HttpError` with
status 400 and a "did you mean" suggestion where a name was close.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.campaign import RunSpec
from repro.campaign.workloads import known_workloads, suggest_names
from repro.config import (
    ExperimentScale, MachineConfig, PAPER_MACHINE_SIZES, Protocol,
)
from repro.service.httpio import HttpError

#: top-level keys accepted by POST /v1/run
RUN_KEYS = frozenset({"workload", "config", "params", "code_version",
                      "spec_hash", "label", "deadline_s"})

#: top-level keys accepted by POST /v1/sweep ("full_records" asks for
#: complete RunRecord payloads in spec events -- the cluster router
#: needs them to rebuild figure tables from per-shard streams)
SWEEP_KEYS = frozenset({"figure", "scale", "sizes", "procs", "sanitize",
                        "specs", "deadline_s", "full_records"})

#: hard ceiling on specs per sweep request (far above any figure)
MAX_SWEEP_SPECS = 4096

#: MachineConfig fields that hold a Protocol
_PROTOCOL_FIELDS = ("protocol", "hybrid_default")


@dataclass(frozen=True)
class SweepPoint:
    """One spec of a sweep, tagged like a figure point."""

    label: str
    x: Optional[int]
    spec: RunSpec


def _bad(message: str) -> HttpError:
    return HttpError(400, message)


def _check_keys(data: Mapping[str, Any], allowed: frozenset,
                what: str) -> None:
    if not isinstance(data, Mapping):
        raise _bad(f"{what} body must be a JSON object")
    for key in data:
        if key not in allowed:
            raise _bad(f"unknown {what} field {key!r}"
                       f"{suggest_names(str(key), allowed)}")


def machine_config_from_request(data: Any) -> MachineConfig:
    """A (possibly partial) config object -> :class:`MachineConfig`."""
    if data is None:
        data = {}
    if not isinstance(data, Mapping):
        raise _bad("'config' must be a JSON object of MachineConfig "
                   "fields")
    valid = {f.name for f in dataclasses.fields(MachineConfig)}
    kwargs: Dict[str, Any] = {}
    for key, value in data.items():
        if key not in valid:
            raise _bad(f"unknown config field {key!r}"
                       f"{suggest_names(str(key), valid)}")
        if key in _PROTOCOL_FIELDS:
            if not isinstance(value, str):
                raise _bad(f"config field {key!r} must be a protocol "
                           "name (wi/pu/cu/hybrid)")
            try:
                value = Protocol.parse(value)
            except ValueError as exc:
                raise _bad(str(exc)) from None
        kwargs[key] = value
    try:
        return MachineConfig(**kwargs)
    except (TypeError, ValueError) as exc:
        raise _bad(f"bad config: {exc}") from None


def _deadline_from(data: Mapping[str, Any],
                   default: Optional[float]) -> Optional[float]:
    if "deadline_s" not in data:
        return default
    value = data["deadline_s"]
    if value is None:
        return None
    if not isinstance(value, (int, float)) or isinstance(value, bool) \
            or value <= 0:
        raise _bad("'deadline_s' must be a positive number or null")
    return float(value)


def spec_from_request(data: Any) -> SweepPoint:
    """POST /v1/run body (or one entry of a raw sweep) -> spec."""
    _check_keys(data, RUN_KEYS, "run")
    workload = data.get("workload")
    if not isinstance(workload, str) or not workload:
        raise _bad("'workload' is required and must be a string")
    names = known_workloads()
    if workload not in names:
        raise _bad(f"unknown workload {workload!r}"
                   f"{suggest_names(workload, names)}")
    config = machine_config_from_request(data.get("config"))
    params = data.get("params", {})
    if not isinstance(params, Mapping):
        raise _bad("'params' must be a JSON object of scalars")
    code_version = data.get("code_version")
    if code_version is not None and not isinstance(code_version, str):
        raise _bad("'code_version' must be a string")
    # "spec_hash" (present in RunSpec.to_jsonable bodies) is derived
    # from the server's own protocol tables, never trusted from the
    # wire -- accept and ignore it
    spec_hash = data.get("spec_hash")
    if spec_hash is not None and not isinstance(spec_hash, str):
        raise _bad("'spec_hash' must be a string")
    try:
        spec = RunSpec.make(workload, config,
                            code_version_salt=code_version, **params)
    except TypeError as exc:
        raise _bad(str(exc)) from None
    label = data.get("label")
    if label is not None and not isinstance(label, str):
        raise _bad("'label' must be a string")
    return SweepPoint(label or spec.describe(), None, spec)


def run_from_request(data: Any, default_deadline: Optional[float]
                     ) -> Tuple[SweepPoint, Optional[float]]:
    point = spec_from_request(data)
    return point, _deadline_from(data, default_deadline)


def _scale_from(data: Mapping[str, Any]) -> ExperimentScale:
    scale = data.get("scale", 0.1)
    if scale == "paper":
        return ExperimentScale.paper()
    if not isinstance(scale, (int, float)) or isinstance(scale, bool) \
            or scale <= 0:
        raise _bad("'scale' must be a positive number or \"paper\"")
    return ExperimentScale.scaled(float(scale))


def sweep_from_request(data: Any, default_deadline: Optional[float]
                       ) -> Tuple[Optional[str], List[SweepPoint],
                                  Optional[float]]:
    """POST /v1/sweep body -> (figure id or None, points, deadline)."""
    _check_keys(data, SWEEP_KEYS, "sweep")
    deadline = _deadline_from(data, default_deadline)
    if not isinstance(data.get("full_records", False), bool):
        raise _bad("'full_records' must be a boolean")

    if "specs" in data:
        if "figure" in data:
            raise _bad("pass either 'figure' or 'specs', not both")
        raw = data["specs"]
        if not isinstance(raw, list) or not raw:
            raise _bad("'specs' must be a non-empty JSON array")
        if len(raw) > MAX_SWEEP_SPECS:
            raise _bad(f"sweep exceeds {MAX_SWEEP_SPECS} specs")
        return None, [spec_from_request(item) for item in raw], deadline

    fid = data.get("figure")
    if not isinstance(fid, str) or not fid:
        raise _bad("sweep body must contain 'figure' or 'specs'")
    # imported here to keep service import time light and avoid cycles
    from repro.experiments.figures import FIGURES, figure_points

    if fid not in FIGURES:
        raise _bad(f"unknown figure {fid!r}"
                   f"{suggest_names(fid, FIGURES)}; choose from "
                   f"{', '.join(FIGURES)}")
    sizes = data.get("sizes", list(PAPER_MACHINE_SIZES))
    if (not isinstance(sizes, list) or not sizes
            or not all(isinstance(s, int) and not isinstance(s, bool)
                       and s >= 1 for s in sizes)):
        raise _bad("'sizes' must be a non-empty array of positive "
                   "integers")
    procs = data.get("procs", 32)
    if not isinstance(procs, int) or isinstance(procs, bool) \
            or procs < 1:
        raise _bad("'procs' must be a positive integer")
    sanitize = data.get("sanitize", False)
    if not isinstance(sanitize, bool):
        raise _bad("'sanitize' must be a boolean")
    try:
        points = figure_points(fid, scale=_scale_from(data),
                               sizes=tuple(sizes), P=procs,
                               sanitize=sanitize)
    except (TypeError, ValueError) as exc:
        raise _bad(f"bad sweep parameters: {exc}") from None
    return fid, [SweepPoint(pt.label, pt.x, pt.spec)
                 for pt in points], deadline
