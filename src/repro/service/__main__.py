"""``python -m repro.service`` entry point (the gateway)."""

import sys

from repro.service.gateway import main

sys.exit(main())
