"""Closed-loop load generator for the simulation service.

Drives N concurrent clients against a running gateway; each client
issues its requests back-to-back (closed loop), so offered load scales
with service latency like a real caller.  Reports throughput, latency
percentiles (nearest-rank over all successful requests), and error
counts; exits nonzero if any request hit a 5xx or a connection error,
which is what the CI smoke job asserts.

Modes:

* ``sweep`` (default): every request is ``POST /v1/sweep`` for the
  same figure -- overlapping sweeps exercise single-flight dedupe and
  the shared cache; the NDJSON stream is consumed and per-spec events
  are tallied.
* ``run``: clients round-robin ``POST /v1/run`` over the figure's
  individual specs.

Usage::

    python -m repro.service.loadgen --port 8321 --clients 16 \
        --requests 4 --figure fig9 --scale 0.01 --procs 4 --json out.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import re
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.service.metrics import percentile

_MAX_LINE = 1 << 20

#: Prometheus text samples worth breaking out per shard in the report
_SHARD_SAMPLE_NAMES = ("repro_specs_total", "repro_cache_lookups_total")

_SAMPLE_RE = re.compile(
    r'^(\w+)(?:\{(.*)\})?\s+([0-9.eE+-]+|\+Inf|NaN)$')
_LABEL_RE = re.compile(r'(\w+)="((?:[^"\\]|\\.)*)"')


@dataclass
class ClientStats:
    """Tallies of one client's closed loop."""

    ok: int = 0
    by_status: Dict[int, int] = field(default_factory=dict)
    conn_errors: int = 0
    latencies_s: List[float] = field(default_factory=list)
    spec_events: int = 0
    cached_events: int = 0


class HttpClient:
    """A keep-alive HTTP/1.1 client for one (host, port)."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def _connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port, limit=_MAX_LINE)

    async def close(self) -> None:
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        self._reader = self._writer = None

    async def request(self, method: str, path: str,
                      body: Optional[bytes] = None
                      ) -> Tuple[int, Dict[str, str], bytes]:
        """One request; returns (status, headers, full body bytes)."""
        if self._writer is None:
            await self._connect()
        head = [f"{method} {path} HTTP/1.1",
                f"Host: {self.host}:{self.port}",
                "Accept: */*"]
        if body is not None:
            head.append("Content-Type: application/json")
            head.append(f"Content-Length: {len(body)}")
        payload = ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") \
            + (body or b"")
        self._writer.write(payload)
        await self._writer.drain()

        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionError("server closed the connection")
        parts = status_line.decode("latin-1").split(None, 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise ConnectionError(f"bad status line {status_line!r}")
        status = int(parts[1])
        headers: Dict[str, str] = {}
        while True:
            raw = await self._reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, sep, value = raw.decode("latin-1").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()

        if "content-length" in headers:
            resp_body = await self._reader.readexactly(
                int(headers["content-length"]))
        else:
            # close-delimited (the NDJSON sweep stream)
            resp_body = await self._reader.read(-1)

        if headers.get("connection", "").lower() == "close":
            await self.close()
        return status, headers, resp_body


def build_payloads(args) -> Tuple[str, List[bytes]]:
    """(path, request bodies) for the chosen mode."""
    if args.mode == "sweep":
        body = {"figure": args.figure, "scale": args.scale,
                "procs": args.procs}
        if args.sizes:
            body["sizes"] = args.sizes
        return "/v1/sweep", [json.dumps(body).encode("utf-8")]
    # run mode: one body per figure spec, round-robined
    from repro.config import ExperimentScale, PAPER_MACHINE_SIZES
    from repro.experiments.figures import figure_points

    points = figure_points(
        args.figure, scale=ExperimentScale.scaled(args.scale),
        sizes=tuple(args.sizes) if args.sizes else PAPER_MACHINE_SIZES,
        P=args.procs)
    bodies = []
    for pt in points:
        spec = pt.spec.to_jsonable()
        spec["label"] = pt.label
        bodies.append(json.dumps(spec).encode("utf-8"))
    return "/v1/run", bodies


async def _client_loop(index: int, args, path: str,
                       payloads: List[bytes],
                       stats: ClientStats) -> None:
    client = HttpClient(args.host, args.port)
    try:
        for n in range(args.requests):
            body = payloads[(index + n) % len(payloads)]
            t0 = time.monotonic()
            try:
                status, _headers, resp = await client.request(
                    "POST", path, body)
            except (ConnectionError, OSError,
                    asyncio.IncompleteReadError):
                stats.conn_errors += 1
                await client.close()
                continue
            stats.latencies_s.append(time.monotonic() - t0)
            stats.by_status[status] = stats.by_status.get(status, 0) + 1
            if status == 200:
                stats.ok += 1
                if args.mode == "sweep":
                    for line in resp.splitlines():
                        try:
                            event = json.loads(line)
                        except ValueError:
                            continue
                        if event.get("event") == "spec":
                            stats.spec_events += 1
                            if event.get("cached"):
                                stats.cached_events += 1
            elif status == 429:
                retry = _headers.get("retry-after")
                try:
                    await asyncio.sleep(min(5.0, float(retry or 1)))
                except ValueError:
                    await asyncio.sleep(1.0)
    finally:
        await client.close()


def summarize(all_stats: List[ClientStats], elapsed_s: float,
              args) -> Dict[str, object]:
    latencies = [s for st in all_stats for s in st.latencies_s]
    by_status: Dict[str, int] = {}
    for st in all_stats:
        for code, n in st.by_status.items():
            by_status[str(code)] = by_status.get(str(code), 0) + n
    completed = sum(len(st.latencies_s) for st in all_stats)
    report: Dict[str, object] = {
        "mode": args.mode,
        "figure": args.figure,
        "clients": args.clients,
        "requests_per_client": args.requests,
        "completed": completed,
        "ok": sum(st.ok for st in all_stats),
        "by_status": by_status,
        "conn_errors": sum(st.conn_errors for st in all_stats),
        "status_5xx": sum(n for code, n in by_status.items()
                          if code.startswith("5")),
        "elapsed_s": round(elapsed_s, 3),
        "throughput_rps": round(completed / elapsed_s, 3)
        if elapsed_s > 0 else 0.0,
        "spec_events": sum(st.spec_events for st in all_stats),
        "cached_events": sum(st.cached_events for st in all_stats),
    }
    if latencies:
        report["latency_s"] = {
            "p50": round(percentile(latencies, 50), 6),
            "p90": round(percentile(latencies, 90), 6),
            "p95": round(percentile(latencies, 95), 6),
            "p99": round(percentile(latencies, 99), 6),
            "max": round(max(latencies), 6),
        }
    return report


def parse_shard_counters(text: str) -> Dict[str, Dict[str, float]]:
    """Per-shard hit/miss/executed tallies from a /metrics exposition.

    Samples without a ``shard_id`` label (a single, non-sharded
    gateway) land under ``"local"``.
    """
    out: Dict[str, Dict[str, float]] = {}
    for line in text.splitlines():
        match = _SAMPLE_RE.match(line)
        if match is None:
            continue
        name, label_text, value = match.groups()
        if name not in _SHARD_SAMPLE_NAMES:
            continue
        labels = dict(_LABEL_RE.findall(label_text or ""))
        shard = labels.get("shard_id", "local")
        entry = out.setdefault(shard, {})
        if name == "repro_specs_total":
            field_name = labels.get("status", "unknown")
        else:
            field_name = "cache_" + labels.get("result", "unknown")
        entry[field_name] = entry.get(field_name, 0.0) + float(value)
    return out


async def fetch_shard_counters(args) -> Optional[Dict[str, Dict[str, float]]]:
    """Best-effort GET /metrics after the run; None on any failure."""
    client = HttpClient(args.host, args.port)
    try:
        status, _headers, body = await client.request("GET", "/metrics")
    except (ConnectionError, OSError, asyncio.IncompleteReadError):
        return None
    finally:
        await client.close()
    if status != 200:
        return None
    return parse_shard_counters(body.decode("utf-8", "replace")) or None


async def run_loadgen(args) -> Dict[str, object]:
    path, payloads = build_payloads(args)
    all_stats = [ClientStats() for _ in range(args.clients)]
    t0 = time.monotonic()
    await asyncio.gather(*(
        _client_loop(i, args, path, payloads, all_stats[i])
        for i in range(args.clients)))
    report = summarize(all_stats, time.monotonic() - t0, args)
    per_shard = await fetch_shard_counters(args)
    if per_shard is not None:
        report["per_shard"] = per_shard
    return report


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-loadgen",
        description="Closed-loop load generator for the simulation "
                    "service (see docs/service.md).")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, required=True)
    p.add_argument("--clients", type=int, default=16, metavar="N",
                   help="concurrent closed-loop clients (default 16)")
    p.add_argument("--requests", type=int, default=4, metavar="N",
                   help="requests per client (default 4)")
    p.add_argument("--mode", choices=("sweep", "run"), default="sweep")
    p.add_argument("--figure", default="fig9",
                   help="figure driving the workload (default fig9)")
    p.add_argument("--scale", type=float, default=0.01,
                   help="iteration-count scale (default 0.01)")
    p.add_argument("--procs", type=int, default=4,
                   help="machine size for traffic figures (default 4)")
    p.add_argument("--sizes", type=lambda t: [int(s) for s in
                                              t.split(",")],
                   default=None, metavar="A,B,...",
                   help="machine sizes for latency figures")
    p.add_argument("--json", metavar="FILE", default=None,
                   help="also write the report as JSON")
    p.add_argument("--slo-p99-ms", type=float, default=None,
                   metavar="MS",
                   help="exit nonzero if observed p99 latency exceeds "
                        "this many milliseconds (the CI SLO gate)")
    p.add_argument("--quiet", action="store_true")
    return p


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.clients < 1 or args.requests < 1:
        print("--clients and --requests must be >= 1", file=sys.stderr)
        return 2
    report = asyncio.run(run_loadgen(args))

    slo_violated = False
    if args.slo_p99_ms is not None and "latency_s" in report:
        observed_ms = report["latency_s"]["p99"] * 1000.0
        slo_violated = observed_ms > args.slo_p99_ms
        report["slo"] = {"p99_ms": args.slo_p99_ms,
                         "observed_p99_ms": round(observed_ms, 3),
                         "ok": not slo_violated}

    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
    if not args.quiet:
        lat = report.get("latency_s", {})
        print(f"loadgen: {report['completed']} requests "
              f"({report['ok']} ok) in {report['elapsed_s']}s "
              f"= {report['throughput_rps']} req/s")
        if lat:
            print(f"  latency p50={lat['p50']}s p90={lat['p90']}s "
                  f"p95={lat['p95']}s p99={lat['p99']}s "
                  f"max={lat['max']}s")
        print(f"  statuses={report['by_status']} "
              f"conn_errors={report['conn_errors']} "
              f"spec_events={report['spec_events']} "
              f"(cached {report['cached_events']})")
        for shard, counts in sorted(
                report.get("per_shard", {}).items()):
            executed = int(counts.get("executed", 0))
            hits = int(counts.get("cache_hit", 0))
            misses = int(counts.get("cache_miss", 0))
            print(f"  shard {shard}: executed={executed} "
                  f"cache_hit={hits} cache_miss={misses}")
        if "slo" in report:
            slo = report["slo"]
            verdict = "ok" if slo["ok"] else "VIOLATED"
            print(f"  slo p99<={slo['p99_ms']}ms: observed "
                  f"{slo['observed_p99_ms']}ms ({verdict})")
    failed = report["status_5xx"] or report["conn_errors"]
    return 1 if failed or slo_violated else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
