"""Closed-loop load generator for the simulation service.

Drives N concurrent clients against a running gateway; each client
issues its requests back-to-back (closed loop), so offered load scales
with service latency like a real caller.  Reports throughput, latency
percentiles (nearest-rank over all successful requests), and error
counts; exits nonzero if any request hit a 5xx or a connection error,
which is what the CI smoke job asserts.

Modes:

* ``sweep`` (default): every request is ``POST /v1/sweep`` for the
  same figure -- overlapping sweeps exercise single-flight dedupe and
  the shared cache; the NDJSON stream is consumed and per-spec events
  are tallied.
* ``run``: clients round-robin ``POST /v1/run`` over the figure's
  individual specs.

Usage::

    python -m repro.service.loadgen --port 8321 --clients 16 \
        --requests 4 --figure fig9 --scale 0.01 --procs 4 --json out.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.service.metrics import percentile

_MAX_LINE = 1 << 20


@dataclass
class ClientStats:
    """Tallies of one client's closed loop."""

    ok: int = 0
    by_status: Dict[int, int] = field(default_factory=dict)
    conn_errors: int = 0
    latencies_s: List[float] = field(default_factory=list)
    spec_events: int = 0
    cached_events: int = 0


class HttpClient:
    """A keep-alive HTTP/1.1 client for one (host, port)."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def _connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port, limit=_MAX_LINE)

    async def close(self) -> None:
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        self._reader = self._writer = None

    async def request(self, method: str, path: str,
                      body: Optional[bytes] = None
                      ) -> Tuple[int, Dict[str, str], bytes]:
        """One request; returns (status, headers, full body bytes)."""
        if self._writer is None:
            await self._connect()
        head = [f"{method} {path} HTTP/1.1",
                f"Host: {self.host}:{self.port}",
                "Accept: */*"]
        if body is not None:
            head.append("Content-Type: application/json")
            head.append(f"Content-Length: {len(body)}")
        payload = ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") \
            + (body or b"")
        self._writer.write(payload)
        await self._writer.drain()

        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionError("server closed the connection")
        parts = status_line.decode("latin-1").split(None, 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise ConnectionError(f"bad status line {status_line!r}")
        status = int(parts[1])
        headers: Dict[str, str] = {}
        while True:
            raw = await self._reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, sep, value = raw.decode("latin-1").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()

        if "content-length" in headers:
            resp_body = await self._reader.readexactly(
                int(headers["content-length"]))
        else:
            # close-delimited (the NDJSON sweep stream)
            resp_body = await self._reader.read(-1)

        if headers.get("connection", "").lower() == "close":
            await self.close()
        return status, headers, resp_body


def build_payloads(args) -> Tuple[str, List[bytes]]:
    """(path, request bodies) for the chosen mode."""
    if args.mode == "sweep":
        body = {"figure": args.figure, "scale": args.scale,
                "procs": args.procs}
        if args.sizes:
            body["sizes"] = args.sizes
        return "/v1/sweep", [json.dumps(body).encode("utf-8")]
    # run mode: one body per figure spec, round-robined
    from repro.config import ExperimentScale, PAPER_MACHINE_SIZES
    from repro.experiments.figures import figure_points

    points = figure_points(
        args.figure, scale=ExperimentScale.scaled(args.scale),
        sizes=tuple(args.sizes) if args.sizes else PAPER_MACHINE_SIZES,
        P=args.procs)
    bodies = []
    for pt in points:
        spec = pt.spec.to_jsonable()
        spec["label"] = pt.label
        bodies.append(json.dumps(spec).encode("utf-8"))
    return "/v1/run", bodies


async def _client_loop(index: int, args, path: str,
                       payloads: List[bytes],
                       stats: ClientStats) -> None:
    client = HttpClient(args.host, args.port)
    try:
        for n in range(args.requests):
            body = payloads[(index + n) % len(payloads)]
            t0 = time.monotonic()
            try:
                status, _headers, resp = await client.request(
                    "POST", path, body)
            except (ConnectionError, OSError,
                    asyncio.IncompleteReadError):
                stats.conn_errors += 1
                await client.close()
                continue
            stats.latencies_s.append(time.monotonic() - t0)
            stats.by_status[status] = stats.by_status.get(status, 0) + 1
            if status == 200:
                stats.ok += 1
                if args.mode == "sweep":
                    for line in resp.splitlines():
                        try:
                            event = json.loads(line)
                        except ValueError:
                            continue
                        if event.get("event") == "spec":
                            stats.spec_events += 1
                            if event.get("cached"):
                                stats.cached_events += 1
            elif status == 429:
                retry = _headers.get("retry-after")
                try:
                    await asyncio.sleep(min(5.0, float(retry or 1)))
                except ValueError:
                    await asyncio.sleep(1.0)
    finally:
        await client.close()


def summarize(all_stats: List[ClientStats], elapsed_s: float,
              args) -> Dict[str, object]:
    latencies = [s for st in all_stats for s in st.latencies_s]
    by_status: Dict[str, int] = {}
    for st in all_stats:
        for code, n in st.by_status.items():
            by_status[str(code)] = by_status.get(str(code), 0) + n
    completed = sum(len(st.latencies_s) for st in all_stats)
    report: Dict[str, object] = {
        "mode": args.mode,
        "figure": args.figure,
        "clients": args.clients,
        "requests_per_client": args.requests,
        "completed": completed,
        "ok": sum(st.ok for st in all_stats),
        "by_status": by_status,
        "conn_errors": sum(st.conn_errors for st in all_stats),
        "status_5xx": sum(n for code, n in by_status.items()
                          if code.startswith("5")),
        "elapsed_s": round(elapsed_s, 3),
        "throughput_rps": round(completed / elapsed_s, 3)
        if elapsed_s > 0 else 0.0,
        "spec_events": sum(st.spec_events for st in all_stats),
        "cached_events": sum(st.cached_events for st in all_stats),
    }
    if latencies:
        report["latency_s"] = {
            "p50": round(percentile(latencies, 50), 6),
            "p90": round(percentile(latencies, 90), 6),
            "p99": round(percentile(latencies, 99), 6),
            "max": round(max(latencies), 6),
        }
    return report


async def run_loadgen(args) -> Dict[str, object]:
    path, payloads = build_payloads(args)
    all_stats = [ClientStats() for _ in range(args.clients)]
    t0 = time.monotonic()
    await asyncio.gather(*(
        _client_loop(i, args, path, payloads, all_stats[i])
        for i in range(args.clients)))
    return summarize(all_stats, time.monotonic() - t0, args)


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-loadgen",
        description="Closed-loop load generator for the simulation "
                    "service (see docs/service.md).")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, required=True)
    p.add_argument("--clients", type=int, default=16, metavar="N",
                   help="concurrent closed-loop clients (default 16)")
    p.add_argument("--requests", type=int, default=4, metavar="N",
                   help="requests per client (default 4)")
    p.add_argument("--mode", choices=("sweep", "run"), default="sweep")
    p.add_argument("--figure", default="fig9",
                   help="figure driving the workload (default fig9)")
    p.add_argument("--scale", type=float, default=0.01,
                   help="iteration-count scale (default 0.01)")
    p.add_argument("--procs", type=int, default=4,
                   help="machine size for traffic figures (default 4)")
    p.add_argument("--sizes", type=lambda t: [int(s) for s in
                                              t.split(",")],
                   default=None, metavar="A,B,...",
                   help="machine sizes for latency figures")
    p.add_argument("--json", metavar="FILE", default=None,
                   help="also write the report as JSON")
    p.add_argument("--quiet", action="store_true")
    return p


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.clients < 1 or args.requests < 1:
        print("--clients and --requests must be >= 1", file=sys.stderr)
        return 2
    report = asyncio.run(run_loadgen(args))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
    if not args.quiet:
        lat = report.get("latency_s", {})
        print(f"loadgen: {report['completed']} requests "
              f"({report['ok']} ok) in {report['elapsed_s']}s "
              f"= {report['throughput_rps']} req/s")
        if lat:
            print(f"  latency p50={lat['p50']}s p90={lat['p90']}s "
                  f"p99={lat['p99']}s max={lat['max']}s")
        print(f"  statuses={report['by_status']} "
              f"conn_errors={report['conn_errors']} "
              f"spec_events={report['spec_events']} "
              f"(cached {report['cached_events']})")
    failed = report["status_5xx"] or report["conn_errors"]
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
