"""The asyncio simulation-serving gateway.

A long-running HTTP server that turns the one-shot figure harness into
a multi-tenant simulation service:

* ``POST /v1/run``    -- one spec; responds with the full run record
* ``POST /v1/sweep``  -- a figure or raw spec list; streams NDJSON
  per-spec completion events, then a summary (and the rendered figure
  table when every point succeeded)
* ``GET /v1/result/<key>`` -- fetch a cached record by spec hash
* ``GET /healthz``    -- liveness + queue/drain state
* ``GET /metrics``    -- Prometheus text exposition

All simulation work flows through one :class:`SimScheduler` (shared
cache, single-flight, bounded admission), so overlapping requests from
many clients cost one simulation per unique spec.  SIGTERM/SIGINT
drain gracefully: the listener closes, in-flight requests finish, the
worker pool shuts down, and the process exits 0.

Run it via ``python -m repro.experiments serve`` or
``python -m repro.service``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import socket
import sys
import time
import traceback
from typing import List, Optional, Tuple

from repro.campaign import ResultCache
from repro.service import api
from repro.service.config import DEFAULT_PORT, ServiceConfig
from repro.service.httpio import (
    METRICS_TYPE, HttpError, Request, json_response, ndjson_line,
    read_request, response, stream_head,
)
from repro.service.metrics import MetricsRegistry
from repro.service.scheduler import (
    DeadlineExceeded, Draining, QueueFull, SimScheduler,
)

#: route label for unmatched paths (bounds metric cardinality)
_OTHER = "other"


class Gateway:
    """One service instance: listener + scheduler + metrics."""

    def __init__(self, config: ServiceConfig,
                 scheduler: Optional[SimScheduler] = None,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.config = config
        self.registry = registry if registry is not None \
            else (scheduler.registry if scheduler is not None
                  else MetricsRegistry(
                      const_labels={"shard_id": config.shard_id}
                      if config.shard_id else None))
        self.cache = (ResultCache(config.cache_dir)
                      if config.cache_dir else None)
        self._own_scheduler = scheduler is None
        if scheduler is None:
            scheduler = SimScheduler(
                jobs=config.jobs, cache=self.cache,
                max_queue=config.max_queue, registry=self.registry,
                spec_timeout_s=config.spec_timeout_s,
                cache_max_bytes=config.cache_max_bytes)
        else:
            self.cache = scheduler.cache
        self.scheduler = scheduler

        self.m_requests = self.registry.counter(
            "repro_requests_total", "HTTP requests by route and status",
            ("route", "code"))
        self.m_request_latency = self.registry.histogram(
            "repro_request_latency_seconds",
            "Wall-clock seconds per HTTP request", ("route",))
        self.m_draining = self.registry.gauge(
            "repro_draining", "1 while the gateway is draining")
        self.m_misrouted = self.registry.counter(
            "repro_misrouted_requests_total",
            "Requests for keys this shard does not own under the "
            "configured ring (stale upstream ring view); served anyway")
        self.m_forwarded = self.registry.counter(
            "repro_forwarded_requests_total",
            "Requests carrying X-Repro-Forwarded-By (proxied by a "
            "cluster router)")

        #: ring over the configured peer set, used only to *count*
        #: misrouted keys -- ownership is advisory, never a 404
        self._ring = None
        if config.shard_id and config.shard_peers:
            from repro.cluster.ring import HashRing
            self._ring = HashRing(config.shard_peers,
                                  vnodes=config.ring_vnodes)

        self._server: Optional[asyncio.AbstractServer] = None
        self._stopped: Optional[asyncio.Event] = None
        self._ready = False
        self._draining = False
        self._active_requests = 0
        self._started = time.monotonic()
        self.port: Optional[int] = None

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        self._stopped = asyncio.Event()
        self._started = time.monotonic()
        if self._own_scheduler:
            # fork the workers before any socket exists (see
            # SimScheduler.warm); injected schedulers warm themselves
            self.scheduler.warm()
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._ready = True
        self._log(f"listening on http://{self.config.host}:{self.port}")

    @property
    def draining(self) -> bool:
        return self._draining

    def begin_drain(self) -> None:
        """Idempotent; safe to call from a signal handler callback."""
        if self._draining:
            return
        self._draining = True
        self._ready = False
        self.m_draining.set(1)
        self._log("drain requested; finishing in-flight work")
        asyncio.get_event_loop().create_task(self._drain())

    async def _drain(self) -> None:
        grace = self.config.drain_grace_s
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        deadline = time.monotonic() + grace
        while self._active_requests > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        clean = await self.scheduler.drain(
            grace_s=max(0.0, deadline - time.monotonic()))
        self._log("drain complete" if clean
                  else "drain grace expired with work still running")
        if self._stopped is not None:
            self._stopped.set()

    async def wait_stopped(self) -> None:
        assert self._stopped is not None, "start() first"
        await self._stopped.wait()

    async def stop(self) -> None:
        """Drain and wait (used by tests; signals use begin_drain)."""
        self.begin_drain()
        await self.wait_stopped()

    async def serve_forever(self, handle_signals: bool = True) -> None:
        await self.start()
        if handle_signals:
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(sig, self.begin_drain)
                except (NotImplementedError, RuntimeError):
                    pass
        await self.wait_stopped()

    def _log(self, message: str) -> None:
        if not self.config.quiet:
            print(f"[repro.service] {message}", file=sys.stderr,
                  flush=True)

    # -- connection handling --------------------------------------------

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    req = await read_request(
                        reader, self.config.max_body_bytes)
                except HttpError as exc:
                    writer.write(json_response(
                        exc.status, {"error": exc.message},
                        headers=exc.headers, keep_alive=False))
                    await writer.drain()
                    break
                if req is None:
                    break
                keep = await self._dispatch(req, writer)
                try:
                    await writer.drain()
                except ConnectionError:
                    break
                if not keep:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                # explicit shutdown: forked pool workers may hold a
                # dup of this fd, and FIN is only sent when the last
                # dup closes -- close() alone would leave EOF-framed
                # responses hanging
                sock = writer.get_extra_info("socket")
                if sock is not None:
                    sock.shutdown(socket.SHUT_RDWR)
            except (OSError, ValueError):
                pass
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, req: Request,
                        writer: asyncio.StreamWriter) -> bool:
        """Route + run one request; returns keep-alive."""
        route, handler = self._route(req)
        if "x-repro-forwarded-by" in req.headers:
            self.m_forwarded.inc()
        keep = req.keep_alive and not self._draining
        t0 = time.monotonic()
        self._active_requests += 1
        code = 499    # stays if the handler is cancelled mid-flight
        try:
            code, keep = await handler(req, writer, keep)
        except HttpError as exc:
            code = exc.status
            writer.write(json_response(
                code, {"error": exc.message}, headers=exc.headers,
                keep_alive=keep))
        except (ConnectionError, asyncio.IncompleteReadError):
            code, keep = 499, False      # client went away mid-response
        except Exception:
            code, keep = 500, False
            self._log("internal error:\n" + traceback.format_exc())
            try:
                writer.write(json_response(
                    500, {"error": "internal server error"},
                    keep_alive=False))
            except ConnectionError:
                pass
        finally:
            self._active_requests -= 1
            self.m_requests.inc(route=route, code=str(code))
            self.m_request_latency.observe(
                time.monotonic() - t0, route=route)
        return keep

    def _route(self, req: Request):
        path, method = req.path, req.method
        if path == "/healthz":
            return "healthz", self._require(method, "GET",
                                            self._h_health)
        if path == "/readyz":
            return "readyz", self._require(method, "GET", self._h_ready)
        if path == "/metrics":
            return "metrics", self._require(method, "GET",
                                            self._h_metrics)
        if path == "/v1/run":
            return "run", self._require(method, "POST", self._h_run,
                                        guard=True)
        if path == "/v1/sweep":
            return "sweep", self._require(method, "POST",
                                          self._h_sweep, guard=True)
        if path.startswith("/v1/result/"):
            return "result", self._require(method, "GET",
                                           self._h_result)
        return _OTHER, self._h_not_found

    def _require(self, method: str, expected: str, handler,
                 guard: bool = False):
        async def wrapped(req, writer, keep):
            if method != expected:
                raise HttpError(405, f"use {expected}",
                                {"Allow": expected})
            if guard and self._draining:
                raise HttpError(503, "draining; not accepting new work",
                                {"Retry-After": "30"})
            return await handler(req, writer, keep)
        return wrapped

    async def _h_not_found(self, req, writer, keep):
        raise HttpError(404, f"no route for {req.path!r}")

    def _check_ownership(self, key: str) -> None:
        """Count (never reject) keys another shard owns: a misrouted
        request means some upstream holds a stale ring view."""
        if (self._ring is not None
                and self._ring.owner(key) != self.config.shard_id):
            self.m_misrouted.inc()

    # -- endpoints ------------------------------------------------------

    async def _h_health(self, req, writer, keep) -> Tuple[int, bool]:
        sched = self.scheduler
        code = 503 if self._draining else 200
        body = {
            "status": "draining" if self._draining else "ok",
            "uptime_s": round(time.monotonic() - self._started, 3),
            "pending": sched.pending,
            "running": sched.running,
            "queue_depth": max(0, sched.pending - sched.running),
            "jobs": sched.jobs,
            "max_queue": sched.max_queue,
            "cache": self.cache.root if self.cache is not None else None,
        }
        if self.config.shard_id is not None:
            body["shard_id"] = self.config.shard_id
        writer.write(json_response(code, body, keep_alive=keep))
        return code, keep

    async def _h_ready(self, req, writer, keep) -> Tuple[int, bool]:
        """Readiness, distinct from liveness: unready before start()
        finishes and from the moment a drain begins, so a router (or
        rolling deploy) stops sending work before SIGTERM completes."""
        ready = self._ready and not self._draining
        code = 200 if ready else 503
        body = {"status": "ready" if ready else
                ("draining" if self._draining else "starting")}
        if self.config.shard_id is not None:
            body["shard_id"] = self.config.shard_id
        writer.write(json_response(
            code, body, keep_alive=keep,
            headers=None if ready else {"Retry-After": "1"}))
        return code, keep

    async def _h_metrics(self, req, writer, keep) -> Tuple[int, bool]:
        body = self.registry.render().encode("utf-8")
        writer.write(response(200, body, content_type=METRICS_TYPE,
                              keep_alive=keep))
        return 200, keep

    async def _h_run(self, req, writer, keep) -> Tuple[int, bool]:
        point, deadline_s = api.run_from_request(
            req.json(), self.config.deadline_s)
        self._check_ownership(point.spec.key)
        try:
            handle = self.scheduler.admit(point.spec)
        except QueueFull as exc:
            raise HttpError(
                429, str(exc),
                {"Retry-After": str(exc.retry_after_s)}) from None
        except Draining:
            raise HttpError(503, "draining; not accepting new work",
                            {"Retry-After": "30"}) from None
        try:
            record = await self.scheduler.result(handle, deadline_s)
        except DeadlineExceeded as exc:
            raise HttpError(504, str(exc)) from None
        code = 200 if record.ok else 422
        body = {"label": point.label, "key": point.spec.key,
                "cached": record.cached,
                "record": record.to_jsonable()}
        writer.write(json_response(code, body, keep_alive=keep))
        return code, keep

    async def _h_result(self, req, writer, keep) -> Tuple[int, bool]:
        key = req.path.rsplit("/", 1)[-1].lower()
        if not (len(key) == 64
                and all(c in "0123456789abcdef" for c in key)):
            raise HttpError(400, "result key must be a 64-char spec "
                            "hash (see the 'key' field of run/sweep "
                            "responses)")
        self._check_ownership(key)
        record = self.cache.get(key) if self.cache is not None else None
        if record is not None:
            writer.write(json_response(
                200, {"key": key, "record": record.to_jsonable()},
                keep_alive=keep))
            return 200, keep
        if self.scheduler.inflight_key(key) is not None:
            writer.write(json_response(
                202, {"key": key, "inflight": True,
                      "error": "still simulating; retry shortly"},
                headers={"Retry-After": "1"}, keep_alive=keep))
            return 202, keep
        raise HttpError(404, f"no cached result for {key}")

    async def _h_sweep(self, req, writer, keep) -> Tuple[int, bool]:
        data = req.json()
        fid, points, deadline_s = api.sweep_from_request(
            data, self.config.deadline_s)
        # the cluster router asks for full records so it can rebuild
        # figure tables from per-shard streams
        full_records = bool(data.get("full_records", False)) \
            if isinstance(data, dict) else False
        for pt in points:
            self._check_ownership(pt.spec.key)
        try:
            handles = self.scheduler.admit_many(
                [pt.spec for pt in points])
        except QueueFull as exc:
            raise HttpError(
                429, str(exc),
                {"Retry-After": str(exc.retry_after_s)}) from None
        except Draining:
            raise HttpError(503, "draining; not accepting new work",
                            {"Retry-After": "30"}) from None

        # headers committed: stream close-delimited NDJSON from here on
        writer.write(stream_head())
        t0 = time.monotonic()
        writer.write(ndjson_line({
            "event": "start", "figure": fid, "count": len(points)}))
        await writer.drain()

        async def finish(index: int):
            try:
                rec = await self.scheduler.result(
                    handles[index], deadline_s)
            except DeadlineExceeded:
                return index, None
            return index, rec

        executed = cached = failed = timed_out = 0
        records: List[Optional[object]] = [None] * len(points)
        for fut in asyncio.as_completed(
                [finish(i) for i in range(len(points))]):
            index, record = await fut
            point = points[index]
            if record is None:
                timed_out += 1
                writer.write(ndjson_line({
                    "event": "deadline", "index": index,
                    "label": point.label, "x": point.x,
                    "key": point.spec.key}))
                await writer.drain()
                continue
            records[index] = record
            if record.cached:
                cached += 1
            else:
                executed += 1
            if not record.ok:
                failed += 1
            event = {
                "event": "spec", "index": index, "label": point.label,
                "x": point.x, "key": point.spec.key, "ok": record.ok,
                "cached": record.cached, "error_type": record.error_type,
                "metrics": dict(record.metrics)}
            if full_records:
                event["record"] = record.to_jsonable()
            writer.write(ndjson_line(event))
            await writer.drain()

        if fid is not None and failed == 0 and timed_out == 0:
            from repro.experiments.figures import figure_table

            table = figure_table(fid, points, records)
            writer.write(ndjson_line({
                "event": "table", "figure": fid,
                "text": table.render()}))
        writer.write(ndjson_line({
            "event": "done", "ok": failed == 0 and timed_out == 0,
            "count": len(points), "executed": executed,
            "cached": cached, "failed": failed,
            "deadline_exceeded": timed_out,
            "elapsed_s": round(time.monotonic() - t0, 6)}))
        return 200, False


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve simulations over HTTP: shared cache, "
                    "single-flight dedupe, bounded admission, live "
                    "Prometheus metrics (see docs/service.md).")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=DEFAULT_PORT,
                   help=f"TCP port (default {DEFAULT_PORT}; 0 picks a "
                        "free port and prints it)")
    p.add_argument("--jobs", type=int, default=2, metavar="N",
                   help="simulation worker processes (default 2)")
    p.add_argument("--cache-dir", default=".repro-cache", metavar="DIR",
                   help="content-addressed result cache "
                        "(default .repro-cache)")
    p.add_argument("--no-cache", action="store_true",
                   help="serve without a result cache")
    p.add_argument("--max-queue", type=int, default=64, metavar="N",
                   help="max admitted-but-unfinished specs before "
                        "requests get 429 (default 64)")
    p.add_argument("--deadline", type=float, default=300.0,
                   metavar="SECONDS",
                   help="default per-request deadline (default 300; "
                        "0 disables)")
    p.add_argument("--spec-timeout", type=float, default=0.0,
                   metavar="SECONDS",
                   help="per-simulation wall-clock timeout inside a "
                        "worker (default off)")
    p.add_argument("--cache-max-mb", type=float, default=None,
                   metavar="MB",
                   help="prune the result cache (LRU) above this size")
    p.add_argument("--drain-grace", type=float, default=30.0,
                   metavar="SECONDS",
                   help="max seconds to finish in-flight work on "
                        "SIGTERM (default 30)")
    p.add_argument("--quiet", action="store_true",
                   help="suppress log lines on stderr")
    cluster = p.add_argument_group(
        "cluster", "shard-aware serving under a repro.cluster router "
                   "(see docs/cluster.md)")
    cluster.add_argument("--shard-id", default=None, metavar="ID",
                         help="this replica's shard id (labels every "
                              "metric sample)")
    cluster.add_argument("--shard-peers", default="", metavar="IDS",
                         help="comma-separated ids of all shards in "
                              "the ring, including this one")
    cluster.add_argument("--ring-vnodes", type=int, default=64,
                         metavar="N",
                         help="virtual points per shard on the "
                              "ownership ring (default 64)")
    return p


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        config = ServiceConfig(
            host=args.host, port=args.port, jobs=args.jobs,
            cache_dir=None if args.no_cache else args.cache_dir,
            max_queue=args.max_queue,
            deadline_s=args.deadline if args.deadline > 0 else None,
            spec_timeout_s=(args.spec_timeout
                            if args.spec_timeout > 0 else None),
            cache_max_mb=args.cache_max_mb,
            drain_grace_s=args.drain_grace, quiet=args.quiet,
            shard_id=args.shard_id,
            shard_peers=tuple(s.strip()
                              for s in args.shard_peers.split(",")
                              if s.strip()),
            ring_vnodes=args.ring_vnodes)
    except ValueError as exc:
        print(f"bad service configuration: {exc}", file=sys.stderr)
        return 2

    gateway = Gateway(config)

    async def run() -> None:
        await gateway.start()
        # machine-readable boot line on stdout: scripts parse the port
        boot = {"service": "repro", "host": config.host,
                "port": gateway.port}
        if config.shard_id is not None:
            boot["shard_id"] = config.shard_id
        print(json.dumps(boot), flush=True)
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, gateway.begin_drain)
            except (NotImplementedError, RuntimeError):
                pass
        await gateway.wait_stopped()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
