"""Minimal HTTP/1.1 framing over asyncio streams, stdlib only.

Just enough of the protocol for the gateway and the load generator:
request parsing (request line, headers, Content-Length bodies), fixed
responses with Content-Length + keep-alive, and close-delimited
streaming responses for NDJSON sweeps.  Chunked transfer coding is
deliberately not implemented -- sweep streams mark themselves
``Connection: close`` and the body ends at EOF, which every HTTP/1.1
client understands.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from typing import Dict, Optional
from urllib.parse import parse_qsl, unquote, urlsplit

REASONS = {
    200: "OK", 202: "Accepted", 204: "No Content",
    400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
    408: "Request Timeout", 413: "Payload Too Large",
    422: "Unprocessable Entity", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
    504: "Gateway Timeout",
}

_MAX_LINE = 16384
_MAX_HEADERS = 100

JSON_TYPE = "application/json"
NDJSON_TYPE = "application/x-ndjson"
METRICS_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class HttpError(Exception):
    """An error that maps directly onto an HTTP error response."""

    def __init__(self, status: int, message: str,
                 headers: Optional[Dict[str, str]] = None) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = dict(headers or {})


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    target: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]          # keys lower-cased
    body: bytes = b""
    http_version: str = "HTTP/1.1"

    @property
    def keep_alive(self) -> bool:
        conn = self.headers.get("connection", "").lower()
        if self.http_version == "HTTP/1.0":
            return conn == "keep-alive"
        return conn != "close"

    def json(self):
        """The body parsed as JSON, or a 400 :class:`HttpError`."""
        if not self.body:
            raise HttpError(400, "expected a JSON request body")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise HttpError(400, f"malformed JSON body: {exc}") from None


async def read_request(reader: asyncio.StreamReader,
                       max_body: int = 8 << 20) -> Optional[Request]:
    """Parse one request from the stream; None on clean EOF."""
    try:
        line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not line.strip():
        return None
    if len(line) > _MAX_LINE:
        raise HttpError(400, "request line too long")
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise HttpError(400, "malformed request line")
    method, target, version = parts
    if version not in ("HTTP/1.0", "HTTP/1.1"):
        raise HttpError(400, f"unsupported HTTP version {version!r}")

    headers: Dict[str, str] = {}
    for _ in range(_MAX_HEADERS):
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        if len(raw) > _MAX_LINE:
            raise HttpError(400, "header line too long")
        name, sep, value = raw.decode("latin-1").partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {raw!r}")
        headers[name.strip().lower()] = value.strip()
    else:
        raise HttpError(400, "too many headers")

    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HttpError(400, "bad Content-Length") from None
        if length < 0:
            raise HttpError(400, "bad Content-Length")
        if length > max_body:
            raise HttpError(413, f"body exceeds {max_body} bytes")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            return None
    elif headers.get("transfer-encoding"):
        raise HttpError(400, "chunked request bodies are not supported")

    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))
    return Request(method=method.upper(), target=target,
                   path=unquote(split.path), query=query,
                   headers=headers, body=body, http_version=version)


def response(status: int, body: bytes = b"", *,
             content_type: str = JSON_TYPE,
             headers: Optional[Dict[str, str]] = None,
             keep_alive: bool = True) -> bytes:
    """A complete Content-Length-framed response."""
    head = [f"HTTP/1.1 {status} {REASONS.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}"]
    for name, value in (headers or {}).items():
        head.append(f"{name}: {value}")
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body


def json_response(status: int, obj, *,
                  headers: Optional[Dict[str, str]] = None,
                  keep_alive: bool = True) -> bytes:
    body = (json.dumps(obj, sort_keys=True) + "\n").encode("utf-8")
    return response(status, body, content_type=JSON_TYPE,
                    headers=headers, keep_alive=keep_alive)


def stream_head(status: int = 200,
                content_type: str = NDJSON_TYPE,
                headers: Optional[Dict[str, str]] = None) -> bytes:
    """Headers of a close-delimited streaming response (no length)."""
    head = [f"HTTP/1.1 {status} {REASONS.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            "Connection: close"]
    for name, value in (headers or {}).items():
        head.append(f"{name}: {value}")
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1")


def ndjson_line(obj) -> bytes:
    return (json.dumps(obj, sort_keys=True) + "\n").encode("utf-8")
