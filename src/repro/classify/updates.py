"""Update-message classification.

Implements the algorithm of Bianchini & Kontothanassis (paper section
3.2): every update message delivered to a sharer's cache opens a record
that is classified *at the end of the update's lifetime* -- when it is
overwritten by another update to the same word, when the block holding
it is replaced, or when the program ends.

Categories:

* **useful (true sharing)** -- the receiver references the updated word
  before it is overwritten;
* **false sharing** -- not referenced before overwrite, but the receiver
  actively references *other* words of the block during the update's
  lifetime;
* **proliferation** -- not referenced before overwrite, with no
  concurrent activity on the block (successive useless updates to the
  same word are proliferation, not false sharing -- the paper's
  refinement);
* **replacement** -- the word is unreferenced until the block leaves the
  receiver's cache;
* **termination** -- a proliferation update still live at program end;
* **drop** -- the update whose arrival pushes the competitive-update
  counter to its threshold and invalidates the block.
"""

from __future__ import annotations

import enum
from typing import Dict, Tuple


class UpdateClass(enum.Enum):
    USEFUL = "useful"
    FALSE_SHARING = "false"
    PROLIFERATION = "proliferation"
    REPLACEMENT = "replacement"
    TERMINATION = "termination"
    DROP = "drop"

    @property
    def useful(self) -> bool:
        return self is UpdateClass.USEFUL


class _Record:
    __slots__ = ("referenced", "other_ref")

    def __init__(self) -> None:
        #: receiver referenced the updated word during the lifetime
        self.referenced = False
        #: receiver referenced some other word of the block concurrently
        self.other_ref = False


class UpdateClassifier:
    """Online classifier; one instance per simulated machine."""

    def __init__(self) -> None:
        self.counts: Dict[UpdateClass, int] = {c: 0 for c in UpdateClass}
        #: (node, block) -> {word -> open record}
        self._open: Dict[Tuple[int, int], Dict[int, _Record]] = {}
        #: update messages delivered to nodes that no longer cache the
        #: block (race with a drop/flush) -- pure waste
        self.stale_deliveries = 0

    # ------------------------------------------------------------------
    # feed
    # ------------------------------------------------------------------

    def record_update(self, node: int, block: int, word: int) -> None:
        """An update message was applied to ``node``'s cached copy."""
        recs = self._open.setdefault((node, block), {})
        old = recs.get(word)
        if old is not None:
            self._close_overwritten(old)
        recs[word] = _Record()

    def record_drop_update(self, node: int, block: int, word: int) -> None:
        """The update that triggered a CU self-invalidation at ``node``.

        The triggering message itself is a *drop* update; all still-open
        records for the block end their lifetimes with the invalidation.
        """
        self.counts[UpdateClass.DROP] += 1
        self.record_block_gone(node, block)

    def record_stale_update(self, node: int, block: int) -> None:
        """Update delivered to a node that no longer caches the block."""
        self.stale_deliveries += 1
        self.counts[UpdateClass.PROLIFERATION] += 1

    def record_reference(self, node: int, block: int, word: int) -> None:
        """A local reference by ``node`` to ``word`` of ``block``."""
        recs = self._open.get((node, block))
        if not recs:
            return
        for w, rec in recs.items():
            if w == word:
                rec.referenced = True
            else:
                rec.other_ref = True

    def record_block_gone(self, node: int, block: int) -> None:
        """``block`` left ``node``'s cache (replacement / flush / inval).

        Still-open records close: referenced ones were useful; the rest
        are replacement updates.
        """
        recs = self._open.pop((node, block), None)
        if not recs:
            return
        for rec in recs.values():
            if rec.referenced:
                self.counts[UpdateClass.USEFUL] += 1
            else:
                self.counts[UpdateClass.REPLACEMENT] += 1

    # ------------------------------------------------------------------

    def _close_overwritten(self, rec: _Record) -> None:
        if rec.referenced:
            self.counts[UpdateClass.USEFUL] += 1
        elif rec.other_ref:
            self.counts[UpdateClass.FALSE_SHARING] += 1
        else:
            self.counts[UpdateClass.PROLIFERATION] += 1

    def finalize(self) -> None:
        """End of program: close every open record."""
        for recs in self._open.values():
            for rec in recs.values():
                if rec.referenced:
                    self.counts[UpdateClass.USEFUL] += 1
                else:
                    self.counts[UpdateClass.TERMINATION] += 1
        self._open.clear()

    # ------------------------------------------------------------------
    # snapshot / restore
    # ------------------------------------------------------------------

    def snapshot_state(self):
        return (dict(self.counts), self.stale_deliveries,
                {key: {w: (r.referenced, r.other_ref)
                       for w, r in recs.items()}
                 for key, recs in self._open.items()})

    def restore_state(self, snap) -> None:
        counts, stale_deliveries, open_recs = snap
        self.counts = dict(counts)
        self.stale_deliveries = stale_deliveries
        restored: Dict[Tuple[int, int], Dict[int, _Record]] = {}
        for key, recs in open_recs.items():
            out = restored[key] = {}
            for word, (referenced, other_ref) in recs.items():
                rec = out[word] = _Record()
                rec.referenced = referenced
                rec.other_ref = other_ref
        self._open = restored

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------

    @property
    def total_updates(self) -> int:
        return sum(self.counts.values())

    def useful_updates(self) -> int:
        return self.counts[UpdateClass.USEFUL]

    def useless_updates(self) -> int:
        return self.total_updates - self.useful_updates()

    def as_dict(self) -> Dict[str, int]:
        out = {c.value: n for c, n in self.counts.items()}
        out["total"] = self.total_updates
        return out
